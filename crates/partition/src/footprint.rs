//! Static per-behavior read/write footprints over the specification IR.
//!
//! The shard planner ([`crate::plan_shards`]) and the model checker's
//! partial-order reduction both need the same question answered: *which
//! storage can this behavior touch?* A behavior's footprint is computed
//! by walking its statement tree — including every procedure it can call,
//! transitively — and recording the variables it accesses, the variables
//! it writes, the signals its expressions and wait conditions read, the
//! signals it drives, and the signals its waits are sensitive to, plus a
//! loop-scaled instruction-weight estimate for load balancing.
//!
//! The footprint is deliberately conservative (a superset of the dynamic
//! access set): any storage named anywhere in a reachable statement is
//! included, whether or not the branch executes. That direction is the
//! safe one for both clients — the shard planner may only co-locate too
//! much, and the checker's independence analysis may only reduce too
//! little.

use ifsyn_spec::{Arg, Expr, Place, Stmt, System, WaitCond};

/// Loop bounds above this stop scaling the weight estimate — balance
/// needs relative magnitudes, not exact trip counts.
const MAX_LOOP_SCALE: u64 = 4096;

/// One behavior's static access footprint, all sets indexed by
/// declaration order (`vars`/`var_writes` by variable index, the signal
/// sets by signal index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFootprint {
    /// Variables accessed at all (read or write), including channel
    /// backing variables and procedure `out`/`inout` targets.
    pub vars: Vec<bool>,
    /// Variables the behavior can write (assignment targets, loop
    /// counters, channel-send backing stores, receive targets,
    /// `out`/`inout` arguments).
    pub var_writes: Vec<bool>,
    /// Signals read by any expression, wait condition or index
    /// computation.
    pub sig_reads: Vec<bool>,
    /// Signals the behavior can drive.
    pub sig_writes: Vec<bool>,
    /// Signals some wait statement is sensitive to — a subset of
    /// [`ProcessFootprint::sig_reads`], kept separately because the
    /// shard planner's affinity metric scores wake chains, not reads.
    pub waits: Vec<bool>,
    /// Estimated instruction weight: statement count scaled by constant
    /// loop bounds (capped at 4096 per loop level).
    pub weight: u64,
}

impl ProcessFootprint {
    fn empty(system: &System) -> Self {
        Self {
            vars: vec![false; system.variables.len()],
            var_writes: vec![false; system.variables.len()],
            sig_reads: vec![false; system.signals.len()],
            sig_writes: vec![false; system.signals.len()],
            waits: vec![false; system.signals.len()],
            weight: 0,
        }
    }

    /// `true` when the two footprints name a common variable (either
    /// side, any access kind) — the shard planner's hard constraint and
    /// one half of the checker's dependence relation.
    pub fn shares_variable(&self, other: &Self) -> bool {
        self.vars.iter().zip(&other.vars).any(|(a, b)| *a && *b)
    }

    /// `true` when one side writes a signal the other reads, waits on or
    /// also writes — the signal half of the dependence relation (two
    /// pure readers of the same signal stay independent).
    pub fn signal_coupled(&self, other: &Self) -> bool {
        let touches = |reads: &[bool], writes: &[bool], i: usize| reads[i] || writes[i];
        self.sig_writes
            .iter()
            .enumerate()
            .any(|(i, &w)| w && touches(&other.sig_reads, &other.sig_writes, i))
            || other
                .sig_writes
                .iter()
                .enumerate()
                .any(|(i, &w)| w && touches(&self.sig_reads, &self.sig_writes, i))
    }
}

/// Computes the footprint of one behavior, walking called procedures
/// transitively (each at most once).
pub fn footprint(system: &System, behavior: usize) -> ProcessFootprint {
    let mut f = ProcessFootprint::empty(system);
    let mut visited = vec![false; system.procedures.len()];
    walk(
        system,
        &system.behaviors[behavior].body,
        1,
        &mut f,
        &mut visited,
    );
    f
}

/// Computes every behavior's footprint, in declaration order.
pub fn footprints(system: &System) -> Vec<ProcessFootprint> {
    (0..system.behaviors.len())
        .map(|b| footprint(system, b))
        .collect()
}

fn note_expr(e: &Expr, f: &mut ProcessFootprint) {
    let mut vs = Vec::new();
    e.collect_vars(&mut vs);
    for v in vs {
        f.vars[v.index()] = true;
    }
    let mut ss = Vec::new();
    e.collect_signals(&mut ss);
    for s in ss {
        f.sig_reads[s.index()] = true;
    }
}

/// Records a place in *read* position (its root and every index
/// expression).
fn note_place_read(p: &Place, f: &mut ProcessFootprint) {
    if let Some(v) = p.root_var() {
        f.vars[v.index()] = true;
    }
    note_place_indices(p, f);
}

/// Records a place in *write* position: the root is written; index and
/// dynamic-slice offsets are still reads.
fn note_place_write(p: &Place, f: &mut ProcessFootprint) {
    if let Some(v) = p.root_var() {
        f.vars[v.index()] = true;
        f.var_writes[v.index()] = true;
    }
    note_place_indices(p, f);
}

fn note_place_indices(p: &Place, f: &mut ProcessFootprint) {
    match p {
        Place::Index { base, index } => {
            note_expr(index, f);
            note_place_indices(base, f);
        }
        Place::Slice { base, .. } => note_place_indices(base, f),
        Place::DynSlice { base, offset, .. } => {
            note_expr(offset, f);
            note_place_indices(base, f);
        }
        Place::Var(_) | Place::Local(_) => {}
    }
}

fn walk(
    system: &System,
    body: &[Stmt],
    mult: u64,
    f: &mut ProcessFootprint,
    visited: &mut Vec<bool>,
) {
    for stmt in body {
        f.weight = f.weight.saturating_add(mult);
        match stmt {
            Stmt::Assign { place, value, .. } => {
                note_place_write(place, f);
                note_expr(value, f);
            }
            Stmt::SignalAssign { signal, value, .. } => {
                f.sig_writes[signal.index()] = true;
                note_expr(value, f);
            }
            Stmt::If { cond, .. } => note_expr(cond, f),
            Stmt::While { cond, .. } => note_expr(cond, f),
            Stmt::For { var, from, to, .. } => {
                note_place_write(var, f);
                note_expr(from, f);
                note_expr(to, f);
            }
            Stmt::Wait(cond) => {
                for s in cond.sensitivity() {
                    f.waits[s.index()] = true;
                    f.sig_reads[s.index()] = true;
                }
                match cond {
                    WaitCond::Until(e) | WaitCond::UntilTimeout { cond: e, .. } => {
                        note_expr(e, f);
                    }
                    _ => {}
                }
            }
            Stmt::Call { procedure, args } => {
                for arg in args {
                    match arg {
                        Arg::In(e) => note_expr(e, f),
                        Arg::Out(p) => note_place_write(p, f),
                        Arg::InOut(p) => {
                            note_place_read(p, f);
                            note_place_write(p, f);
                        }
                    }
                }
                let pi = procedure.index();
                if !visited[pi] {
                    visited[pi] = true;
                    walk(system, &system.procedures[pi].body, mult, f, visited);
                }
            }
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } => {
                let backing = system.channel(*channel).variable.index();
                f.vars[backing] = true;
                f.var_writes[backing] = true;
                if let Some(a) = addr {
                    note_expr(a, f);
                }
                note_expr(data, f);
            }
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } => {
                f.vars[system.channel(*channel).variable.index()] = true;
                if let Some(a) = addr {
                    note_expr(a, f);
                }
                note_place_write(target, f);
            }
            Stmt::Assert { cond, .. } => note_expr(cond, f),
            Stmt::Compute { .. } | Stmt::Return => {}
        }
        // Scale nested work by constant loop bounds, like the closeness
        // metric, capped so one wide loop cannot dwarf every signal.
        let inner_mult = match stmt {
            Stmt::For { from, to, .. } => match (const_int(from), const_int(to)) {
                (Some(a), Some(b)) if b >= a => {
                    mult.saturating_mul(((b - a + 1) as u64).min(MAX_LOOP_SCALE))
                }
                _ => mult,
            },
            _ => mult,
        };
        for inner in stmt.bodies() {
            walk(system, inner, inner_mult, f, visited);
        }
    }
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(v) => v.as_i64().ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{System, Ty};

    #[test]
    fn footprint_separates_reads_and_writes() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("B", m);
        let x = sys.add_variable("x", Ty::Int(16), b);
        let y = sys.add_variable("y", Ty::Int(16), b);
        let req = sys.add_signal("REQ", Ty::Bit);
        let ack = sys.add_signal("ACK", Ty::Bit);
        sys.behavior_mut(b).body = vec![
            assign(var(x), load(var(y))),
            drive(req, bit_const(true)),
            wait_until(eq(signal(ack), bit_const(true))),
        ];
        let f = footprint(&sys, b.index());
        assert!(f.vars[x.index()] && f.vars[y.index()]);
        assert!(f.var_writes[x.index()] && !f.var_writes[y.index()]);
        assert!(f.sig_writes[req.index()] && !f.sig_writes[ack.index()]);
        assert!(f.sig_reads[ack.index()] && !f.sig_reads[req.index()]);
        assert!(f.waits[ack.index()]);
    }

    #[test]
    fn signal_coupling_ignores_shared_pure_reads() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let s = sys.add_signal("S", Ty::Bit);
        let a = sys.add_behavior("A", m);
        let va = sys.add_variable("va", Ty::Int(8), a);
        sys.behavior_mut(a).body = vec![assign(var(va), signal(s))];
        let b = sys.add_behavior("B", m);
        let vb = sys.add_variable("vb", Ty::Int(8), b);
        sys.behavior_mut(b).body = vec![assign(var(vb), signal(s))];
        let c = sys.add_behavior("C", m);
        sys.behavior_mut(c).body = vec![drive(s, bit_const(true))];
        let feet = footprints(&sys);
        // Two readers of S are independent; the writer couples to both.
        assert!(!feet[0].signal_coupled(&feet[1]));
        assert!(feet[2].signal_coupled(&feet[0]));
        assert!(feet[2].signal_coupled(&feet[1]));
        assert!(!feet[0].shares_variable(&feet[1]));
    }

    #[test]
    fn procedures_walked_transitively() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("B", m);
        let x = sys.add_variable("x", Ty::Int(16), b);
        let gnt = sys.add_signal("GNT", Ty::Bit);
        let mut helper = ifsyn_spec::Procedure::new("helper");
        helper.body = vec![
            drive(gnt, bit_const(true)),
            assign(var(x), int_const(7, 16)),
        ];
        let p = sys.add_procedure(helper);
        sys.behavior_mut(b).body = vec![call(p, vec![])];
        let f = footprint(&sys, b.index());
        assert!(f.sig_writes[gnt.index()]);
        assert!(f.var_writes[x.index()]);
    }
}

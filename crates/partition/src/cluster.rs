//! Closeness-based clustering of behaviors and variables (a simplified
//! SpecSyn closeness metric).

use std::collections::HashMap;

use ifsyn_spec::{BehaviorId, Stmt, System, VarId};

/// An object that can be placed on a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Object {
    Behavior(BehaviorId),
    Variable(VarId),
}

/// Pairwise closeness between behaviors and the variables they access.
///
/// Closeness of a (behavior, variable) pair is the number of bits the
/// behavior exchanges with the variable per execution: accesses ×
/// (element width + address width). Grouping close objects on one module
/// avoids channels; separating them creates channel traffic exactly
/// equal to the closeness — so agglomerative merging on this metric
/// minimises cross-module bits, which is SpecSyn's interconnect goal.
#[derive(Debug, Clone, Default)]
pub struct Closeness {
    /// `(behavior, variable) -> bits exchanged`.
    weights: HashMap<(BehaviorId, VarId), u64>,
}

impl Closeness {
    /// Measures closeness over all behaviors of `system`.
    ///
    /// Loop structure is respected for constant bounds (an access inside
    /// a 128-iteration loop counts 128 times).
    pub fn measure(system: &System) -> Self {
        let mut weights = HashMap::new();
        for (bi, behavior) in system.behaviors.iter().enumerate() {
            let b = BehaviorId::new(bi as u32);
            accumulate(system, b, &behavior.body, 1, &mut weights);
        }
        Self { weights }
    }

    /// Bits exchanged between a behavior and a variable.
    pub fn between(&self, behavior: BehaviorId, variable: VarId) -> u64 {
        self.weights
            .get(&(behavior, variable))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates over all nonzero pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (BehaviorId, VarId, u64)> + '_ {
        self.weights.iter().map(|(&(b, v), &w)| (b, v, w))
    }
}

fn accumulate(
    system: &System,
    behavior: BehaviorId,
    body: &[Stmt],
    mult: u64,
    weights: &mut HashMap<(BehaviorId, VarId), u64>,
) {
    for stmt in body {
        // Count variable touches in this statement (not nested bodies).
        let mut vars: Vec<VarId> = Vec::new();
        match stmt {
            Stmt::Assign { place, value, .. } => {
                if let Some(v) = place.root_var() {
                    vars.push(v);
                }
                value.collect_vars(&mut vars);
            }
            Stmt::SignalAssign { value, .. } => value.collect_vars(&mut vars),
            Stmt::If { cond, .. } => cond.collect_vars(&mut vars),
            Stmt::While { cond, .. } => cond.collect_vars(&mut vars),
            Stmt::For { from, to, .. } => {
                from.collect_vars(&mut vars);
                to.collect_vars(&mut vars);
            }
            Stmt::ChannelSend { channel, .. } | Stmt::ChannelReceive { channel, .. } => {
                vars.push(system.channel(*channel).variable);
            }
            _ => {}
        }
        for v in vars {
            let ty = &system.variable(v).ty;
            let bits = u64::from(ty.element_width() + ty.addr_bits());
            *weights.entry((behavior, v)).or_insert(0) += bits * mult;
        }
        // Recurse with loop multipliers.
        let inner_mult = match stmt {
            Stmt::For { from, to, .. } => match (const_int(from), const_int(to)) {
                (Some(a), Some(b)) if b >= a => mult * ((b - a + 1) as u64),
                _ => mult,
            },
            _ => mult,
        };
        for inner in stmt.bodies() {
            accumulate(system, behavior, inner, inner_mult, weights);
        }
    }
}

fn const_int(e: &ifsyn_spec::Expr) -> Option<i64> {
    match e {
        ifsyn_spec::Expr::Const(v) => v.as_i64().ok(),
        _ => None,
    }
}

/// Agglomerative clustering: merge the closest clusters until `k` remain.
///
/// Returns a cluster index per object, in the order given.
pub(crate) fn cluster(objects: &[Object], closeness: &Closeness, k: usize) -> Vec<usize> {
    let n = objects.len();
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut count = n;
    let weight = |a: Object, b: Object| -> u64 {
        match (a, b) {
            (Object::Behavior(x), Object::Variable(y))
            | (Object::Variable(y), Object::Behavior(x)) => closeness.between(x, y),
            _ => 0,
        }
    };
    while count > k {
        // Find the pair of clusters with the highest total inter-cluster
        // closeness.
        let mut best: Option<(usize, usize, u64)> = None;
        for ca in 0..n {
            if !active[ca] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // ca/cb symmetry is clearer
            for cb in (ca + 1)..n {
                if !active[cb] {
                    continue;
                }
                let mut w = 0u64;
                for (i, &oa) in objects.iter().enumerate() {
                    if cluster_of[i] != ca {
                        continue;
                    }
                    for (j, &ob) in objects.iter().enumerate() {
                        if cluster_of[j] == cb {
                            w += weight(oa, ob);
                        }
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, _, bw)) => w > bw,
                };
                if better {
                    best = Some((ca, cb, w));
                }
            }
        }
        let (ca, cb, _) = best.expect("more clusters than k implies a mergeable pair");
        for c in cluster_of.iter_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        active[cb] = false;
        count -= 1;
    }
    // Renumber densely.
    let mut map: HashMap<usize, usize> = HashMap::new();
    cluster_of
        .iter()
        .map(|&c| {
            let next = map.len();
            *map.entry(c).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::Ty;

    #[test]
    fn closeness_counts_loop_scaled_bits() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 128), b);
        let i = sys.add_variable("i", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(127, 16),
            vec![assign(index(var(mem), load(var(i))), int_const(0, 16))],
        )];
        let c = Closeness::measure(&sys);
        // 128 iterations x (16 data + 7 addr) bits.
        assert_eq!(c.between(b, mem), 128 * 23);
    }

    #[test]
    fn clustering_groups_heavy_pairs() {
        // P <-> A heavy, Q <-> B heavy; k=2 must separate {P,A} from {Q,B}.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let q = sys.add_behavior("Q", m);
        let a = sys.add_variable("A", Ty::Bits(32), p);
        let b = sys.add_variable("B", Ty::Bits(32), q);
        sys.behavior_mut(p).body = vec![assign(var(a), bits_const(0, 32)); 10];
        sys.behavior_mut(q).body = vec![assign(var(b), bits_const(0, 32)); 10];
        let closeness = Closeness::measure(&sys);
        let objects = vec![
            Object::Behavior(p),
            Object::Behavior(q),
            Object::Variable(a),
            Object::Variable(b),
        ];
        let assignment = cluster(&objects, &closeness, 2);
        assert_eq!(assignment[0], assignment[2], "P with A");
        assert_eq!(assignment[1], assignment[3], "Q with B");
        assert_ne!(assignment[0], assignment[1]);
    }

    #[test]
    fn k_equals_n_keeps_everything_apart() {
        let objects = vec![
            Object::Behavior(BehaviorId::new(0)),
            Object::Behavior(BehaviorId::new(1)),
        ];
        let assignment = cluster(&objects, &Closeness::default(), 2);
        assert_ne!(assignment[0], assignment[1]);
    }
}

//! Process sharding for the parallel delta-cycle kernel.
//!
//! The parallel simulator runs every delta cycle as a fork/join round:
//! each worker executes its share of the runnable processes against a
//! read-only signal snapshot, then a barrier merges the staged effects.
//! That is only sound if two workers never touch the same *variable*
//! storage (signals are safe by construction — reads come from the
//! snapshot, writes are staged). [`plan_shards`] computes an assignment
//! of behaviors to shards with exactly that guarantee:
//!
//! * **hard constraint** — behaviors that access a common variable
//!   (directly, through a called procedure, or through a channel's
//!   backing variable) land on the same shard, found by union-find over
//!   the per-behavior access sets;
//! * **balance** — the resulting atomic groups are distributed
//!   longest-processing-time-first by an estimated instruction weight
//!   (statement count scaled by constant loop bounds);
//! * **affinity** — among near-balanced shards, a group prefers the
//!   shard holding the behaviors it exchanges the most signal traffic
//!   with (one writes what the other waits on), reusing the same
//!   write-set/wait-set derivation the deadlock diagnoser applies at
//!   run time. Co-locating tightly coupled processes keeps wake chains
//!   on one worker and minimises cross-shard signal churn.
//!
//! The access sets come from the shared [`crate::footprint`] analysis
//! (also the basis of the model checker's independence relation).
//!
//! The plan is a pure function of the system and the requested shard
//! count — deterministic, so a simulation partitioned at any thread
//! count stays reproducible.

use ifsyn_spec::System;

use crate::footprint::{footprints, ProcessFootprint};

/// A deterministic assignment of behaviors to worker shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index per behavior, in behavior declaration order.
    pub shard_of: Vec<usize>,
    /// Owning shard per variable (declaration order): `Some(s)` when some
    /// behavior on shard `s` accesses it (the hard constraint guarantees
    /// the owner is unique), `None` when no behavior touches it. Empty in
    /// the scalar plan, where ownership is moot.
    pub var_shard: Vec<Option<usize>>,
    /// Number of shards actually used (dense `0..shards`); at most the
    /// requested count, and lower when atomic groups are scarcer.
    pub shards: usize,
}

impl ShardPlan {
    /// A single-shard plan (the scalar layout) for `n` behaviors.
    pub fn scalar(n: usize) -> Self {
        Self {
            shard_of: vec![0; n],
            var_shard: Vec::new(),
            shards: if n == 0 { 0 } else { 1 },
        }
    }
}

/// Plans a variable-disjoint, balanced, affinity-aware shard assignment.
///
/// `shards == 0` or `1` returns the scalar plan. The returned plan may
/// use fewer shards than requested when the hard variable-sharing
/// constraint leaves fewer atomic groups.
pub fn plan_shards(system: &System, shards: usize) -> ShardPlan {
    let n = system.behaviors.len();
    if shards <= 1 || n <= 1 {
        return ShardPlan::scalar(n);
    }
    let feet: Vec<ProcessFootprint> = footprints(system);

    // Union-find: behaviors sharing any variable form one atomic group.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let n_vars = system.variables.len();
    // owner[v] = first behavior seen accessing v.
    let mut owner: Vec<Option<usize>> = vec![None; n_vars];
    for (b, f) in feet.iter().enumerate() {
        for (v, &touches) in f.vars.iter().enumerate() {
            if !touches {
                continue;
            }
            match owner[v] {
                None => owner[v] = Some(b),
                Some(o) => {
                    let (ra, rb) = (find(&mut parent, o), find(&mut parent, b));
                    if ra != rb {
                        // Merge into the lower root for determinism.
                        let (lo, hi) = (ra.min(rb), ra.max(rb));
                        parent[hi] = lo;
                    }
                }
            }
        }
    }

    // Collect groups in root order (deterministic).
    let mut group_of = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for b in 0..n {
        let r = find(&mut parent, b);
        if group_of[r] == usize::MAX {
            group_of[r] = groups.len();
            groups.push(Vec::new());
        }
        let g = group_of[r];
        group_of[b] = g;
        groups[g].push(b);
    }
    let shards = shards.min(groups.len());
    if shards <= 1 {
        return ShardPlan::scalar(n);
    }

    // LPT: heaviest group first; ties broken by first behavior index so
    // the order never depends on sort stability of equal keys.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    let group_weight = |g: usize| -> u64 {
        groups[g]
            .iter()
            .map(|&b| feet[b].weight)
            .sum::<u64>()
            .max(1)
    };
    order.sort_by_key(|&g| (std::cmp::Reverse(group_weight(g)), groups[g][0]));

    let mut shard_of = vec![0usize; n];
    let mut load = vec![0u64; shards];
    // Per shard: accumulated write/wait sets for affinity scoring.
    let n_sigs = system.signals.len();
    let mut shard_writes = vec![vec![false; n_sigs]; shards];
    let mut shard_waits = vec![vec![false; n_sigs]; shards];
    for &g in &order {
        let w = group_weight(g);
        let min_load = *load.iter().min().expect("shards >= 1");
        // Candidates: shards whose load stays within one group-weight of
        // the lightest — close enough that affinity may pick among them.
        let mut best: Option<(usize, u64)> = None;
        for s in 0..shards {
            if load[s] > min_load.saturating_add(w) {
                continue;
            }
            let mut affinity = 0u64;
            for &b in &groups[g] {
                let f = &feet[b];
                for sig in 0..n_sigs {
                    if (f.sig_writes[sig] && shard_waits[s][sig])
                        || (f.waits[sig] && shard_writes[s][sig])
                    {
                        affinity += 1;
                    }
                }
            }
            let better = match best {
                None => true,
                // Higher affinity wins; then lower load; then lower index.
                Some((bs, ba)) => affinity > ba || (affinity == ba && load[s] < load[bs]),
            };
            if better {
                best = Some((s, affinity));
            }
        }
        let (s, _) = best.expect("at least the lightest shard qualifies");
        load[s] += w;
        for &b in &groups[g] {
            shard_of[b] = s;
            for sig in 0..n_sigs {
                if feet[b].sig_writes[sig] {
                    shard_writes[s][sig] = true;
                }
                if feet[b].waits[sig] {
                    shard_waits[s][sig] = true;
                }
            }
        }
    }

    // Renumber densely in case a shard ended up empty (possible when one
    // giant group eats all the weight candidates).
    let mut map = vec![usize::MAX; shards];
    let mut next = 0usize;
    for s in &mut shard_of {
        if map[*s] == usize::MAX {
            map[*s] = next;
            next += 1;
        }
        *s = map[*s];
    }
    let var_shard = owner.iter().map(|o| o.map(|b| shard_of[b])).collect();
    ShardPlan {
        shard_of,
        var_shard,
        shards: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Ty, Value};

    /// Two producer/consumer couples with disjoint variables must split
    /// across two shards, each couple co-located by signal affinity.
    #[test]
    fn disjoint_couples_split_and_colocate() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let mut behaviors = Vec::new();
        for i in 0..2 {
            let req = sys.add_signal(format!("REQ{i}"), Ty::Bit);
            let ack = sys.add_signal(format!("ACK{i}"), Ty::Bit);
            let p = sys.add_behavior(format!("prod{i}"), m);
            let x = sys.add_variable(format!("x{i}"), Ty::Int(16), p);
            sys.behavior_mut(p).body = vec![
                assign(var(x), int_const(1, 16)),
                drive_cost(req, bit_const(true), 1),
                wait_until(eq(signal(ack), bit_const(true))),
            ];
            let c = sys.add_behavior(format!("cons{i}"), m);
            let y = sys.add_variable(format!("y{i}"), Ty::Int(16), c);
            sys.behavior_mut(c).body = vec![
                wait_until(eq(signal(req), bit_const(true))),
                assign(var(y), int_const(2, 16)),
                drive_cost(ack, bit_const(true), 1),
            ];
            behaviors.push((p, c));
        }
        let plan = plan_shards(&sys, 2);
        assert_eq!(plan.shards, 2);
        for (p, c) in &behaviors {
            assert_eq!(
                plan.shard_of[p.index()],
                plan.shard_of[c.index()],
                "couple must co-locate by affinity"
            );
        }
        assert_ne!(
            plan.shard_of[behaviors[0].0.index()],
            plan.shard_of[behaviors[1].0.index()],
            "independent couples must spread"
        );
    }

    /// Behaviors sharing a variable are pinned to one shard no matter
    /// how many shards are requested.
    #[test]
    fn shared_variable_is_a_hard_constraint() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let a = sys.add_behavior("A", m);
        let shared = sys.add_variable_init("S", Ty::Int(16), a, Value::int(0, 16));
        sys.behavior_mut(a).body = vec![assign(var(shared), int_const(1, 16))];
        let b = sys.add_behavior("B", m);
        sys.behavior_mut(b).body = vec![assign(var(shared), int_const(2, 16))];
        let c = sys.add_behavior("C", m);
        let own = sys.add_variable("o", Ty::Int(16), c);
        sys.behavior_mut(c).body = vec![assign(var(own), int_const(3, 16))];
        let plan = plan_shards(&sys, 8);
        assert_eq!(plan.shard_of[a.index()], plan.shard_of[b.index()]);
        assert_eq!(plan.shards, 2, "two atomic groups, two shards");
        assert_eq!(
            plan.var_shard[shared.index()],
            Some(plan.shard_of[a.index()]),
            "shared variable owned by its accessors' shard"
        );
        assert_eq!(plan.var_shard[own.index()], Some(plan.shard_of[c.index()]));
    }

    /// The plan is a pure function of its inputs.
    #[test]
    fn plan_is_deterministic() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        for i in 0..6 {
            let b = sys.add_behavior(format!("B{i}"), m);
            let v = sys.add_variable(format!("v{i}"), Ty::Int(8), b);
            sys.behavior_mut(b).body = vec![assign(var(v), int_const(i, 8))];
        }
        let p1 = plan_shards(&sys, 3);
        let p2 = plan_shards(&sys, 3);
        assert_eq!(p1, p2);
        assert_eq!(p1.shards, 3);
    }

    /// Requesting more shards than groups degrades gracefully, and 0/1
    /// shards return the scalar plan.
    #[test]
    fn shard_count_degrades_gracefully() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("only", m);
        let v = sys.add_variable("v", Ty::Int(8), b);
        sys.behavior_mut(b).body = vec![assign(var(v), int_const(1, 8))];
        assert_eq!(plan_shards(&sys, 16), ShardPlan::scalar(1));
        assert_eq!(plan_shards(&sys, 0).shards, 1);
        assert_eq!(plan_shards(&sys, 1).shards, 1);
    }
}

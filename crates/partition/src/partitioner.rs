//! The partitioner: placements, channel derivation, channel grouping.

use std::collections::HashMap;

use ifsyn_estimate::{ChannelTimings, PerformanceEstimator};
use ifsyn_spec::{BehaviorId, ChannelId, ModuleId, System};

use crate::cluster::{cluster, Closeness, Object};
use crate::derive::derive_channels;
use crate::error::PartitionError;

/// The output of partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// The partitioned system: behaviors reassigned to modules, remote
    /// accesses rewritten into channel operations.
    pub system: System,
    /// The derived channels, in creation order.
    pub channels: Vec<ChannelId>,
}

impl PartitionResult {
    /// Groups channels that connect the same pair of modules — the
    /// groups that channel merging implements as single buses to
    /// minimise interconnect at module boundaries.
    pub fn channel_groups(&self) -> Vec<Vec<ChannelId>> {
        let mut groups: Vec<((ModuleId, ModuleId), Vec<ChannelId>)> = Vec::new();
        for &ch in &self.channels {
            let c = self.system.channel(ch);
            let ma = self.system.behavior(c.accessor).module;
            let mv = self
                .system
                .behavior(self.system.variable(c.variable).owner)
                .module;
            let key = if ma <= mv { (ma, mv) } else { (mv, ma) };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(ch),
                None => groups.push((key, vec![ch])),
            }
        }
        groups.into_iter().map(|(_, v)| v).collect()
    }
}

/// Groups behaviors and variables into modules and derives channels.
///
/// # Example
///
/// Reproduce the paper's Fig. 6 partition: FLC processes on `chip1`,
/// memories on `chip2`:
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ifsyn_partition::Partitioner;
/// use ifsyn_spec::{System, Ty, dsl::*};
///
/// let mut sys = System::new("flc");
/// let m = sys.add_module("all");
/// let eval = sys.add_behavior("EVAL_R3", m);
/// let trru0 = sys.add_variable("trru0", Ty::array(Ty::Int(16), 128), eval);
/// let i = sys.add_variable("i", Ty::Int(16), eval);
/// sys.behavior_mut(eval).body = vec![for_loop(
///     var(i), int_const(0, 16), int_const(127, 16),
///     vec![assign(index(var(trru0), load(var(i))), load(var(i)))],
/// )];
///
/// let result = Partitioner::new()
///     .place_behavior("EVAL_R3", "chip1")
///     .place_variable("trru0", "chip2")
///     .partition(&sys)?;
/// assert_eq!(result.channels.len(), 1);
/// let ch = result.system.channel(result.channels[0]);
/// assert_eq!(ch.accesses, 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    behavior_placements: Vec<(String, String)>,
    variable_placements: Vec<(String, String)>,
    auto_modules: Option<usize>,
}

impl Partitioner {
    /// Creates a partitioner with no placements.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins a behavior to a named module.
    pub fn place_behavior(
        mut self,
        behavior: impl Into<String>,
        module: impl Into<String>,
    ) -> Self {
        self.behavior_placements
            .push((behavior.into(), module.into()));
        self
    }

    /// Pins a variable to a named module. The variable's storage is
    /// reassigned to a `<module>_store` behavior created on demand.
    pub fn place_variable(
        mut self,
        variable: impl Into<String>,
        module: impl Into<String>,
    ) -> Self {
        self.variable_placements
            .push((variable.into(), module.into()));
        self
    }

    /// Switches to automatic closeness clustering into `modules` modules
    /// (manual placements are ignored in this mode).
    pub fn auto_cluster(mut self, modules: usize) -> Self {
        self.auto_modules = Some(modules);
        self
    }

    /// Partitions `system`.
    ///
    /// Unplaced behaviors keep their current module; unplaced variables
    /// stay with their owner. After rewriting, every channel's access
    /// count is filled in from a static walk of its accessor's body.
    ///
    /// # Errors
    ///
    /// * [`PartitionError::UnknownObject`] for a placement naming nothing;
    /// * [`PartitionError::UnsupportedRemoteAccess`] when a remote access
    ///   sits in a position the rewriter cannot transform;
    /// * [`PartitionError::BadModuleCount`] for impossible auto-cluster
    ///   requests.
    pub fn partition(&self, system: &System) -> Result<PartitionResult, PartitionError> {
        let mut sys = system.clone();
        match self.auto_modules {
            Some(k) => self.apply_auto(&mut sys, k)?,
            None => self.apply_manual(&mut sys)?,
        }
        let channels = derive_channels(&mut sys)?;
        fill_access_counts(&mut sys, &channels)?;
        sys.check().map_err(|e| PartitionError::Internal {
            message: e.to_string(),
        })?;
        Ok(PartitionResult {
            system: sys,
            channels,
        })
    }

    fn apply_manual(&self, sys: &mut System) -> Result<(), PartitionError> {
        let mut module_ids: HashMap<String, ModuleId> = sys
            .modules
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), ModuleId::new(i as u32)))
            .collect();
        let mut module_of = |sys: &mut System, name: &str| -> ModuleId {
            if let Some(&id) = module_ids.get(name) {
                return id;
            }
            let id = sys.add_module(name);
            module_ids.insert(name.to_string(), id);
            id
        };
        for (bname, mname) in &self.behavior_placements {
            let b = sys
                .behavior_by_name(bname)
                .ok_or_else(|| PartitionError::UnknownObject {
                    name: bname.clone(),
                })?;
            let m = module_of(sys, mname);
            sys.behavior_mut(b).module = m;
        }
        for (vname, mname) in &self.variable_placements {
            let v = sys
                .variable_by_name(vname)
                .ok_or_else(|| PartitionError::UnknownObject {
                    name: vname.clone(),
                })?;
            let m = module_of(sys, mname);
            let store = store_behavior(sys, m);
            sys.variables[v.index()].owner = store;
        }
        Ok(())
    }

    fn apply_auto(&self, sys: &mut System, k: usize) -> Result<(), PartitionError> {
        let objects: Vec<Object> = (0..sys.behaviors.len())
            .map(|i| Object::Behavior(BehaviorId::new(i as u32)))
            .chain(
                (0..sys.variables.len())
                    .map(|i| Object::Variable(ifsyn_spec::VarId::new(i as u32))),
            )
            .collect();
        if k == 0 || k > objects.len() {
            return Err(PartitionError::BadModuleCount {
                requested: k,
                objects: objects.len(),
            });
        }
        let closeness = Closeness::measure(sys);
        let assignment = cluster(&objects, &closeness, k);
        // Fresh module list.
        sys.modules.clear();
        let modules: Vec<ModuleId> = (0..k)
            .map(|i| sys.add_module(format!("module{i}")))
            .collect();
        for (obj, &c) in objects.iter().zip(&assignment) {
            match obj {
                Object::Behavior(b) => sys.behavior_mut(*b).module = modules[c],
                Object::Variable(_) => {}
            }
        }
        // Variables move after behaviors so store behaviors land on the
        // right modules.
        for (obj, &c) in objects.iter().zip(&assignment) {
            if let Object::Variable(v) = obj {
                let owner_module = sys.behavior(sys.variable(*v).owner).module;
                if owner_module != modules[c] {
                    let store = store_behavior(sys, modules[c]);
                    sys.variables[v.index()].owner = store;
                }
            }
        }
        Ok(())
    }
}

/// Finds or creates the variable-hosting behavior of a module.
fn store_behavior(sys: &mut System, module: ModuleId) -> BehaviorId {
    let name = format!("{}_store", sys.module(module).name);
    if let Some(b) = sys.behavior_by_name(&name) {
        return b;
    }
    sys.add_behavior(name, module)
}

/// Sets each derived channel's access count from a static walk of the
/// accessor's rewritten body.
fn fill_access_counts(sys: &mut System, channels: &[ChannelId]) -> Result<(), PartitionError> {
    let estimator = PerformanceEstimator::new();
    let mut counts: HashMap<ChannelId, u64> = HashMap::new();
    let accessors: Vec<BehaviorId> = {
        let mut v: Vec<BehaviorId> = channels.iter().map(|&c| sys.channel(c).accessor).collect();
        v.dedup();
        v
    };
    for b in accessors {
        let est = estimator
            .estimate(sys, b, &ChannelTimings::new())
            .map_err(|e| PartitionError::Internal {
                message: e.to_string(),
            })?;
        for (ch, n) in est.channel_accesses {
            *counts.entry(ch).or_insert(0) += n;
        }
    }
    for &ch in channels {
        if let Some(&n) = counts.get(&ch) {
            sys.channels[ch.index()].accesses = n;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{ChannelDirection, Stmt, Ty};

    /// One-module system: A reads and writes MEM, B reads STATUS.
    fn unpartitioned() -> System {
        let mut sys = System::new("t");
        let m = sys.add_module("all");
        let a = sys.add_behavior("A", m);
        let b = sys.add_behavior("Bb", m);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 64), a);
        let status = sys.add_variable("STATUS", Ty::Bits(8), b);
        let i = sys.add_variable("i", Ty::Int(16), a);
        let x = sys.add_variable("x", Ty::Int(16), b);
        sys.behavior_mut(a).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(63, 16),
            vec![
                assign(index(var(mem), load(var(i))), load(var(i))),
                assign(var(status), bits_const(1, 8)),
            ],
        )];
        sys.behavior_mut(b).body = vec![
            assign(var(x), load(index(var(mem), int_const(3, 16)))),
            Stmt::compute(10, "work"),
        ];
        sys
    }

    #[test]
    fn manual_partition_derives_expected_channels() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip1")
            .place_variable("MEM", "chip2")
            .place_variable("STATUS", "chip2")
            .partition(&sys)
            .unwrap();
        // A writes MEM (64x), A writes STATUS (64x), Bb reads MEM (1x).
        assert_eq!(result.channels.len(), 3);
        let sys = &result.system;
        let by_name = |n: &str| sys.channel(sys.channel_by_name(n).unwrap());
        let _ = by_name;
        let accesses: Vec<u64> = result
            .channels
            .iter()
            .map(|&c| sys.channel(c).accesses)
            .collect();
        assert!(accesses.contains(&64));
        assert!(accesses.contains(&1));
    }

    #[test]
    fn variables_move_to_store_behaviors() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip1")
            .place_variable("MEM", "chip2")
            .partition(&sys)
            .unwrap();
        let sys = &result.system;
        let mem = sys.variable_by_name("MEM").unwrap();
        let owner = sys.variable(mem).owner;
        assert_eq!(sys.behavior(owner).name, "chip2_store");
        assert_eq!(sys.module(sys.behavior(owner).module).name, "chip2");
    }

    #[test]
    fn colocated_variable_creates_no_channel() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip2")
            .place_variable("MEM", "chip1") // stays with A
            .place_variable("STATUS", "chip1")
            .partition(&sys)
            .unwrap();
        // A's MEM/STATUS accesses are local now; only Bb's MEM read is
        // remote.
        let remote_reads: Vec<_> = result
            .channels
            .iter()
            .filter(|&&c| result.system.channel(c).direction == ChannelDirection::Read)
            .collect();
        assert_eq!(remote_reads.len(), 1);
        assert_eq!(result.channels.len(), 1);
    }

    #[test]
    fn unknown_placement_errors() {
        let sys = unpartitioned();
        let err = Partitioner::new()
            .place_behavior("NOPE", "chip1")
            .partition(&sys)
            .unwrap_err();
        assert!(matches!(err, PartitionError::UnknownObject { .. }));
    }

    #[test]
    fn channel_groups_by_module_pair() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip1")
            .place_variable("MEM", "chip2")
            .place_variable("STATUS", "chip2")
            .partition(&sys)
            .unwrap();
        // All three channels connect chip1 <-> chip2: one group.
        let groups = result.channel_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn channel_groups_split_by_pairs() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip3")
            .place_variable("MEM", "chip2")
            .place_variable("STATUS", "chip2")
            .partition(&sys)
            .unwrap();
        // chip1<->chip2 carries A's two channels; chip3<->chip2 carries
        // Bb's read.
        let groups = result.channel_groups();
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn auto_cluster_colocates_heavy_pairs() {
        let sys = unpartitioned();
        let result = Partitioner::new().auto_cluster(2).partition(&sys).unwrap();
        // A<->MEM is by far the heaviest pair (64 x 22 bits); they must
        // share a module, so no A-MEM channel exists.
        let sys = &result.system;
        let a = sys.behavior_by_name("A").unwrap();
        let mem = sys.variable_by_name("MEM").unwrap();
        let mem_module = sys.behavior(sys.variable(mem).owner).module;
        assert_eq!(sys.behavior(a).module, mem_module);
    }

    #[test]
    fn auto_cluster_bad_k_errors() {
        let sys = unpartitioned();
        assert!(matches!(
            Partitioner::new().auto_cluster(0).partition(&sys),
            Err(PartitionError::BadModuleCount { .. })
        ));
        assert!(matches!(
            Partitioner::new().auto_cluster(99).partition(&sys),
            Err(PartitionError::BadModuleCount { .. })
        ));
    }

    #[test]
    fn partitioned_system_still_validates_and_simulates_abstractly() {
        let sys = unpartitioned();
        let result = Partitioner::new()
            .place_behavior("A", "chip1")
            .place_behavior("Bb", "chip1")
            .place_variable("MEM", "chip2")
            .place_variable("STATUS", "chip2")
            .partition(&sys)
            .unwrap();
        assert!(result.system.check().is_ok());
    }
}

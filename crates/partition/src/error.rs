//! Error type for partitioning.

use std::error::Error;
use std::fmt;

/// Errors produced while partitioning a system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A placement referenced a behavior or variable that does not exist.
    UnknownObject {
        /// The referenced name.
        name: String,
    },
    /// A remote variable access appears in a position the rewriter cannot
    /// transform (loop bound, branch condition, call argument).
    UnsupportedRemoteAccess {
        /// The behavior containing the access.
        behavior: String,
        /// The remote variable.
        variable: String,
    },
    /// The requested module count is impossible (zero, or more modules
    /// than objects).
    BadModuleCount {
        /// The requested count.
        requested: usize,
        /// The number of placeable objects.
        objects: usize,
    },
    /// The rewritten system failed validation (partitioner bug guard).
    Internal {
        /// The underlying message.
        message: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnknownObject { name } => {
                write!(f, "no behavior or variable named `{name}`")
            }
            PartitionError::UnsupportedRemoteAccess { behavior, variable } => write!(
                f,
                "behavior `{behavior}` accesses remote variable `{variable}` in an \
                 unsupported position (condition, bound or call argument)"
            ),
            PartitionError::BadModuleCount { requested, objects } => write!(
                f,
                "cannot cluster {objects} objects into {requested} modules"
            ),
            PartitionError::Internal { message } => {
                write!(f, "partitioning produced an invalid system: {message}")
            }
        }
    }
}

impl Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = PartitionError::UnknownObject { name: "MEM".into() };
        assert!(e.to_string().contains("`MEM`"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PartitionError>();
    }
}

//! Channel derivation: find cross-module variable accesses and rewrite
//! them into abstract channel operations.

use std::collections::HashMap;

use ifsyn_spec::{
    Channel, ChannelDirection, ChannelId, Expr, ModuleId, Place, Stmt, System, Ty, VarId,
};

use crate::error::PartitionError;

/// Derives channels for every remote access in `sys` and rewrites the
/// bodies. Returns the created channels.
pub(crate) fn derive_channels(sys: &mut System) -> Result<Vec<ChannelId>, PartitionError> {
    let mut ctx = Derive {
        var_module: sys
            .variables
            .iter()
            .map(|v| sys.behavior(v.owner).module)
            .collect(),
        channels: HashMap::new(),
        created: Vec::new(),
        temp_counter: 0,
    };
    for b in 0..sys.behaviors.len() {
        let behavior = ifsyn_spec::BehaviorId::new(b as u32);
        let body = std::mem::take(&mut sys.behaviors[b].body);
        let module = sys.behaviors[b].module;
        let new_body = ctx.rewrite_body(sys, behavior, module, body)?;
        sys.behaviors[b].body = new_body;
    }
    Ok(ctx.created)
}

struct Derive {
    /// Module of each variable (by owner's module), indexed by var id.
    var_module: Vec<ModuleId>,
    /// `(behavior, variable, is_write)` → channel.
    channels: HashMap<(u32, u32, bool), ChannelId>,
    created: Vec<ChannelId>,
    temp_counter: u32,
}

impl Derive {
    fn is_remote(&self, sys: &System, module: ModuleId, v: VarId) -> bool {
        // A freshly created temp may postdate the snapshot; temps are
        // always local.
        self.var_module
            .get(v.index())
            .map(|&m| m != module)
            .unwrap_or(false)
            && v.index() < sys.variables.len()
    }

    fn channel_for(
        &mut self,
        sys: &mut System,
        behavior: ifsyn_spec::BehaviorId,
        v: VarId,
        direction: ChannelDirection,
    ) -> ChannelId {
        let key = (
            behavior.index() as u32,
            v.index() as u32,
            direction == ChannelDirection::Write,
        );
        if let Some(&ch) = self.channels.get(&key) {
            return ch;
        }
        let ty = &sys.variable(v).ty;
        let ch = sys.add_channel(Channel {
            name: format!("ch{}", sys.channels.len()),
            accessor: behavior,
            variable: v,
            direction,
            data_bits: ty.element_width(),
            addr_bits: ty.addr_bits(),
            accesses: 0, // filled in by the partitioner afterwards
        });
        self.channels.insert(key, ch);
        self.created.push(ch);
        ch
    }

    fn fresh_temp(&mut self, sys: &mut System, behavior: ifsyn_spec::BehaviorId, ty: Ty) -> VarId {
        let name = format!("rtmp{}_{}", self.temp_counter, sys.behavior(behavior).name);
        self.temp_counter += 1;
        sys.add_variable(name, ty, behavior)
    }

    fn rewrite_body(
        &mut self,
        sys: &mut System,
        behavior: ifsyn_spec::BehaviorId,
        module: ModuleId,
        body: Vec<Stmt>,
    ) -> Result<Vec<Stmt>, PartitionError> {
        let mut out = Vec::with_capacity(body.len());
        for stmt in body {
            self.rewrite_stmt(sys, behavior, module, stmt, &mut out)?;
        }
        Ok(out)
    }

    fn rewrite_stmt(
        &mut self,
        sys: &mut System,
        behavior: ifsyn_spec::BehaviorId,
        module: ModuleId,
        stmt: Stmt,
        out: &mut Vec<Stmt>,
    ) -> Result<(), PartitionError> {
        match stmt {
            Stmt::Assign { place, value, cost } => {
                let value = self.extract_reads(sys, behavior, module, value, out)?;
                match self.classify_target(sys, module, &place) {
                    Target::Local => {
                        let place = self.rewrite_place(sys, behavior, module, place, out)?;
                        out.push(Stmt::Assign { place, value, cost });
                    }
                    Target::RemoteScalar(v) => {
                        let ch = self.channel_for(sys, behavior, v, ChannelDirection::Write);
                        out.push(Stmt::ChannelSend {
                            channel: ch,
                            addr: None,
                            data: value,
                        });
                    }
                    Target::RemoteElement(v, idx) => {
                        let idx = self.extract_reads(sys, behavior, module, idx, out)?;
                        let ch = self.channel_for(sys, behavior, v, ChannelDirection::Write);
                        out.push(Stmt::ChannelSend {
                            channel: ch,
                            addr: Some(idx),
                            data: value,
                        });
                    }
                    Target::Unsupported(v) => {
                        return Err(PartitionError::UnsupportedRemoteAccess {
                            behavior: sys.behavior(behavior).name.clone(),
                            variable: sys.variable(v).name.clone(),
                        })
                    }
                }
            }
            Stmt::SignalAssign {
                signal,
                value,
                cost,
            } => {
                let value = self.extract_reads(sys, behavior, module, value, out)?;
                out.push(Stmt::SignalAssign {
                    signal,
                    value,
                    cost,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // `if` evaluates its condition once: hoisting the remote
                // reads in front is semantics-preserving.
                let cond = self.extract_reads(sys, behavior, module, cond, out)?;
                let then_body = self.rewrite_body(sys, behavior, module, then_body)?;
                let else_body = self.rewrite_body(sys, behavior, module, else_body)?;
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                // Bounds evaluate once on entry: hoisting is safe.
                let from = self.extract_reads(sys, behavior, module, from, out)?;
                let to = self.extract_reads(sys, behavior, module, to, out)?;
                let body = self.rewrite_body(sys, behavior, module, body)?;
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            Stmt::While { cond, body } => {
                // The condition re-evaluates every iteration; a remote
                // read here cannot be hoisted.
                if let Some(v) = self.first_remote_in_expr(sys, module, &cond) {
                    return Err(PartitionError::UnsupportedRemoteAccess {
                        behavior: sys.behavior(behavior).name.clone(),
                        variable: sys.variable(v).name.clone(),
                    });
                }
                let body = self.rewrite_body(sys, behavior, module, body)?;
                out.push(Stmt::While { cond, body });
            }
            Stmt::Call { procedure, args } => {
                for arg in &args {
                    let expr_vars = match arg {
                        ifsyn_spec::Arg::In(e) => {
                            let mut vs = Vec::new();
                            e.collect_vars(&mut vs);
                            vs
                        }
                        ifsyn_spec::Arg::Out(p) | ifsyn_spec::Arg::InOut(p) => {
                            p.root_var().into_iter().collect()
                        }
                    };
                    for v in expr_vars {
                        if self.is_remote(sys, module, v) {
                            return Err(PartitionError::UnsupportedRemoteAccess {
                                behavior: sys.behavior(behavior).name.clone(),
                                variable: sys.variable(v).name.clone(),
                            });
                        }
                    }
                }
                out.push(Stmt::Call { procedure, args });
            }
            Stmt::Assert { cond, note } => {
                // `assert` evaluates once when reached: hoisting is safe.
                let cond = self.extract_reads(sys, behavior, module, cond, out)?;
                out.push(Stmt::Assert { cond, note });
            }
            other @ (Stmt::Wait(_)
            | Stmt::ChannelSend { .. }
            | Stmt::ChannelReceive { .. }
            | Stmt::Compute { .. }
            | Stmt::Return) => out.push(other),
        }
        Ok(())
    }

    /// Rewrites index expressions *inside* a local place.
    fn rewrite_place(
        &mut self,
        sys: &mut System,
        behavior: ifsyn_spec::BehaviorId,
        module: ModuleId,
        place: Place,
        out: &mut Vec<Stmt>,
    ) -> Result<Place, PartitionError> {
        Ok(match place {
            Place::Index { base, index } => {
                let base = self.rewrite_place(sys, behavior, module, *base, out)?;
                let index = self.extract_reads(sys, behavior, module, *index, out)?;
                Place::Index {
                    base: Box::new(base),
                    index: Box::new(index),
                }
            }
            Place::Slice { base, hi, lo } => {
                let base = self.rewrite_place(sys, behavior, module, *base, out)?;
                Place::Slice {
                    base: Box::new(base),
                    hi,
                    lo,
                }
            }
            other => other,
        })
    }

    /// Replaces every remote-variable read inside `expr` with a read of a
    /// fresh temp, prepending the corresponding `ChannelReceive`.
    fn extract_reads(
        &mut self,
        sys: &mut System,
        behavior: ifsyn_spec::BehaviorId,
        module: ModuleId,
        expr: Expr,
        out: &mut Vec<Stmt>,
    ) -> Result<Expr, PartitionError> {
        Ok(match expr {
            Expr::Load(place) => match self.classify_target(sys, module, &place) {
                Target::Local => {
                    let place = self.rewrite_place(sys, behavior, module, place, out)?;
                    Expr::Load(place)
                }
                Target::RemoteScalar(v) => {
                    let ty = sys.variable(v).ty.clone();
                    let temp = self.fresh_temp(sys, behavior, ty);
                    let ch = self.channel_for(sys, behavior, v, ChannelDirection::Read);
                    out.push(Stmt::ChannelReceive {
                        channel: ch,
                        addr: None,
                        target: Place::Var(temp),
                    });
                    Expr::Load(Place::Var(temp))
                }
                Target::RemoteElement(v, idx) => {
                    let idx = self.extract_reads(sys, behavior, module, idx, out)?;
                    let elem_ty = match &sys.variable(v).ty {
                        Ty::Array { elem, .. } => (**elem).clone(),
                        other => other.clone(),
                    };
                    let temp = self.fresh_temp(sys, behavior, elem_ty);
                    let ch = self.channel_for(sys, behavior, v, ChannelDirection::Read);
                    out.push(Stmt::ChannelReceive {
                        channel: ch,
                        addr: Some(idx),
                        target: Place::Var(temp),
                    });
                    Expr::Load(Place::Var(temp))
                }
                Target::Unsupported(v) => {
                    return Err(PartitionError::UnsupportedRemoteAccess {
                        behavior: sys.behavior(behavior).name.clone(),
                        variable: sys.variable(v).name.clone(),
                    })
                }
            },
            Expr::Unary { op, arg } => Expr::Unary {
                op,
                arg: Box::new(self.extract_reads(sys, behavior, module, *arg, out)?),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op,
                lhs: Box::new(self.extract_reads(sys, behavior, module, *lhs, out)?),
                rhs: Box::new(self.extract_reads(sys, behavior, module, *rhs, out)?),
            },
            Expr::SliceOf { base, hi, lo } => Expr::SliceOf {
                base: Box::new(self.extract_reads(sys, behavior, module, *base, out)?),
                hi,
                lo,
            },
            Expr::Resize { base, width } => Expr::Resize {
                base: Box::new(self.extract_reads(sys, behavior, module, *base, out)?),
                width,
            },
            Expr::DynSliceOf {
                base,
                offset,
                width,
            } => Expr::DynSliceOf {
                base: Box::new(self.extract_reads(sys, behavior, module, *base, out)?),
                offset: Box::new(self.extract_reads(sys, behavior, module, *offset, out)?),
                width,
            },
            other @ (Expr::Const(_) | Expr::Signal(_)) => other,
        })
    }

    fn classify_target(&self, sys: &System, module: ModuleId, place: &Place) -> Target {
        match place {
            Place::Var(v) => {
                if self.is_remote(sys, module, *v) {
                    Target::RemoteScalar(*v)
                } else {
                    Target::Local
                }
            }
            Place::Index { base, index } => match &**base {
                Place::Var(v) if self.is_remote(sys, module, *v) => {
                    Target::RemoteElement(*v, (**index).clone())
                }
                _ => {
                    if let Some(v) = place.root_var() {
                        if self.is_remote(sys, module, v) {
                            return Target::Unsupported(v);
                        }
                    }
                    Target::Local
                }
            },
            Place::Slice { .. } | Place::DynSlice { .. } => {
                if let Some(v) = place.root_var() {
                    if self.is_remote(sys, module, v) {
                        return Target::Unsupported(v);
                    }
                }
                Target::Local
            }
            Place::Local(_) => Target::Local,
        }
    }

    fn first_remote_in_expr(&self, sys: &System, module: ModuleId, expr: &Expr) -> Option<VarId> {
        let mut vars = Vec::new();
        expr.collect_vars(&mut vars);
        vars.into_iter().find(|&v| self.is_remote(sys, module, v))
    }
}

enum Target {
    Local,
    RemoteScalar(VarId),
    RemoteElement(VarId, Expr),
    Unsupported(VarId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;

    /// Behavior A on chip1 accessing MEM (owned by a store behavior on
    /// chip2) — the paper's Fig. 1.
    fn fig1ish() -> (System, ifsyn_spec::BehaviorId, VarId, VarId) {
        let mut sys = System::new("fig1");
        let chip1 = sys.add_module("chip1");
        let chip2 = sys.add_module("chip2");
        let a = sys.add_behavior("A", chip1);
        let store = sys.add_behavior("chip2_store", chip2);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 64), store);
        let status = sys.add_variable("STATUS", Ty::Bits(8), store);
        (sys, a, mem, status)
    }

    #[test]
    fn remote_write_becomes_channel_send() {
        let (mut sys, a, mem, _) = fig1ish();
        let ar = sys.add_variable("AR", Ty::Int(16), a);
        let accum = sys.add_variable("ACCUM", Ty::Int(16), a);
        sys.behavior_mut(a).body = vec![assign(index(var(mem), load(var(ar))), load(var(accum)))];
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 1);
        let ch = sys.channel(chans[0]);
        assert_eq!(ch.direction, ChannelDirection::Write);
        assert_eq!(ch.data_bits, 16);
        assert_eq!(ch.addr_bits, 6);
        assert!(matches!(sys.behavior(a).body[0], Stmt::ChannelSend { .. }));
        assert!(sys.check().is_ok());
    }

    #[test]
    fn remote_read_is_extracted_into_receive_plus_temp() {
        let (mut sys, a, mem, _) = fig1ish();
        let pc = sys.add_variable("PC", Ty::Int(16), a);
        let ir = sys.add_variable("IR", Ty::Int(16), a);
        // IR := MEM(PC) + 1
        sys.behavior_mut(a).body = vec![assign(
            var(ir),
            add(load(index(var(mem), load(var(pc)))), int_const(1, 16)),
        )];
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 1);
        assert_eq!(sys.channel(chans[0]).direction, ChannelDirection::Read);
        let body = &sys.behavior(a).body;
        assert_eq!(body.len(), 2);
        assert!(matches!(body[0], Stmt::ChannelReceive { .. }));
        assert!(matches!(body[1], Stmt::Assign { .. }));
        assert!(sys.check().is_ok());
    }

    #[test]
    fn scalar_remote_write_has_no_address() {
        let (mut sys, a, _, status) = fig1ish();
        sys.behavior_mut(a).body = vec![assign(var(status), bits_const(0x0a, 8))];
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 1);
        assert_eq!(sys.channel(chans[0]).addr_bits, 0);
        match &sys.behavior(a).body[0] {
            Stmt::ChannelSend { addr, .. } => assert!(addr.is_none()),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn repeated_access_reuses_one_channel() {
        let (mut sys, a, mem, _) = fig1ish();
        let i = sys.add_variable("i", Ty::Int(16), a);
        sys.behavior_mut(a).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(63, 16),
            vec![assign(index(var(mem), load(var(i))), load(var(i)))],
        )];
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 1, "one channel per (behavior, var, dir)");
    }

    #[test]
    fn read_and_write_of_same_variable_make_two_channels() {
        let (mut sys, a, mem, _) = fig1ish();
        let i = sys.add_variable("i", Ty::Int(16), a);
        sys.behavior_mut(a).body = vec![assign(
            index(var(mem), int_const(0, 16)),
            load(index(var(mem), int_const(1, 16))),
        )];
        let _ = i;
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 2);
        let dirs: Vec<_> = chans.iter().map(|&c| sys.channel(c).direction).collect();
        assert!(dirs.contains(&ChannelDirection::Read));
        assert!(dirs.contains(&ChannelDirection::Write));
    }

    #[test]
    fn local_accesses_stay_untouched() {
        let (mut sys, a, _, _) = fig1ish();
        let x = sys.add_variable("x", Ty::Int(16), a);
        sys.behavior_mut(a).body = vec![assign(var(x), int_const(1, 16))];
        let chans = derive_channels(&mut sys).unwrap();
        assert!(chans.is_empty());
        assert!(matches!(sys.behavior(a).body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn remote_in_while_condition_is_rejected() {
        let (mut sys, a, _, status) = fig1ish();
        sys.behavior_mut(a).body = vec![while_loop(
            eq(load(var(status)), bits_const(0, 8)),
            vec![Stmt::compute(1, "spin")],
        )];
        let err = derive_channels(&mut sys).unwrap_err();
        assert!(matches!(
            err,
            PartitionError::UnsupportedRemoteAccess { .. }
        ));
    }

    #[test]
    fn remote_in_if_condition_is_hoisted() {
        let (mut sys, a, _, status) = fig1ish();
        sys.behavior_mut(a).body = vec![if_then(
            eq(load(var(status)), bits_const(1, 8)),
            vec![Stmt::compute(1, "go")],
        )];
        let chans = derive_channels(&mut sys).unwrap();
        assert_eq!(chans.len(), 1);
        let body = &sys.behavior(a).body;
        assert!(matches!(body[0], Stmt::ChannelReceive { .. }));
        assert!(matches!(body[1], Stmt::If { .. }));
    }
}

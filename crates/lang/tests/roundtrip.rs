//! Round-trip and robustness properties of the language frontend.

use ifsyn_spec::rng::SplitMix64;

/// Every shipped spec file parses, prints and reparses to the same
/// system (print∘parse is the identity on the language's image).
#[test]
fn shipped_specs_roundtrip() {
    let specs_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&specs_dir).expect("specs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "ifs") != Some(true) {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("readable");
        let sys =
            ifsyn_lang::parse_system(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Auto-declared loop counters land at different table positions
        // on reparse, so System equality is too strict; the correct
        // invariant is that printing reaches a fixpoint after one
        // parse/print cycle (the systems are isomorphic).
        let p1 =
            ifsyn_lang::print_system(&sys).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let reparsed = ifsyn_lang::parse_system(&p1)
            .unwrap_or_else(|e| panic!("{} (reprinted): {e}\n{p1}", path.display()));
        let p2 = ifsyn_lang::print_system(&reparsed)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(p1, p2, "{} print is not a fixpoint", path.display());
        // Channel metadata must survive exactly.
        assert_eq!(sys.channels.len(), reparsed.channels.len());
        for (a, b) in sys.channels.iter().zip(&reparsed.channels) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.message_bits(), b.message_bits());
            assert_eq!(a.accesses, b.accesses);
        }
    }
    assert!(seen >= 2, "expected shipped .ifs files, found {seen}");
}

/// The parser returns errors, never panics, on arbitrary input.
#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = SplitMix64::new(0x1a_96);
    for _ in 0..512 {
        let len = rng.below(200) as usize;
        let input: String = (0..len)
            .map(|_| {
                // Bias toward ASCII with some multi-byte chars mixed in.
                if rng.below(8) == 0 {
                    char::from_u32(rng.range_u32(0x80, 0x2fff)).unwrap_or('¤')
                } else {
                    char::from(rng.range_u32(0x09, 0x7e) as u8)
                }
            })
            .collect();
        let _ = ifsyn_lang::parse_system(&input);
    }
}

/// Nor on inputs that look structurally plausible.
#[test]
fn parser_never_panics_on_plausible_soup() {
    const WORDS: [&str; 44] = [
        "system", "module", "behavior", "on", "store", "channel", "var", ":", ";", "{", "}", "(",
        ")", "[", "]", "int", "<", ">", "bits", "bit", "if", "else", "for", "in", "to", "while",
        "wait", "until", "send", "receive", "compute", ":=", "<=", "+", "*", "=", "x", "y", "m",
        "p", "1", "128", "\"0101\"", "'1'",
    ];
    let mut rng = SplitMix64::new(0x50_0b);
    for _ in 0..512 {
        let len = rng.below(60) as usize;
        let input = (0..len)
            .map(|_| *rng.pick(&WORDS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = ifsyn_lang::parse_system(&input);
    }
}

//! # ifsyn-lang — textual specification frontend
//!
//! A small specification language that builds [`ifsyn_spec::System`]
//! values from text, so systems can be written as files rather than
//! Rust code — the role SpecCharts/VHDL text played for the original
//! SpecSyn tools.
//!
//! ## The language
//!
//! ```text
//! system flc;
//!
//! module chip1;
//! module chip2;
//!
//! store chip2_store on chip2 {
//!     var trru0 : int<16>[128];
//! }
//!
//! behavior EVAL_R3 on chip1 {
//!     var i : int<16>;
//!     for i in 0 to 127 {
//!         compute 6 "evaluate rule";
//!         send ch1(i, i * 3 + 1);
//!     }
//! }
//!
//! channel ch1 : EVAL_R3 writes trru0;
//! ```
//!
//! * `module` declares a chip; `behavior NAME on MODULE { ... }`
//!   declares a process (add `repeats` before `{` for a server loop);
//!   `store` is a behavior with no body, hosting variables.
//! * `var NAME : TYPE (= INIT)?` declares a variable owned by the
//!   enclosing behavior. Types: `bit`, `bits<N>`, `int<N>`, and array
//!   suffix `TYPE[N]`.
//! * `signal NAME : TYPE;` declares a global wire.
//! * Statements: `place := expr;`, `NAME <= expr;` (signal drive),
//!   `if expr { } else { }`, `for v in a to b { }`, `while expr { }`,
//!   `wait until expr;` / `wait on s1, s2;` / `wait for N;`,
//!   `compute N "note";`, `send ch(data);` / `send ch(addr, data);`,
//!   `receive ch(place);` / `receive ch(addr, place);`, `return;`.
//! * `channel NAME : BEHAVIOR writes|reads VARIABLE;` declares the
//!   abstract channel; message sizes derive from the variable's type
//!   and access counts from a static walk of the accessor's body.
//!
//! ## Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let src = r#"
//!     system demo;
//!     module chip;
//!     behavior p on chip {
//!         var x : int<16>;
//!         x := 40 + 2;
//!     }
//! "#;
//! let sys = ifsyn_lang::parse_system(src)?;
//! assert_eq!(sys.name, "demo");
//! assert!(sys.behavior_by_name("p").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod print;

pub use error::ParseError;
pub use print::{print_system, PrintError};

use ifsyn_spec::System;

/// Parses a specification source into a validated [`System`].
///
/// # Errors
///
/// Returns [`ParseError`] with a line/column position for lexical,
/// syntactic and name-resolution failures, and for systems that fail
/// [`System::check`].
pub fn parse_system(source: &str) -> Result<System, ParseError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    lower::lower(&ast)
}

//! Recursive-descent parser.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{Tok, Token};

pub(crate) fn parse(tokens: &[Token]) -> Result<File, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    p.file()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn here(&self) -> (u32, u32) {
        match self.peek() {
            Some(t) => (t.line, t.column),
            None => self
                .tokens
                .last()
                .map(|t| (t.line, t.column + 1))
                .unwrap_or((1, 1)),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(line, column, message)
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {what}, found {}",
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(t) => format!("{:?}", t.kind),
            None => "end of input".to_string(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err(format!(
                "expected {what}, found {}",
                self.describe_current()
            ))),
        }
    }

    fn keyword(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek().map(|t| &t.kind) {
            if name == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.keyword(word) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{word}`, found {}",
                self.describe_current()
            )))
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err(format!(
                "expected {what}, found {}",
                self.describe_current()
            ))),
        }
    }

    // ---- grammar ------------------------------------------------------

    fn file(&mut self) -> Result<File, ParseError> {
        self.expect_keyword("system")?;
        let name = self.ident("system name")?;
        self.expect(Tok::Semi, "`;`")?;
        let mut items = Vec::new();
        while !self.at_end() {
            items.push(self.item()?);
        }
        Ok(File { name, items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.keyword("module") {
            let name = self.ident("module name")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Item::Module { name });
        }
        if self.keyword("signal") {
            let name = self.ident("signal name")?;
            self.expect(Tok::Colon, "`:`")?;
            let ty = self.type_expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Item::Signal { name, ty });
        }
        if self.keyword("channel") {
            let (line, column) = self.here();
            let name = self.ident("channel name")?;
            self.expect(Tok::Colon, "`:`")?;
            let behavior = self.ident("behavior name")?;
            let writes = if self.keyword("writes") {
                true
            } else if self.keyword("reads") {
                false
            } else {
                return Err(self.err("expected `writes` or `reads`"));
            };
            let variable = self.ident("variable name")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Item::Channel(ChannelAst {
                name,
                behavior,
                writes,
                variable,
                line,
                column,
            }));
        }
        let is_store = if self.keyword("behavior") || self.keyword("process") {
            false
        } else if self.keyword("store") {
            true
        } else {
            return Err(self
                .err("expected `module`, `signal`, `channel`, `behavior`, `process` or `store`"));
        };
        let name = self.ident("behavior name")?;
        self.expect_keyword("on")?;
        let module = self.ident("module name")?;
        let repeats = self.keyword("repeats");
        self.expect(Tok::LBrace, "`{`")?;
        let mut vars = Vec::new();
        while let Some(Tok::Ident(word)) = self.peek().map(|t| &t.kind) {
            if word != "var" {
                break;
            }
            let (line, column) = self.here();
            self.pos += 1;
            let vname = self.ident("variable name")?;
            self.expect(Tok::Colon, "`:`")?;
            let ty = self.type_expr()?;
            let init = if self.eat(&Tok::Eq) {
                Some(self.init_value()?)
            } else {
                None
            };
            self.expect(Tok::Semi, "`;`")?;
            vars.push(VarAst {
                name: vname,
                ty,
                init,
                line,
                column,
            });
        }
        let body = self.block_tail()?;
        let _ = is_store; // stores differ only by (empty) body convention
        Ok(Item::Behavior(BehaviorAst {
            name,
            module,
            repeats,
            vars,
            body,
        }))
    }

    fn init_value(&mut self) -> Result<InitAst, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(InitAst::Int(v))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let v = self.int("integer")?;
                Ok(InitAst::Int(-v))
            }
            Some(Tok::BitString(s)) => {
                self.pos += 1;
                Ok(InitAst::Bits(s))
            }
            Some(Tok::BitChar(b)) => {
                self.pos += 1;
                Ok(InitAst::Bit(b))
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.init_value()?);
                        if self.eat(&Tok::RBracket) {
                            break;
                        }
                        self.expect(Tok::Comma, "`,` or `]`")?;
                    }
                }
                Ok(InitAst::Array(items))
            }
            _ => Err(self.err("expected an initial value")),
        }
    }

    fn type_expr(&mut self) -> Result<TypeAst, ParseError> {
        let base = if self.keyword("bit") {
            TypeAst::Bit
        } else if self.keyword("bits") {
            self.expect(Tok::Lt, "`<`")?;
            let w = self.int("bit width")?;
            self.expect(Tok::Gt, "`>`")?;
            TypeAst::Bits(w as u32)
        } else if self.keyword("int") {
            self.expect(Tok::Lt, "`<`")?;
            let w = self.int("bit width")?;
            self.expect(Tok::Gt, "`>`")?;
            TypeAst::Int(w as u32)
        } else {
            return Err(self.err("expected a type (`bit`, `bits<N>`, `int<N>`)"));
        };
        let mut ty = base;
        while self.eat(&Tok::LBracket) {
            let len = self.int("array length")?;
            self.expect(Tok::RBracket, "`]`")?;
            ty = TypeAst::Array(Box::new(ty), len as u32);
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Vec<StmtAst>, ParseError> {
        self.expect(Tok::LBrace, "`{`")?;
        self.block_tail()
    }

    /// A statement sequence whose `{` has been consumed.
    fn block_tail(&mut self) -> Result<Vec<StmtAst>, ParseError> {
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.err("unexpected end of input, expected `}`"));
            }
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<StmtAst, ParseError> {
        let (line, column) = self.here();
        if self.keyword("if") {
            let cond = self.expr()?;
            let then_body = self.block()?;
            let else_body = if self.keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(StmtAst::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.keyword("for") {
            let var = self.ident("loop variable")?;
            self.expect_keyword("in")?;
            let from = self.expr()?;
            self.expect_keyword("to")?;
            let to = self.expr()?;
            let body = self.block()?;
            return Ok(StmtAst::For {
                var,
                from,
                to,
                body,
                line,
                column,
            });
        }
        if self.keyword("while") {
            let cond = self.expr()?;
            let body = self.block()?;
            return Ok(StmtAst::While { cond, body });
        }
        if self.keyword("wait") {
            if self.keyword("until") {
                let cond = self.expr()?;
                if self.keyword("for") {
                    let n = self.int("watchdog cycle count")?;
                    self.expect(Tok::Semi, "`;`")?;
                    return Ok(StmtAst::WaitUntilFor(cond, n.max(0) as u64));
                }
                self.expect(Tok::Semi, "`;`")?;
                return Ok(StmtAst::WaitUntil(cond));
            }
            if self.keyword("on") {
                let mut signals = Vec::new();
                loop {
                    let (l, c) = self.here();
                    signals.push((self.ident("signal name")?, l, c));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::Semi, "`;`")?;
                return Ok(StmtAst::WaitOn(signals));
            }
            if self.keyword("for") {
                let n = self.int("cycle count")?;
                self.expect(Tok::Semi, "`;`")?;
                return Ok(StmtAst::WaitFor(n.max(0) as u64));
            }
            return Err(self.err("expected `until`, `on` or `for` after `wait`"));
        }
        if self.keyword("compute") {
            let cycles = self.int("cycle count")?.max(0) as u64;
            let note = match self.peek().map(|t| t.kind.clone()) {
                Some(Tok::Note(s)) => {
                    self.pos += 1;
                    s
                }
                Some(Tok::BitString(s)) => {
                    self.pos += 1;
                    s
                }
                _ => "compute".to_string(),
            };
            self.expect(Tok::Semi, "`;`")?;
            return Ok(StmtAst::Compute { cycles, note });
        }
        if self.keyword("assert") {
            let cond = self.expr()?;
            let note = match self.peek().map(|t| t.kind.clone()) {
                Some(Tok::Note(s)) => {
                    self.pos += 1;
                    s
                }
                Some(Tok::BitString(s)) => {
                    self.pos += 1;
                    s
                }
                _ => "assertion".to_string(),
            };
            self.expect(Tok::Semi, "`;`")?;
            return Ok(StmtAst::Assert { cond, note });
        }
        if self.keyword("send") {
            let channel = self.ident("channel name")?;
            self.expect(Tok::LParen, "`(`")?;
            let mut args = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                args.push(self.expr()?);
            }
            self.expect(Tok::RParen, "`)`")?;
            self.expect(Tok::Semi, "`;`")?;
            if args.len() > 2 {
                return Err(ParseError::new(
                    line,
                    column,
                    "send takes (data) or (addr, data)",
                ));
            }
            return Ok(StmtAst::Send {
                channel,
                args,
                line,
                column,
            });
        }
        if self.keyword("receive") {
            let channel = self.ident("channel name")?;
            self.expect(Tok::LParen, "`(`")?;
            // One or two arguments; the last must be a place.
            let first = self.expr()?;
            let (addr, target_expr) = if self.eat(&Tok::Comma) {
                let second = self.expr()?;
                (Some(first), second)
            } else {
                (None, first)
            };
            self.expect(Tok::RParen, "`)`")?;
            self.expect(Tok::Semi, "`;`")?;
            let target = match target_expr {
                ExprAst::Place(p) => p,
                _ => {
                    return Err(ParseError::new(
                        line,
                        column,
                        "receive target must be a variable, element or slice",
                    ))
                }
            };
            return Ok(StmtAst::Receive {
                channel,
                addr,
                target,
                line,
                column,
            });
        }
        if self.keyword("return") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(StmtAst::Return);
        }
        // Assignment or signal drive: starts with a place.
        let place = self.place()?;
        if self.eat(&Tok::Assign) {
            let value = self.expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(StmtAst::Assign { place, value });
        }
        if self.eat(&Tok::Drive) {
            if place.index.is_some() || place.slice.is_some() {
                return Err(ParseError::new(
                    line,
                    column,
                    "signal drives target a whole signal",
                ));
            }
            let value = self.expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(StmtAst::Drive {
                signal: place.name,
                value,
                line,
                column,
            });
        }
        Err(self.err("expected `:=` or `<=`"))
    }

    fn place(&mut self) -> Result<PlaceAst, ParseError> {
        let (line, column) = self.here();
        let name = self.ident("a name")?;
        let mut index = None;
        let mut slice = None;
        if self.eat(&Tok::LBracket) {
            // Either an index expression or a `hi:lo` slice.
            let first = self.expr()?;
            if self.eat(&Tok::Colon) {
                let hi = match first {
                    ExprAst::Int(v) if v >= 0 => v as u32,
                    _ => {
                        return Err(ParseError::new(
                            line,
                            column,
                            "slice bounds must be literal integers",
                        ))
                    }
                };
                let lo = self.int("slice low bound")?;
                self.expect(Tok::RBracket, "`]`")?;
                slice = Some((hi, lo.max(0) as u32));
            } else {
                self.expect(Tok::RBracket, "`]`")?;
                index = Some(Box::new(first));
                // Optional slice after the index.
                if self.eat(&Tok::LBracket) {
                    let hi = self.int("slice high bound")?.max(0) as u32;
                    self.expect(Tok::Colon, "`:`")?;
                    let lo = self.int("slice low bound")?.max(0) as u32;
                    self.expect(Tok::RBracket, "`]`")?;
                    slice = Some((hi, lo));
                }
            }
        }
        Ok(PlaceAst {
            name,
            index,
            slice,
            line,
            column,
        })
    }

    // Precedence climbing: or < and|xor < comparison < concat < add|sub
    // < mul|div|mod < unary < primary.
    fn expr(&mut self) -> Result<ExprAst, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.keyword("or") {
            let rhs = self.and_expr()?;
            lhs = bin(BinOpAst::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.cmp_expr()?;
        loop {
            if self.keyword("and") {
                let rhs = self.cmp_expr()?;
                lhs = bin(BinOpAst::And, lhs, rhs);
            } else if self.keyword("xor") {
                let rhs = self.cmp_expr()?;
                lhs = bin(BinOpAst::Xor, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, ParseError> {
        let lhs = self.concat_expr()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(Tok::Eq) => Some(BinOpAst::Eq),
            Some(Tok::Ne) => Some(BinOpAst::Ne),
            Some(Tok::Lt) => Some(BinOpAst::Lt),
            Some(Tok::Drive) => Some(BinOpAst::Le), // `<=` in expression position
            Some(Tok::Gt) => Some(BinOpAst::Gt),
            Some(Tok::Ge) => Some(BinOpAst::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.concat_expr()?;
                Ok(bin(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn concat_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.add_expr()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.add_expr()?;
            lhs = bin(BinOpAst::Concat, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.mul_expr()?;
                lhs = bin(BinOpAst::Add, lhs, rhs);
            } else if self.eat(&Tok::Minus) {
                let rhs = self.mul_expr()?;
                lhs = bin(BinOpAst::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat(&Tok::Star) {
                let rhs = self.unary_expr()?;
                lhs = bin(BinOpAst::Mul, lhs, rhs);
            } else if self.eat(&Tok::Slash) {
                let rhs = self.unary_expr()?;
                lhs = bin(BinOpAst::Div, lhs, rhs);
            } else if self.eat(&Tok::Percent) {
                let rhs = self.unary_expr()?;
                lhs = bin(BinOpAst::Rem, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<ExprAst, ParseError> {
        if self.eat(&Tok::Minus) {
            let arg = self.unary_expr()?;
            return Ok(ExprAst::Unary {
                neg: true,
                arg: Box::new(arg),
            });
        }
        if self.keyword("not") {
            let arg = self.unary_expr()?;
            return Ok(ExprAst::Unary {
                neg: false,
                arg: Box::new(arg),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<ExprAst, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(ExprAst::Int(v))
            }
            Some(Tok::BitChar(b)) => {
                self.pos += 1;
                Ok(ExprAst::Bit(b))
            }
            Some(Tok::BitString(s)) => {
                self.pos += 1;
                Ok(ExprAst::Bits(s))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => Ok(ExprAst::Place(self.place()?)),
            _ => Err(self.err("expected an expression")),
        }
    }
}

fn bin(op: BinOpAst, lhs: ExprAst, rhs: ExprAst) -> ExprAst {
    ExprAst::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<File, ParseError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_minimal_system() {
        let f = parse_src("system s; module m;").unwrap();
        assert_eq!(f.name, "s");
        assert_eq!(f.items.len(), 1);
    }

    #[test]
    fn parses_behavior_with_vars_and_stmts() {
        let f = parse_src(
            r#"
            system s;
            module m;
            behavior p on m {
                var x : int<16>;
                var a : bits<8>[4];
                x := x + 1;
                a[2] := "00001111";
                if x = 5 { compute 3 "spin"; } else { return; }
            }
            "#,
        )
        .unwrap();
        let Item::Behavior(b) = &f.items[1] else {
            panic!("expected behavior");
        };
        assert_eq!(b.vars.len(), 2);
        assert_eq!(b.body.len(), 3);
        assert!(matches!(b.body[2], StmtAst::If { .. }));
    }

    #[test]
    fn parses_channel_decl() {
        let f = parse_src("system s; module m; channel c1 : p writes mem;").unwrap();
        let Item::Channel(c) = &f.items[1] else {
            panic!("expected channel");
        };
        assert!(c.writes);
        assert_eq!(c.variable, "mem");
    }

    #[test]
    fn drive_vs_le_disambiguation() {
        let f = parse_src(
            r#"
            system s;
            module m;
            signal req : bit;
            behavior p on m {
                var x : int<8>;
                req <= '1';
                while x <= 5 { x := x + 1; }
            }
            "#,
        )
        .unwrap();
        let Item::Behavior(b) = &f.items[2] else {
            panic!()
        };
        assert!(matches!(b.body[0], StmtAst::Drive { .. }));
        assert!(matches!(b.body[1], StmtAst::While { .. }));
    }

    #[test]
    fn parses_waits() {
        let f = parse_src(
            r#"
            system s; module m; signal go : bit;
            behavior p on m {
                wait until go = '1';
                wait on go;
                wait for 12;
            }
            "#,
        )
        .unwrap();
        let Item::Behavior(b) = &f.items[2] else {
            panic!()
        };
        assert!(matches!(b.body[0], StmtAst::WaitUntil(_)));
        assert!(matches!(b.body[1], StmtAst::WaitOn(_)));
        assert_eq!(b.body[2], StmtAst::WaitFor(12));
    }

    #[test]
    fn parses_send_receive() {
        let f = parse_src(
            r#"
            system s; module m;
            behavior p on m {
                var t : int<16>;
                send c1(3, 42);
                receive c2(t);
                receive c2(7, t);
            }
            "#,
        )
        .unwrap();
        let Item::Behavior(b) = &f.items[1] else {
            panic!()
        };
        assert!(matches!(&b.body[0], StmtAst::Send { args, .. } if args.len() == 2));
        assert!(matches!(&b.body[1], StmtAst::Receive { addr: None, .. }));
        assert!(matches!(&b.body[2], StmtAst::Receive { addr: Some(_), .. }));
    }

    #[test]
    fn precedence_is_sane() {
        let f =
            parse_src("system s; module m; behavior p on m { var x : int<8>; x := 1 + 2 * 3; }")
                .unwrap();
        let Item::Behavior(b) = &f.items[1] else {
            panic!()
        };
        let StmtAst::Assign { value, .. } = &b.body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let ExprAst::Binary { op, rhs, .. } = value else {
            panic!()
        };
        assert_eq!(*op, BinOpAst::Add);
        assert!(matches!(
            **rhs,
            ExprAst::Binary {
                op: BinOpAst::Mul,
                ..
            }
        ));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_src("system s;\nmodule ;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("module name"));
    }

    #[test]
    fn slice_syntax() {
        let f =
            parse_src("system s; module m; behavior p on m { var x : bits<8>; x[7:4] := x[3:0]; }")
                .unwrap();
        let Item::Behavior(b) = &f.items[1] else {
            panic!()
        };
        let StmtAst::Assign { place, .. } = &b.body[0] else {
            panic!()
        };
        assert_eq!(place.slice, Some((7, 4)));
    }
}

//! Printing a [`System`] back as specification-language source.
//!
//! Only *channel-level* systems round-trip — the constructs the language
//! can express: modules, signals, behaviors with variables, channel
//! declarations, and bodies made of the language's statements. Refined
//! systems (procedures, explicit statement costs) are out of scope —
//! print those with `ifsyn-vhdl` instead.

use std::fmt::Write as _;

use ifsyn_spec::{BehaviorId, BinOp, Expr, Place, Stmt, System, Ty, UnaryOp, Value, WaitCond};

/// Why a system could not be printed as language source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrintError {
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for PrintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot print as spec source: {}", self.message)
    }
}

impl std::error::Error for PrintError {}

fn unsupported(what: impl Into<String>) -> PrintError {
    PrintError {
        message: what.into(),
    }
}

/// Renders `system` as parseable specification source.
///
/// # Errors
///
/// Returns [`PrintError`] for constructs the language cannot express
/// (procedures, procedure calls, explicit statement costs are dropped
/// silently only where semantics are preserved — costs are not, so any
/// explicit cost is an error).
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let src = "system s; module m; behavior p on m { var x : int<8>; x := 1; }";
/// let sys = ifsyn_lang::parse_system(src)?;
/// let printed = ifsyn_lang::print_system(&sys)?;
/// let reparsed = ifsyn_lang::parse_system(&printed)?;
/// assert_eq!(sys, reparsed);
/// # Ok(())
/// # }
/// ```
pub fn print_system(system: &System) -> Result<String, PrintError> {
    if !system.procedures.is_empty() {
        return Err(unsupported("system contains procedures (already refined?)"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "system {};", system.name);
    for m in &system.modules {
        let _ = writeln!(out, "module {};", m.name);
    }
    for s in &system.signals {
        if s.init.is_some() {
            return Err(unsupported("signal initial values"));
        }
        let _ = writeln!(out, "signal {} : {};", s.name, type_str(&s.ty)?);
    }
    for (bi, b) in system.behaviors.iter().enumerate() {
        let id = BehaviorId::new(bi as u32);
        let _ = writeln!(
            out,
            "\nbehavior {} on {}{} {{",
            b.name,
            system.module(b.module).name,
            if b.repeats { " repeats" } else { "" }
        );
        for v in system.variables.iter().filter(|v| v.owner == id) {
            match &v.init {
                None => {
                    let _ = writeln!(out, "    var {} : {};", v.name, type_str(&v.ty)?);
                }
                Some(init) => {
                    let _ = writeln!(
                        out,
                        "    var {} : {} = {};",
                        v.name,
                        type_str(&v.ty)?,
                        init_str(init)?
                    );
                }
            }
        }
        print_body(system, &b.body, 1, &mut out)?;
        let _ = writeln!(out, "}}");
    }
    for c in &system.channels {
        let _ = writeln!(
            out,
            "channel {} : {} {} {};",
            c.name,
            system.behavior(c.accessor).name,
            if c.direction == ifsyn_spec::ChannelDirection::Write {
                "writes"
            } else {
                "reads"
            },
            system.variable(c.variable).name
        );
    }
    Ok(out)
}

fn type_str(ty: &Ty) -> Result<String, PrintError> {
    Ok(match ty {
        Ty::Bit => "bit".to_string(),
        Ty::Bits(w) => format!("bits<{w}>"),
        Ty::Int(w) => format!("int<{w}>"),
        Ty::Array { elem, len } => format!("{}[{len}]", type_str(elem)?),
    })
}

fn init_str(value: &Value) -> Result<String, PrintError> {
    Ok(match value {
        Value::Bit(b) => format!("'{}'", if *b { '1' } else { '0' }),
        Value::Bits(bv) => format!("\"{bv}\""),
        Value::Int { value, .. } => value.to_string(),
        Value::Array(items) => {
            let inner: Result<Vec<String>, PrintError> = items.iter().map(init_str).collect();
            format!("[{}]", inner?.join(", "))
        }
    })
}

fn print_body(
    system: &System,
    body: &[Stmt],
    depth: usize,
    out: &mut String,
) -> Result<(), PrintError> {
    for stmt in body {
        print_stmt(system, stmt, depth, out)?;
    }
    Ok(())
}

fn print_stmt(
    system: &System,
    stmt: &Stmt,
    depth: usize,
    out: &mut String,
) -> Result<(), PrintError> {
    let pad = "    ".repeat(depth);
    match stmt {
        Stmt::Assign { place, value, cost } => {
            if cost.is_some() {
                return Err(unsupported("explicit statement costs"));
            }
            let _ = writeln!(
                out,
                "{pad}{} := {};",
                place_str(system, place)?,
                expr_str(system, value, 0)?
            );
        }
        Stmt::SignalAssign {
            signal,
            value,
            cost,
        } => {
            if cost.is_some() {
                return Err(unsupported("explicit statement costs"));
            }
            let _ = writeln!(
                out,
                "{pad}{} <= {};",
                system.signal(*signal).name,
                expr_str(system, value, 0)?
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if {} {{", expr_str(system, cond, 0)?);
            print_body(system, then_body, depth + 1, out)?;
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                print_body(system, else_body, depth + 1, out)?;
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::For {
            var,
            from,
            to,
            body,
        } => {
            let Place::Var(v) = var else {
                return Err(unsupported("loop variables must be plain variables"));
            };
            let _ = writeln!(
                out,
                "{pad}for {} in {} to {} {{",
                system.variable(*v).name,
                expr_str(system, from, 0)?,
                expr_str(system, to, 0)?
            );
            print_body(system, body, depth + 1, out)?;
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {} {{", expr_str(system, cond, 0)?);
            print_body(system, body, depth + 1, out)?;
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Wait(WaitCond::Until(e)) => {
            let _ = writeln!(out, "{pad}wait until {};", expr_str(system, e, 0)?);
        }
        Stmt::Wait(WaitCond::UntilTimeout { cond, cycles }) => {
            let _ = writeln!(
                out,
                "{pad}wait until {} for {cycles};",
                expr_str(system, cond, 0)?
            );
        }
        Stmt::Wait(WaitCond::OnSignals(signals)) => {
            let names: Vec<&str> = signals
                .iter()
                .map(|&s| system.signal(s).name.as_str())
                .collect();
            let _ = writeln!(out, "{pad}wait on {};", names.join(", "));
        }
        Stmt::Wait(WaitCond::ForCycles(n)) => {
            let _ = writeln!(out, "{pad}wait for {n};");
        }
        Stmt::Compute { cycles, note } => {
            let _ = writeln!(out, "{pad}compute {cycles} \"{note}\";");
        }
        Stmt::Assert { cond, note } => {
            let _ = writeln!(
                out,
                "{pad}assert {} \"{note}\";",
                expr_str(system, cond, 0)?
            );
        }
        Stmt::ChannelSend {
            channel,
            addr,
            data,
        } => {
            let ch = system.channel(*channel);
            let mut args = Vec::new();
            if let Some(a) = addr {
                args.push(expr_str(system, a, 0)?);
            }
            args.push(expr_str(system, data, 0)?);
            let _ = writeln!(out, "{pad}send {}({});", ch.name, args.join(", "));
        }
        Stmt::ChannelReceive {
            channel,
            addr,
            target,
        } => {
            let ch = system.channel(*channel);
            let mut args = Vec::new();
            if let Some(a) = addr {
                args.push(expr_str(system, a, 0)?);
            }
            args.push(place_str(system, target)?);
            let _ = writeln!(out, "{pad}receive {}({});", ch.name, args.join(", "));
        }
        Stmt::Return => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Call { .. } => {
            return Err(unsupported("procedure calls (already refined?)"));
        }
    }
    Ok(())
}

fn place_str(system: &System, place: &Place) -> Result<String, PrintError> {
    Ok(match place {
        Place::Var(v) => system.variable(*v).name.clone(),
        Place::Local(_) => return Err(unsupported("procedure locals")),
        Place::Index { base, index } => {
            let Place::Var(v) = &**base else {
                return Err(unsupported("nested index bases"));
            };
            format!(
                "{}[{}]",
                system.variable(*v).name,
                expr_str(system, index, 0)?
            )
        }
        Place::Slice { base, hi, lo } => {
            format!("{}[{hi}:{lo}]", place_str(system, base)?)
        }
        Place::DynSlice { .. } => return Err(unsupported("dynamic slices have no surface syntax")),
    })
}

/// Operator precedence for minimal parenthesisation: higher binds
/// tighter, mirroring the parser's precedence ladder.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And | BinOp::Xor => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Concat => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        BinOp::Min | BinOp::Max => 6,
    }
}

fn op_str(op: BinOp) -> Result<&'static str, PrintError> {
    Ok(match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "=",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Concat => "&",
        BinOp::Min | BinOp::Max => {
            return Err(unsupported("min/max operators have no surface syntax"))
        }
    })
}

fn expr_str(system: &System, expr: &Expr, parent_prec: u8) -> Result<String, PrintError> {
    Ok(match expr {
        Expr::Const(Value::Int { value, .. }) => {
            if *value < 0 {
                format!("({value})")
            } else {
                value.to_string()
            }
        }
        Expr::Const(Value::Bit(b)) => format!("'{}'", if *b { '1' } else { '0' }),
        Expr::Const(Value::Bits(bv)) => format!("\"{bv}\""),
        Expr::Const(Value::Array(_)) => return Err(unsupported("array literals in expressions")),
        Expr::Load(place) => place_str(system, place)?,
        Expr::Signal(s) => system.signal(*s).name.clone(),
        Expr::SliceOf { base, hi, lo } => match &**base {
            Expr::Signal(s) => format!("{}[{hi}:{lo}]", system.signal(*s).name),
            _ => return Err(unsupported("slices of computed expressions")),
        },
        Expr::Resize { .. } => return Err(unsupported("resize has no surface syntax")),
        Expr::DynSliceOf { .. } => {
            return Err(unsupported("dynamic slices have no surface syntax"))
        }
        Expr::Unary { op, arg } => {
            let inner = expr_str(system, arg, 7)?;
            match op {
                UnaryOp::Neg => format!("-{inner}"),
                UnaryOp::Not => format!("not {inner}"),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = prec(*op);
            let text = format!(
                "{} {} {}",
                expr_str(system, lhs, p)?,
                op_str(*op)?,
                // Right operand at p+1: our parser is left-associative.
                expr_str(system, rhs, p + 1)?
            );
            if p < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_system;

    fn roundtrip(src: &str) -> (System, System) {
        let sys = parse_system(src).expect("parse original");
        let printed = print_system(&sys).expect("print");
        let reparsed = parse_system(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        (sys, reparsed)
    }

    #[test]
    fn roundtrips_structures() {
        let (a, b) = roundtrip(
            r#"
            system s;
            module m1;
            module m2;
            signal go : bit;
            store st on m2 {
                var mem : int<16>[8] = [1, 2, 3, 4, 5, 6, 7, 8];
            }
            behavior p on m1 repeats {
                var x : bits<8> = "10100101";
                wait until go = '1';
                x[7:4] := x[3:0];
            }
            channel c : p reads mem;
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrips_statements_and_operators() {
        let (a, b) = roundtrip(
            r#"
            system s;
            module m;
            behavior p on m {
                var x : int<16>;
                var y : int<16>;
                x := (x + 1) * 2 - y / 3 % 4;
                if x < 5 and y >= 2 or not (x = y) {
                    compute 7 "work";
                } else {
                    return;
                }
                for i in 0 to 9 {
                    while x /= 0 {
                        x := x - 1;
                    }
                }
                wait for 3;
            }
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrips_channel_operations() {
        let (a, b) = roundtrip(
            r#"
            system s;
            module m1;
            module m2;
            store st on m2 { var mem : int<16>[32]; var reg : bits<8>; }
            behavior p on m1 {
                var t : int<16>;
                send cw(3, 99);
                receive cr(4, t);
                send cs(t);
            }
            channel cw : p writes mem;
            channel cr : p reads mem;
            channel cs : p writes reg;
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn refined_systems_are_rejected() {
        let src = "system s; module m; behavior p on m { var x : int<8>; x := 1; }";
        let mut sys = parse_system(src).unwrap();
        sys.add_procedure(ifsyn_spec::Procedure::new("Send_x"));
        assert!(print_system(&sys).is_err());
    }

    #[test]
    fn precedence_printing_is_minimal_but_correct() {
        let (a, b) =
            roundtrip("system s; module m; behavior p on m { var x : int<8>; x := 1 + 2 * 3; }");
        assert_eq!(a, b);
        let printed = print_system(&a).unwrap();
        assert!(printed.contains("1 + 2 * 3"), "{printed}");
        assert!(
            !printed.contains("(2 * 3)"),
            "no redundant parens: {printed}"
        );
    }
}

//! The tokenizer.

use crate::error::ParseError;

/// A token kind with its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    /// `"0101"` — a bit-vector literal (msb first, as written).
    BitString(String),
    /// `'0'` or `'1'`.
    BitChar(bool),
    /// `"..."` used as a free-form note (after `compute`). The lexer
    /// cannot distinguish notes from bit strings; the parser decides by
    /// context, so both surface as `BitString` unless non-binary
    /// characters appear, in which case `Note` is produced.
    Note(String),
    // Punctuation and operators.
    Semi,
    Colon,
    Comma,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Ge,
    Eq,     // =
    Ne,     // /=
    Assign, // :=
    Drive,  // <=  (also "less-or-equal"; parser disambiguates by context)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Bang, // ! reserved
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: Tok,
    pub line: u32,
    pub column: u32,
}

/// Tokenizes `source`. `--` and `//` start line comments.
pub(crate) fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut column = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                column,
            });
            i += $len;
            column += $len as u32;
        }};
    }

    while i < n {
        let c = bytes[i];
        let c1 = bytes.get(i + 1).copied().unwrap_or('\0');
        match c {
            '\n' => {
                i += 1;
                line += 1;
                column = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                column += 1;
            }
            '-' if c1 == '-' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if c1 == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            '+' => push!(Tok::Plus, 1),
            '*' => push!(Tok::Star, 1),
            '%' => push!(Tok::Percent, 1),
            '&' => push!(Tok::Amp, 1),
            '!' => push!(Tok::Bang, 1),
            '-' => push!(Tok::Minus, 1),
            '/' if c1 == '=' => push!(Tok::Ne, 2),
            '/' => push!(Tok::Slash, 1),
            ':' if c1 == '=' => push!(Tok::Assign, 2),
            ':' => push!(Tok::Colon, 1),
            '<' if c1 == '=' => push!(Tok::Drive, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if c1 == '=' => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '=' => push!(Tok::Eq, 1),
            '\'' => {
                let b = match c1 {
                    '0' => false,
                    '1' => true,
                    other => {
                        return Err(ParseError::new(
                            line,
                            column,
                            format!("expected '0' or '1' in bit literal, found {other:?}"),
                        ))
                    }
                };
                if bytes.get(i + 2).copied() != Some('\'') {
                    return Err(ParseError::new(line, column, "unterminated bit literal"));
                }
                push!(Tok::BitChar(b), 3);
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < n && bytes[j] != '"' && bytes[j] != '\n' {
                    j += 1;
                }
                if j >= n || bytes[j] != '"' {
                    return Err(ParseError::new(line, column, "unterminated string"));
                }
                let text: String = bytes[start..j].iter().collect();
                let len = j - i + 1;
                if !text.is_empty() && text.chars().all(|c| c == '0' || c == '1') {
                    push!(Tok::BitString(text), len);
                } else {
                    push!(Tok::Note(text), len);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                    j += 1;
                }
                // Hex literals: 0x...
                if bytes[start] == '0'
                    && bytes.get(start + 1).map(|c| *c == 'x' || *c == 'X') == Some(true)
                {
                    j = start + 2;
                    while j < n && (bytes[j].is_ascii_hexdigit() || bytes[j] == '_') {
                        j += 1;
                    }
                    let text: String = bytes[start + 2..j].iter().filter(|c| **c != '_').collect();
                    let value = i64::from_str_radix(&text, 16)
                        .map_err(|_| ParseError::new(line, column, "invalid hex literal"))?;
                    let len = j - start;
                    push!(Tok::Int(value), len);
                } else {
                    let text: String = bytes[start..j].iter().filter(|c| **c != '_').collect();
                    let value: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(line, column, "invalid integer literal"))?;
                    let len = j - start;
                    push!(Tok::Int(value), len);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let len = j - start;
                push!(Tok::Ident(text), len);
            }
            other => {
                return Err(ParseError::new(
                    line,
                    column,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_idents_and_ints() {
        assert_eq!(
            kinds("foo 42 0x2a bar_7"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Int(42),
                Tok::Ident("bar_7".into()),
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds(":= <= < > >= = /= + - * / % &"),
            vec![
                Tok::Assign,
                Tok::Drive,
                Tok::Lt,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Amp,
            ]
        );
    }

    #[test]
    fn lexes_bit_literals_and_notes() {
        assert_eq!(
            kinds("'1' '0' \"0101\" \"hello\""),
            vec![
                Tok::BitChar(true),
                Tok::BitChar(false),
                Tok::BitString("0101".into()),
                Tok::Note("hello".into()),
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let tokens = lex("a -- comment\nb // another\nc").unwrap();
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 3);
    }

    #[test]
    fn reports_bad_characters_with_position() {
        let e = lex("ok\n  @").unwrap_err();
        assert_eq!((e.line, e.column), (2, 3));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'2'").is_err());
    }
}

//! Lowering the AST into a validated [`System`].

use std::collections::HashMap;

use ifsyn_estimate::{ChannelTimings, PerformanceEstimator};
use ifsyn_spec::{
    BehaviorId, BitVec, Channel, ChannelDirection, ChannelId, Expr, ModuleId, Place, SignalId,
    Stmt, System, Ty, Value, VarId, WaitCond,
};

use crate::ast::*;
use crate::error::ParseError;

pub(crate) fn lower(file: &File) -> Result<System, ParseError> {
    let mut cx = Lowerer {
        sys: System::new(file.name.clone()),
        modules: HashMap::new(),
        signals: HashMap::new(),
        behaviors: HashMap::new(),
        variables: HashMap::new(),
        channels: HashMap::new(),
    };
    cx.declare(file)?;
    cx.bodies(file)?;
    cx.finish()
}

struct Lowerer {
    sys: System,
    modules: HashMap<String, ModuleId>,
    signals: HashMap<String, SignalId>,
    behaviors: HashMap<String, BehaviorId>,
    /// Variable names are global in the language (they name channel
    /// endpoints), so they must be unique.
    variables: HashMap<String, VarId>,
    channels: HashMap<String, ChannelId>,
}

fn err_at(line: u32, column: u32, message: impl Into<String>) -> ParseError {
    ParseError::new(line, column, message)
}

impl Lowerer {
    /// Pass 1: declare modules, signals, behaviors, variables, channels.
    fn declare(&mut self, file: &File) -> Result<(), ParseError> {
        for item in &file.items {
            match item {
                Item::Module { name } => {
                    if self.modules.contains_key(name) {
                        return Err(err_at(1, 1, format!("duplicate module `{name}`")));
                    }
                    let id = self.sys.add_module(name.clone());
                    self.modules.insert(name.clone(), id);
                }
                Item::Signal { name, ty } => {
                    if self.signals.contains_key(name) {
                        return Err(err_at(1, 1, format!("duplicate signal `{name}`")));
                    }
                    let id = self.sys.add_signal(name.clone(), lower_type(ty));
                    self.signals.insert(name.clone(), id);
                }
                Item::Behavior(b) => {
                    let module = *self.modules.get(&b.module).ok_or_else(|| {
                        err_at(
                            1,
                            1,
                            format!("behavior `{}` names unknown module `{}`", b.name, b.module),
                        )
                    })?;
                    if self.behaviors.contains_key(&b.name) {
                        return Err(err_at(1, 1, format!("duplicate behavior `{}`", b.name)));
                    }
                    let id = self.sys.add_behavior(b.name.clone(), module);
                    self.sys.behavior_mut(id).repeats = b.repeats;
                    self.behaviors.insert(b.name.clone(), id);
                    for v in &b.vars {
                        if self.variables.contains_key(&v.name) {
                            return Err(err_at(
                                v.line,
                                v.column,
                                format!("duplicate variable `{}`", v.name),
                            ));
                        }
                        let ty = lower_type(&v.ty);
                        let vid = match &v.init {
                            Some(init) => {
                                let value = lower_init(init, &ty)
                                    .map_err(|m| err_at(v.line, v.column, m))?;
                                self.sys.add_variable_init(v.name.clone(), ty, id, value)
                            }
                            None => self.sys.add_variable(v.name.clone(), ty, id),
                        };
                        self.variables.insert(v.name.clone(), vid);
                    }
                }
                Item::Channel(_) => {}
            }
        }
        // Channels after all behaviors/variables exist.
        for item in &file.items {
            if let Item::Channel(c) = item {
                let accessor = *self.behaviors.get(&c.behavior).ok_or_else(|| {
                    err_at(
                        c.line,
                        c.column,
                        format!("unknown behavior `{}`", c.behavior),
                    )
                })?;
                let variable = *self.variables.get(&c.variable).ok_or_else(|| {
                    err_at(
                        c.line,
                        c.column,
                        format!("unknown variable `{}`", c.variable),
                    )
                })?;
                if self.channels.contains_key(&c.name) {
                    return Err(err_at(
                        c.line,
                        c.column,
                        format!("duplicate channel `{}`", c.name),
                    ));
                }
                let ty = &self.sys.variable(variable).ty;
                let id = self.sys.add_channel(Channel {
                    name: c.name.clone(),
                    accessor,
                    variable,
                    direction: if c.writes {
                        ChannelDirection::Write
                    } else {
                        ChannelDirection::Read
                    },
                    data_bits: ty.element_width(),
                    addr_bits: ty.addr_bits(),
                    accesses: 0,
                });
                self.channels.insert(c.name.clone(), id);
            }
        }
        Ok(())
    }

    /// Pass 2: lower statement bodies.
    fn bodies(&mut self, file: &File) -> Result<(), ParseError> {
        for item in &file.items {
            if let Item::Behavior(b) = item {
                let id = self.behaviors[&b.name];
                let body = self.stmts(&b.body, id)?;
                self.sys.behavior_mut(id).body = body;
            }
        }
        Ok(())
    }

    fn stmts(&mut self, body: &[StmtAst], owner: BehaviorId) -> Result<Vec<Stmt>, ParseError> {
        body.iter().map(|s| self.stmt(s, owner)).collect()
    }

    fn stmt(&mut self, stmt: &StmtAst, owner: BehaviorId) -> Result<Stmt, ParseError> {
        Ok(match stmt {
            StmtAst::Assign { place, value } => Stmt::Assign {
                place: self.lower_place(place, owner)?,
                value: self.expr(value, owner)?,
                cost: None,
            },
            StmtAst::Drive {
                signal,
                value,
                line,
                column,
            } => {
                let sig = *self
                    .signals
                    .get(signal)
                    .ok_or_else(|| err_at(*line, *column, format!("unknown signal `{signal}`")))?;
                Stmt::SignalAssign {
                    signal: sig,
                    value: self.expr(value, owner)?,
                    cost: None,
                }
            }
            StmtAst::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: self.expr(cond, owner)?,
                then_body: self.stmts(then_body, owner)?,
                else_body: self.stmts(else_body, owner)?,
            },
            StmtAst::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                // Auto-declare undeclared loop counters as int<16>.
                let vid = match self.variables.get(var) {
                    Some(&v) => v,
                    None => {
                        let v = self.sys.add_variable(var.clone(), Ty::Int(16), owner);
                        self.variables.insert(var.clone(), v);
                        v
                    }
                };
                Stmt::For {
                    var: Place::Var(vid),
                    from: self.expr(from, owner)?,
                    to: self.expr(to, owner)?,
                    body: self.stmts(body, owner)?,
                }
            }
            StmtAst::While { cond, body } => Stmt::While {
                cond: self.expr(cond, owner)?,
                body: self.stmts(body, owner)?,
            },
            StmtAst::WaitUntil(cond) => Stmt::Wait(WaitCond::Until(self.expr(cond, owner)?)),
            StmtAst::WaitUntilFor(cond, cycles) => Stmt::Wait(WaitCond::UntilTimeout {
                cond: self.expr(cond, owner)?,
                cycles: *cycles,
            }),
            StmtAst::WaitOn(names) => {
                let mut signals = Vec::with_capacity(names.len());
                for (name, line, column) in names {
                    signals.push(*self.signals.get(name).ok_or_else(|| {
                        err_at(*line, *column, format!("unknown signal `{name}`"))
                    })?);
                }
                Stmt::Wait(WaitCond::OnSignals(signals))
            }
            StmtAst::WaitFor(n) => Stmt::Wait(WaitCond::ForCycles(*n)),
            StmtAst::Compute { cycles, note } => Stmt::compute(*cycles, note.clone()),
            StmtAst::Assert { cond, note } => Stmt::Assert {
                cond: self.expr(cond, owner)?,
                note: note.clone(),
            },
            StmtAst::Send {
                channel,
                args,
                line,
                column,
            } => {
                let ch = *self.channels.get(channel).ok_or_else(|| {
                    err_at(*line, *column, format!("unknown channel `{channel}`"))
                })?;
                let has_addr = self.sys.channel(ch).addr_bits > 0;
                let expected = if has_addr { 2 } else { 1 };
                if args.len() != expected {
                    return Err(err_at(
                        *line,
                        *column,
                        format!(
                            "channel `{channel}` takes {expected} argument(s) \
                             ({} address bits)",
                            self.sys.channel(ch).addr_bits
                        ),
                    ));
                }
                if has_addr {
                    Stmt::ChannelSend {
                        channel: ch,
                        addr: Some(self.expr(&args[0], owner)?),
                        data: self.expr(&args[1], owner)?,
                    }
                } else {
                    Stmt::ChannelSend {
                        channel: ch,
                        addr: None,
                        data: self.expr(&args[0], owner)?,
                    }
                }
            }
            StmtAst::Receive {
                channel,
                addr,
                target,
                line,
                column,
            } => {
                let ch = *self.channels.get(channel).ok_or_else(|| {
                    err_at(*line, *column, format!("unknown channel `{channel}`"))
                })?;
                let has_addr = self.sys.channel(ch).addr_bits > 0;
                if has_addr != addr.is_some() {
                    return Err(err_at(
                        *line,
                        *column,
                        format!(
                            "channel `{channel}` {} an address argument",
                            if has_addr {
                                "requires"
                            } else {
                                "does not take"
                            }
                        ),
                    ));
                }
                Stmt::ChannelReceive {
                    channel: ch,
                    addr: addr.as_ref().map(|a| self.expr(a, owner)).transpose()?,
                    target: self.lower_place(target, owner)?,
                }
            }
            StmtAst::Return => Stmt::Return,
        })
    }

    fn lower_place(&mut self, place: &PlaceAst, owner: BehaviorId) -> Result<Place, ParseError> {
        let var = *self.variables.get(&place.name).ok_or_else(|| {
            err_at(
                place.line,
                place.column,
                format!("unknown variable `{}`", place.name),
            )
        })?;
        let mut p = Place::Var(var);
        if let Some(idx) = &place.index {
            p = Place::Index {
                base: Box::new(p),
                index: Box::new(self.expr(idx, owner)?),
            };
        }
        if let Some((hi, lo)) = place.slice {
            if hi < lo {
                return Err(err_at(
                    place.line,
                    place.column,
                    format!("slice high bound {hi} below low bound {lo}"),
                ));
            }
            p = Place::Slice {
                base: Box::new(p),
                hi,
                lo,
            };
        }
        Ok(p)
    }

    fn expr(&mut self, expr: &ExprAst, owner: BehaviorId) -> Result<Expr, ParseError> {
        Ok(match expr {
            ExprAst::Int(v) => Expr::Const(Value::int(*v, 32)),
            ExprAst::Bit(b) => Expr::Const(Value::Bit(*b)),
            ExprAst::Bits(s) => Expr::Const(Value::Bits(bits_from_msb_string(s))),
            ExprAst::Place(p) => {
                // A bare name can be a variable or a signal.
                if self.variables.contains_key(&p.name) {
                    Expr::Load(self.lower_place(p, owner)?)
                } else if let Some(&sig) = self.signals.get(&p.name) {
                    let base = Expr::Signal(sig);
                    match (p.index.as_ref(), p.slice) {
                        (None, None) => base,
                        (None, Some((hi, lo))) => Expr::SliceOf {
                            base: Box::new(base),
                            hi,
                            lo,
                        },
                        (Some(_), _) => {
                            return Err(err_at(p.line, p.column, "signals cannot be indexed"))
                        }
                    }
                } else {
                    return Err(err_at(
                        p.line,
                        p.column,
                        format!("unknown name `{}`", p.name),
                    ));
                }
            }
            ExprAst::Unary { neg, arg } => Expr::Unary {
                op: if *neg {
                    ifsyn_spec::UnaryOp::Neg
                } else {
                    ifsyn_spec::UnaryOp::Not
                },
                arg: Box::new(self.expr(arg, owner)?),
            },
            ExprAst::Binary { op, lhs, rhs } => Expr::Binary {
                op: lower_binop(*op),
                lhs: Box::new(self.expr(lhs, owner)?),
                rhs: Box::new(self.expr(rhs, owner)?),
            },
        })
    }

    /// Pass 3: fill channel access counts, then validate.
    fn finish(mut self) -> Result<System, ParseError> {
        let estimator = PerformanceEstimator::new();
        let accessors: Vec<BehaviorId> = {
            let mut v: Vec<BehaviorId> = self.sys.channels.iter().map(|c| c.accessor).collect();
            v.sort();
            v.dedup();
            v
        };
        let mut counts: HashMap<ChannelId, u64> = HashMap::new();
        for b in accessors {
            let est = estimator
                .estimate(&self.sys, b, &ChannelTimings::new())
                .map_err(|e| err_at(1, 1, e.to_string()))?;
            for (ch, n) in est.channel_accesses {
                *counts.entry(ch).or_insert(0) += n;
            }
        }
        for (i, ch) in self.sys.channels.iter_mut().enumerate() {
            if let Some(&n) = counts.get(&ChannelId::new(i as u32)) {
                ch.accesses = n;
            }
        }
        self.sys
            .check()
            .map_err(|e| err_at(1, 1, format!("invalid system: {e}")))?;
        Ok(self.sys)
    }
}

fn lower_type(ty: &TypeAst) -> Ty {
    match ty {
        TypeAst::Bit => Ty::Bit,
        TypeAst::Bits(w) => Ty::Bits(*w),
        TypeAst::Int(w) => Ty::Int(*w),
        TypeAst::Array(elem, len) => Ty::array(lower_type(elem), *len),
    }
}

/// `"0101"` is written most-significant-bit first.
fn bits_from_msb_string(s: &str) -> BitVec {
    BitVec::from_bits_lsb_first(s.chars().rev().map(|c| c == '1'))
}

fn lower_init(init: &InitAst, ty: &Ty) -> Result<Value, String> {
    match (init, ty) {
        (InitAst::Int(v), Ty::Int(w)) => Ok(Value::int(*v, *w)),
        (InitAst::Int(v), Ty::Bits(w)) => Ok(Value::Bits(BitVec::from_u64(*v as u64, *w))),
        (InitAst::Int(v), Ty::Bit) => Ok(Value::Bit(*v != 0)),
        (InitAst::Bit(b), Ty::Bit) => Ok(Value::Bit(*b)),
        (InitAst::Bits(s), Ty::Bits(w)) => {
            let bv = bits_from_msb_string(s);
            if bv.width() != *w {
                return Err(format!(
                    "bit literal has {} bits, variable has {w}",
                    bv.width()
                ));
            }
            Ok(Value::Bits(bv))
        }
        (InitAst::Array(items), Ty::Array { elem, len }) => {
            if items.len() != *len as usize {
                return Err(format!(
                    "array initializer has {} elements, type has {len}",
                    items.len()
                ));
            }
            let values: Result<Vec<Value>, String> =
                items.iter().map(|i| lower_init(i, elem)).collect();
            Ok(Value::Array(values?))
        }
        (other, ty) => Err(format!("initializer {other:?} does not fit type {ty}")),
    }
}

fn lower_binop(op: BinOpAst) -> ifsyn_spec::BinOp {
    use ifsyn_spec::BinOp as B;
    match op {
        BinOpAst::Add => B::Add,
        BinOpAst::Sub => B::Sub,
        BinOpAst::Mul => B::Mul,
        BinOpAst::Div => B::Div,
        BinOpAst::Rem => B::Rem,
        BinOpAst::Eq => B::Eq,
        BinOpAst::Ne => B::Ne,
        BinOpAst::Lt => B::Lt,
        BinOpAst::Le => B::Le,
        BinOpAst::Gt => B::Gt,
        BinOpAst::Ge => B::Ge,
        BinOpAst::And => B::And,
        BinOpAst::Or => B::Or,
        BinOpAst::Xor => B::Xor,
        BinOpAst::Concat => B::Concat,
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_system;

    #[test]
    fn lowers_flc_like_source() {
        let sys = parse_system(
            r#"
            system flc;
            module chip1;
            module chip2;
            store chip2_store on chip2 {
                var trru0 : int<16>[128];
            }
            behavior EVAL_R3 on chip1 {
                for i in 0 to 127 {
                    compute 6 "evaluate rule";
                    send ch1(i, i * 3 + 1);
                }
            }
            channel ch1 : EVAL_R3 writes trru0;
            "#,
        )
        .unwrap();
        let ch = sys.channel_by_name("ch1").unwrap();
        let c = sys.channel(ch);
        assert_eq!(c.data_bits, 16);
        assert_eq!(c.addr_bits, 7);
        assert_eq!(c.accesses, 128, "accesses counted from the loop");
    }

    #[test]
    fn unknown_names_error_with_positions() {
        let e = parse_system("system s;\nmodule m;\nbehavior p on m {\n  send nope(1);\n}")
            .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown channel"));
    }

    #[test]
    fn send_arity_is_checked() {
        let e = parse_system(
            r#"
            system s; module m;
            store st on m { var mem : int<8>[16]; }
            behavior p on m { send c(1); }
            channel c : p writes mem;
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("takes 2 argument"));
    }

    #[test]
    fn array_initializers_check_length() {
        let e = parse_system("system s; module m; store st on m { var a : int<8>[3] = [1, 2]; }")
            .unwrap_err();
        assert!(e.message.contains("2 elements"));
        let sys =
            parse_system("system s; module m; store st on m { var a : int<8>[3] = [1, 2, 3]; }")
                .unwrap();
        let a = sys.variable_by_name("a").unwrap();
        assert_eq!(
            sys.variable(a).initial_value(),
            ifsyn_spec::Value::Array(vec![
                ifsyn_spec::Value::int(1, 8),
                ifsyn_spec::Value::int(2, 8),
                ifsyn_spec::Value::int(3, 8),
            ])
        );
    }

    #[test]
    fn signals_resolve_in_expressions() {
        let sys = parse_system(
            r#"
            system s; module m;
            signal go : bit;
            signal bus_data : bits<8>;
            behavior p on m {
                var x : bits<4>;
                wait until go = '1';
                x := bus_data[3:0];
            }
            "#,
        )
        .unwrap();
        assert!(sys.signal_by_name("go").is_some());
        assert!(sys.check().is_ok());
    }

    #[test]
    fn assertions_parse_lower_and_simulate() {
        let sys = parse_system(
            r#"
            system s; module m;
            behavior p on m {
                var x : int<16>;
                x := 41 + 1;
                assert x = 42 "the answer";
            }
            "#,
        )
        .unwrap();
        let p = sys.behavior_by_name("p").unwrap();
        assert!(matches!(
            sys.behavior(p).body[1],
            ifsyn_spec::Stmt::Assert { .. }
        ));
    }

    #[test]
    fn duplicate_declarations_error() {
        assert!(parse_system("system s; module m; module m;").is_err());
        assert!(parse_system("system s; module m; behavior p on m {} behavior p on m {}").is_err());
    }
}

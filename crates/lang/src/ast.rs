//! The abstract syntax tree of the specification language.

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct File {
    pub name: String,
    pub items: Vec<Item>,
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Item {
    Module { name: String },
    Signal { name: String, ty: TypeAst },
    Behavior(BehaviorAst),
    Channel(ChannelAst),
}

/// A behavior (or store) declaration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BehaviorAst {
    pub name: String,
    pub module: String,
    pub repeats: bool,
    pub vars: Vec<VarAst>,
    pub body: Vec<StmtAst>,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarAst {
    pub name: String,
    pub ty: TypeAst,
    pub init: Option<InitAst>,
    pub line: u32,
    pub column: u32,
}

/// An initial value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InitAst {
    Int(i64),
    Bits(String),
    Bit(bool),
    Array(Vec<InitAst>),
}

/// A type expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TypeAst {
    Bit,
    Bits(u32),
    Int(u32),
    Array(Box<TypeAst>, u32),
}

/// A channel declaration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChannelAst {
    pub name: String,
    pub behavior: String,
    pub writes: bool,
    pub variable: String,
    pub line: u32,
    pub column: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StmtAst {
    Assign {
        place: PlaceAst,
        value: ExprAst,
    },
    Drive {
        signal: String,
        value: ExprAst,
        line: u32,
        column: u32,
    },
    If {
        cond: ExprAst,
        then_body: Vec<StmtAst>,
        else_body: Vec<StmtAst>,
    },
    For {
        var: String,
        from: ExprAst,
        to: ExprAst,
        body: Vec<StmtAst>,
        line: u32,
        column: u32,
    },
    While {
        cond: ExprAst,
        body: Vec<StmtAst>,
    },
    WaitUntil(ExprAst),
    WaitUntilFor(ExprAst, u64),
    WaitOn(Vec<(String, u32, u32)>),
    WaitFor(u64),
    Compute {
        cycles: u64,
        note: String,
    },
    Assert {
        cond: ExprAst,
        note: String,
    },
    Send {
        channel: String,
        args: Vec<ExprAst>,
        line: u32,
        column: u32,
    },
    Receive {
        channel: String,
        addr: Option<ExprAst>,
        target: PlaceAst,
        line: u32,
        column: u32,
    },
    Return,
}

/// An assignable place.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlaceAst {
    pub name: String,
    pub index: Option<Box<ExprAst>>,
    /// `[hi:lo]` bit slice.
    pub slice: Option<(u32, u32)>,
    pub line: u32,
    pub column: u32,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOpAst {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Xor,
    Concat,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ExprAst {
    Int(i64),
    Bit(bool),
    Bits(String),
    Place(PlaceAst),
    Unary {
        neg: bool, // true = '-', false = 'not'
        arg: Box<ExprAst>,
    },
    Binary {
        op: BinOpAst,
        lhs: Box<ExprAst>,
        rhs: Box<ExprAst>,
    },
}

//! Parse errors with source positions.

use std::error::Error;
use std::fmt;

/// A lexical, syntactic or semantic error in a specification source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub column: u32,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_position() {
        let e = ParseError::new(3, 14, "expected `;`");
        assert_eq!(e.to_string(), "3:14: expected `;`");
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ParseError>();
    }
}

//! Channel average-rate and peak-rate estimation (the paper's ref \[8\]).

use std::collections::HashMap;

use ifsyn_spec::{ChannelId, System};

use crate::error::EstimateError;
use crate::perf::PerformanceEstimator;
use crate::timing::{BusTiming, ChannelTimings};

/// Computes the quantities bus generation feeds into its feasibility test
/// and cost function.
///
/// * **Average rate** of a channel: total bits moved over the lifetime of
///   the accessing process, divided by that lifetime (in clocks) — so the
///   rate *depends on the candidate bus width*: a narrower bus stretches
///   the process and lowers every channel's average rate, which is the
///   feedback loop the paper's Fig. 2 discussion describes.
/// * **Peak rate**: the burst transfer rate the bus offers the channel,
///   `min(width, message_bits) / cycles_per_word`.
#[derive(Debug, Clone, Default)]
pub struct ChannelRates {
    estimator: PerformanceEstimator,
}

impl ChannelRates {
    /// Creates a rate estimator with the default cost model.
    pub fn new() -> Self {
        Self {
            estimator: PerformanceEstimator::new(),
        }
    }

    /// Creates a rate estimator sharing an existing performance estimator.
    pub fn with_estimator(estimator: PerformanceEstimator) -> Self {
        Self { estimator }
    }

    /// Returns the inner performance estimator.
    pub fn estimator(&self) -> &PerformanceEstimator {
        &self.estimator
    }

    /// Average rate of `channel` (bits/clock) when the channels in
    /// `timings` are implemented with the given bus timing.
    ///
    /// The lifetime is the estimated execution time of the accessing
    /// behavior under the same timing. Channels whose behavior performs
    /// no work at all (zero estimated cycles) are given rate 0.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownChannel`] for an out-of-range id,
    /// or any error from behavior estimation.
    pub fn average_rate(
        &self,
        system: &System,
        channel: ChannelId,
        timings: &ChannelTimings,
    ) -> Result<f64, EstimateError> {
        if channel.index() >= system.channels.len() {
            return Err(EstimateError::UnknownChannel { id: channel });
        }
        let ch = system.channel(channel);
        let est = self.estimator.estimate(system, ch.accessor, timings)?;
        if est.cycles == 0 {
            return Ok(0.0);
        }
        // Prefer the statically counted accesses (they respect loop
        // structure); fall back to the channel's declared access count
        // when the body has not been written out (pure-workload models).
        let accesses = est
            .channel_accesses
            .get(&channel)
            .copied()
            .filter(|&n| n > 0)
            .unwrap_or(ch.accesses);
        let bits = accesses * u64::from(ch.message_bits());
        Ok(bits as f64 / est.cycles as f64)
    }

    /// Sum of average rates over a channel group (the right-hand side of
    /// the paper's Eq. 1).
    ///
    /// # Errors
    ///
    /// Propagates the first per-channel estimation error.
    pub fn sum_average_rates(
        &self,
        system: &System,
        channels: &[ChannelId],
        timings: &ChannelTimings,
    ) -> Result<f64, EstimateError> {
        let mut sum = 0.0;
        for &ch in channels {
            sum += self.average_rate(system, ch, timings)?;
        }
        Ok(sum)
    }

    /// Peak rate of `channel` on a bus with the given timing (bits/clock).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownChannel`] for an out-of-range id.
    pub fn peak_rate(
        &self,
        system: &System,
        channel: ChannelId,
        timing: BusTiming,
    ) -> Result<f64, EstimateError> {
        if channel.index() >= system.channels.len() {
            return Err(EstimateError::UnknownChannel { id: channel });
        }
        Ok(timing.peak_rate(system.channel(channel).message_bits()))
    }
}

/// Where the average rates that drive width selection come from.
///
/// The paper's algorithm prices each width with *statically estimated*
/// rates ([`ChannelRates`]). The trace-analytics loop closes the gap
/// between those estimates and what a simulation actually measures: a
/// [`RateModel::Calibrated`] model scales each channel's static estimate
/// by the measured-over-estimated ratio observed at one simulated width,
/// so re-running width selection reflects bus contention the static
/// model cannot see.
///
/// Peak rates are a property of the bus timing alone (the burst rate the
/// wires offer, not what traffic achieves), so both variants report the
/// same peak rate.
#[derive(Debug, Clone)]
pub enum RateModel {
    /// Purely static estimation — the paper's model, and the default.
    Static(ChannelRates),
    /// Static estimation with per-channel multiplicative correction
    /// factors measured from a simulation trace.
    Calibrated {
        /// The underlying static estimator.
        base: ChannelRates,
        /// `measured_rate / estimated_rate` per channel, applied
        /// multiplicatively. Channels absent from the map are left
        /// uncorrected (factor 1).
        scale: HashMap<ChannelId, f64>,
    },
}

impl Default for RateModel {
    fn default() -> Self {
        Self::Static(ChannelRates::default())
    }
}

impl RateModel {
    /// Creates the default static model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static estimator without correction.
    pub fn from_static(rates: ChannelRates) -> Self {
        Self::Static(rates)
    }

    /// Creates a calibrated model from a static estimator and measured
    /// per-channel correction factors.
    pub fn calibrated(base: ChannelRates, scale: HashMap<ChannelId, f64>) -> Self {
        Self::Calibrated { base, scale }
    }

    /// The underlying static estimator.
    pub fn base(&self) -> &ChannelRates {
        match self {
            Self::Static(rates) => rates,
            Self::Calibrated { base, .. } => base,
        }
    }

    /// The correction factor applied to `channel` (1 when static or
    /// unmeasured).
    pub fn scale_for(&self, channel: ChannelId) -> f64 {
        match self {
            Self::Static(_) => 1.0,
            Self::Calibrated { scale, .. } => scale.get(&channel).copied().unwrap_or(1.0),
        }
    }

    /// Average rate of `channel` under this model (bits/clock).
    ///
    /// # Errors
    ///
    /// Same as [`ChannelRates::average_rate`].
    pub fn average_rate(
        &self,
        system: &System,
        channel: ChannelId,
        timings: &ChannelTimings,
    ) -> Result<f64, EstimateError> {
        match self {
            Self::Static(rates) => rates.average_rate(system, channel, timings),
            Self::Calibrated { base, scale } => {
                let factor = scale.get(&channel).copied().unwrap_or(1.0);
                Ok(base.average_rate(system, channel, timings)? * factor)
            }
        }
    }

    /// Sum of average rates over a channel group under this model.
    ///
    /// # Errors
    ///
    /// Propagates the first per-channel estimation error.
    pub fn sum_average_rates(
        &self,
        system: &System,
        channels: &[ChannelId],
        timings: &ChannelTimings,
    ) -> Result<f64, EstimateError> {
        let mut sum = 0.0;
        for &ch in channels {
            sum += self.average_rate(system, ch, timings)?;
        }
        Ok(sum)
    }

    /// Peak rate of `channel` — always the bus timing's burst rate,
    /// regardless of calibration.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownChannel`] for an out-of-range id.
    pub fn peak_rate(
        &self,
        system: &System,
        channel: ChannelId,
        timing: BusTiming,
    ) -> Result<f64, EstimateError> {
        self.base().peak_rate(system, channel, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, Ty};

    /// A process sending `accesses` messages of (16+7) bits with
    /// `compute` extra cycles per access.
    fn rig(accesses: i64, compute: u64) -> (System, ChannelId) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let owner = sys.add_behavior("MEMPROC", m);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 128), owner);
        let i = sys.add_variable("i", Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: mem,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: accesses as u64,
        });
        let mut body = vec![send_at(ch, load(var(i)), int_const(1, 16))];
        if compute > 0 {
            body.push(ifsyn_spec::Stmt::compute(compute, "work"));
        }
        sys.behavior_mut(b).body.push(for_loop(
            var(i),
            int_const(0, 16),
            int_const(accesses - 1, 16),
            body,
        ));
        (sys, ch)
    }

    #[test]
    fn average_rate_reflects_transfer_and_compute_time() {
        let (sys, ch) = rig(128, 4);
        let rates = ChannelRates::new();
        // Width 8: 3 words x 2clk = 6 per access, +4 compute = 10/access.
        let timings = ChannelTimings::uniform(&[ch], BusTiming::new(8, 2));
        let r = rates.average_rate(&sys, ch, &timings).unwrap();
        let expected = (128.0 * 23.0) / (128.0 * 10.0);
        assert!((r - expected).abs() < 1e-9, "{r} vs {expected}");
    }

    #[test]
    fn wider_bus_raises_average_rate() {
        let (sys, ch) = rig(128, 4);
        let rates = ChannelRates::new();
        let mut last = 0.0;
        for w in [1u32, 2, 4, 8, 16, 23] {
            let t = ChannelTimings::uniform(&[ch], BusTiming::new(w, 2));
            let r = rates.average_rate(&sys, ch, &t).unwrap();
            assert!(r >= last, "rate should not decrease with width");
            last = r;
        }
    }

    #[test]
    fn sum_average_rates_adds() {
        let (sys, ch) = rig(16, 0);
        let rates = ChannelRates::new();
        let t = ChannelTimings::uniform(&[ch], BusTiming::new(23, 2));
        let single = rates.average_rate(&sys, ch, &t).unwrap();
        let sum = rates.sum_average_rates(&sys, &[ch], &t).unwrap();
        assert_eq!(single, sum);
    }

    #[test]
    fn peak_rate_uses_message_bits() {
        let (sys, ch) = rig(1, 0);
        let rates = ChannelRates::new();
        let r = rates.peak_rate(&sys, ch, BusTiming::new(32, 2)).unwrap();
        assert_eq!(r, 23.0 / 2.0);
    }

    #[test]
    fn unknown_channel_errors() {
        let sys = System::new("t");
        let rates = ChannelRates::new();
        assert!(rates
            .average_rate(&sys, ChannelId::new(0), &ChannelTimings::new())
            .is_err());
        assert!(rates
            .peak_rate(&sys, ChannelId::new(0), BusTiming::new(8, 2))
            .is_err());
    }

    #[test]
    fn zero_traffic_channel_has_zero_rate() {
        // A channel whose accessor does work but never touches it
        // (declared accesses = 0, no sends in the body) contributes
        // nothing to Eq. 1's right-hand side.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let owner = sys.add_behavior("Q", m);
        let v = sys.add_variable("X", Ty::Bits(16), owner);
        let ch = sys.add_channel(Channel {
            name: "quiet".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 0,
            accesses: 0,
        });
        sys.behavior_mut(b)
            .body
            .push(ifsyn_spec::Stmt::compute(50, "w"));
        let rates = ChannelRates::new();
        let t = ChannelTimings::uniform(&[ch], BusTiming::new(8, 2));
        assert_eq!(rates.average_rate(&sys, ch, &t).unwrap(), 0.0);
        assert_eq!(rates.sum_average_rates(&sys, &[ch], &t).unwrap(), 0.0);
    }

    #[test]
    fn empty_accessor_body_has_zero_rate_not_nan() {
        // Zero estimated lifetime must not divide: the rate is defined
        // as 0, never NaN/inf, so feasibility comparisons stay total.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let owner = sys.add_behavior("Q", m);
        let v = sys.add_variable("X", Ty::Bits(16), owner);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: 10,
        });
        let rates = ChannelRates::new();
        let r = rates
            .average_rate(&sys, ch, &ChannelTimings::new())
            .unwrap();
        assert_eq!(r, 0.0);
        assert!(r.is_finite());
    }

    #[test]
    fn static_rate_model_matches_channel_rates_exactly() {
        let (sys, ch) = rig(128, 4);
        let t = ChannelTimings::uniform(&[ch], BusTiming::new(8, 2));
        let direct = ChannelRates::new().average_rate(&sys, ch, &t).unwrap();
        let model = RateModel::new();
        assert_eq!(model.average_rate(&sys, ch, &t).unwrap(), direct);
        assert_eq!(model.scale_for(ch), 1.0);
    }

    #[test]
    fn calibrated_model_scales_average_but_not_peak() {
        let (sys, ch) = rig(128, 4);
        let timing = BusTiming::new(8, 2);
        let t = ChannelTimings::uniform(&[ch], timing);
        let base = ChannelRates::new();
        let static_rate = base.average_rate(&sys, ch, &t).unwrap();
        let static_peak = base.peak_rate(&sys, ch, timing).unwrap();
        let model = RateModel::calibrated(base, HashMap::from([(ch, 0.75)]));
        let r = model.average_rate(&sys, ch, &t).unwrap();
        assert!((r - static_rate * 0.75).abs() < 1e-12, "{r}");
        assert_eq!(model.peak_rate(&sys, ch, timing).unwrap(), static_peak);
        assert_eq!(model.scale_for(ch), 0.75);
    }

    #[test]
    fn calibrated_model_leaves_unmeasured_channels_alone() {
        let (sys, ch) = rig(16, 0);
        let t = ChannelTimings::uniform(&[ch], BusTiming::new(23, 2));
        let static_rate = ChannelRates::new().average_rate(&sys, ch, &t).unwrap();
        let model = RateModel::calibrated(ChannelRates::new(), HashMap::new());
        assert_eq!(model.average_rate(&sys, ch, &t).unwrap(), static_rate);
        assert_eq!(model.scale_for(ch), 1.0);
    }

    #[test]
    fn declared_accesses_used_when_body_is_abstract() {
        // Behavior whose body is pure compute (no ChannelSend stmts):
        // fall back to the channel's declared access count.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let owner = sys.add_behavior("Q", m);
        let v = sys.add_variable("X", Ty::Bits(16), owner);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 0,
            accesses: 10,
        });
        sys.behavior_mut(b)
            .body
            .push(ifsyn_spec::Stmt::compute(100, "w"));
        let rates = ChannelRates::new();
        let r = rates
            .average_rate(&sys, ch, &ChannelTimings::new())
            .unwrap();
        assert!((r - (10.0 * 16.0) / 100.0).abs() < 1e-9);
    }
}

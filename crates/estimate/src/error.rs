//! Error type for estimation.

use std::error::Error;
use std::fmt;

use ifsyn_spec::{BehaviorId, ChannelId};

/// Errors produced by the estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EstimateError {
    /// The behavior id does not exist in the system.
    UnknownBehavior {
        /// The offending id.
        id: BehaviorId,
    },
    /// The channel id does not exist in the system.
    UnknownChannel {
        /// The offending id.
        id: ChannelId,
    },
    /// Statement nesting exceeded the estimator's recursion limit
    /// (possible procedure-call cycle).
    RecursionLimit,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::UnknownBehavior { id } => {
                write!(f, "behavior {id} does not exist in the system")
            }
            EstimateError::UnknownChannel { id } => {
                write!(f, "channel {id} does not exist in the system")
            }
            EstimateError::RecursionLimit => {
                write!(f, "statement nesting exceeded the recursion limit")
            }
        }
    }
}

impl Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_id() {
        let e = EstimateError::UnknownChannel {
            id: ChannelId::new(2),
        };
        assert!(e.to_string().contains("ch2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EstimateError>();
    }
}

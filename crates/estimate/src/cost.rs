//! The statement cost model shared by estimation and simulation.

/// Clock-cycle costs of IR statements.
///
/// One instance of this model is the single source of truth for "how many
/// clocks does a statement take": the analytic estimator walks statement
/// trees with it, and the simulator lowers statements to instructions
/// carrying these costs. A statement's explicit `cost` field, when set,
/// overrides the model (protocol generation uses that to price handshake
/// edges).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles per variable assignment (`:=`).
    pub assign_cycles: u32,
    /// Cycles per signal assignment (`<=`).
    pub signal_assign_cycles: u32,
    /// Cycles per *abstract* channel access (the ideal, pre-refinement
    /// channel: a rendezvous that always succeeds immediately).
    pub abstract_channel_cycles: u32,
    /// Fixed cycles added per procedure call (call/return overhead).
    pub call_overhead_cycles: u32,
    /// Cycles charged per loop iteration for the loop bookkeeping itself.
    pub loop_overhead_cycles: u32,
}

impl CostModel {
    /// The default model: single-cycle assignments, free control flow.
    ///
    /// This mirrors a simple datapath where every register transfer takes
    /// one controller state and branching is folded into state selection —
    /// the granularity the paper's Fig. 7 clock counts imply.
    pub fn new() -> Self {
        Self {
            assign_cycles: 1,
            signal_assign_cycles: 1,
            abstract_channel_cycles: 1,
            call_overhead_cycles: 0,
            loop_overhead_cycles: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new() {
        assert_eq!(CostModel::new(), CostModel::default());
    }

    #[test]
    fn default_is_single_cycle_assignments() {
        let m = CostModel::new();
        assert_eq!(m.assign_cycles, 1);
        assert_eq!(m.signal_assign_cycles, 1);
        assert_eq!(m.loop_overhead_cycles, 0);
    }
}

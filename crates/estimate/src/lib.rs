//! # ifsyn-estimate — performance and channel-rate estimation
//!
//! Reimplements the estimation substrate the DAC'94 paper relies on:
//!
//! * a **statement cost model** ([`CostModel`]) assigning clock-cycle costs
//!   to IR statements — the simulator (`ifsyn-sim`) uses the *same* model
//!   when lowering, so analytic estimates and measured simulations agree
//!   by construction on straight-line code;
//! * a **process execution-time estimator** ([`PerformanceEstimator`],
//!   their reference \[10\]) that walks a behavior and totals cycles,
//!   pricing each channel access according to a [`BusTiming`];
//! * **channel average / peak rates** ([`ChannelRates`], their reference
//!   \[8\]) — the quantities bus generation's feasibility test (Eq. 1) and
//!   cost function consume.
//!
//! ## Example
//!
//! Estimate the Fig. 7 quantity — execution time of a process that moves
//! 128 messages of 23 bits over an 8-bit handshaked bus:
//!
//! ```
//! use ifsyn_estimate::BusTiming;
//!
//! let timing = BusTiming::new(8, 2);
//! // ceil(23 / 8) = 3 words, 2 clocks each.
//! assert_eq!(timing.cycles_per_access(23), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cost;
mod error;
mod perf;
mod rates;
mod timing;

pub use area::{AreaEstimate, AreaEstimator, AreaModel};
pub use cost::CostModel;
pub use error::EstimateError;
pub use perf::{BehaviorEstimate, PerformanceEstimator};
pub use rates::{ChannelRates, RateModel};
pub use timing::{BusTiming, ChannelTimings};

//! Analytic process execution-time estimation (the paper's reference \[10\]).

use std::collections::HashMap;

use ifsyn_spec::{BehaviorId, ChannelId, Expr, Stmt, System, Value, WaitCond};

use crate::cost::CostModel;
use crate::error::EstimateError;
use crate::timing::ChannelTimings;

/// The result of estimating one behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorEstimate {
    /// Estimated execution time of one pass over the body, in clocks.
    pub cycles: u64,
    /// Channel accesses performed during one pass, per channel.
    pub channel_accesses: HashMap<ChannelId, u64>,
    /// Modelling assumptions taken while estimating (unbounded loops,
    /// synchronisation waits, ...). Empty means the estimate is exact
    /// with respect to the cost model.
    pub assumptions: Vec<String>,
}

impl BehaviorEstimate {
    /// Total bits this behavior moves over `channel` during one pass,
    /// given the channel's message size.
    pub fn bits_on(&self, channel: ChannelId, message_bits: u32) -> u64 {
        self.channel_accesses.get(&channel).copied().unwrap_or(0) * u64::from(message_bits)
    }
}

/// Walks behavior bodies and totals clock cycles under a [`CostModel`],
/// pricing channel accesses with [`ChannelTimings`].
///
/// # Example
///
/// ```
/// use ifsyn_estimate::{PerformanceEstimator, ChannelTimings};
/// use ifsyn_spec::{System, Stmt, Ty};
///
/// let mut sys = System::new("demo");
/// let m = sys.add_module("chip");
/// let b = sys.add_behavior("P", m);
/// sys.behavior_mut(b).body.push(Stmt::compute(100, "work"));
///
/// let est = PerformanceEstimator::new()
///     .estimate(&sys, b, &ChannelTimings::new())
///     .unwrap();
/// assert_eq!(est.cycles, 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerformanceEstimator {
    cost_model: CostModel,
    /// Cycles assumed for a synchronisation wait of unknown duration.
    sync_wait_cycles: u64,
}

impl PerformanceEstimator {
    /// Creates an estimator with the default cost model.
    pub fn new() -> Self {
        Self {
            cost_model: CostModel::new(),
            sync_wait_cycles: 1,
        }
    }

    /// Builder-style setter for the cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Returns the cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Estimates one pass over `behavior`'s body.
    ///
    /// Channel accesses found in the body are priced by `timings`;
    /// channels missing from the map cost
    /// [`CostModel::abstract_channel_cycles`].
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownBehavior`] for an out-of-range id.
    pub fn estimate(
        &self,
        system: &System,
        behavior: BehaviorId,
        timings: &ChannelTimings,
    ) -> Result<BehaviorEstimate, EstimateError> {
        if behavior.index() >= system.behaviors.len() {
            return Err(EstimateError::UnknownBehavior { id: behavior });
        }
        let mut est = BehaviorEstimate {
            cycles: 0,
            channel_accesses: HashMap::new(),
            assumptions: Vec::new(),
        };
        est.cycles = self.walk(
            system,
            &system.behavior(behavior).body,
            timings,
            &mut est,
            0,
        )?;
        Ok(est)
    }

    fn channel_access_cycles(
        &self,
        system: &System,
        channel: ChannelId,
        timings: &ChannelTimings,
    ) -> u64 {
        match timings.get(channel) {
            Some(t) => t.cycles_per_access(system.channel(channel).message_bits()),
            None => u64::from(self.cost_model.abstract_channel_cycles),
        }
    }

    fn walk(
        &self,
        system: &System,
        body: &[Stmt],
        timings: &ChannelTimings,
        est: &mut BehaviorEstimate,
        depth: u32,
    ) -> Result<u64, EstimateError> {
        if depth > 64 {
            return Err(EstimateError::RecursionLimit);
        }
        let mut cycles = 0u64;
        for stmt in body {
            cycles += match stmt {
                Stmt::Assign { cost, .. } => {
                    u64::from(cost.unwrap_or(self.cost_model.assign_cycles))
                }
                Stmt::SignalAssign { cost, .. } => {
                    u64::from(cost.unwrap_or(self.cost_model.signal_assign_cycles))
                }
                Stmt::Compute { cycles, .. } => *cycles,
                Stmt::Wait(WaitCond::ForCycles(n)) => *n,
                Stmt::Wait(_) => {
                    if est.assumptions.is_empty()
                        || !est.assumptions.iter().any(|a| a.contains("sync wait"))
                    {
                        est.assumptions.push(format!(
                            "sync wait assumed {} cycle(s)",
                            self.sync_wait_cycles
                        ));
                    }
                    self.sync_wait_cycles
                }
                Stmt::If {
                    cond: _,
                    then_body,
                    else_body,
                } => {
                    // Worst case over the two branches.
                    let t = self.walk(system, then_body, timings, est, depth + 1)?;
                    let e = self.walk(system, else_body, timings, est, depth + 1)?;
                    t.max(e)
                }
                Stmt::For { from, to, body, .. } => {
                    let iters = match (const_eval(from), const_eval(to)) {
                        (Some(a), Some(b)) if b >= a => (b - a + 1) as u64,
                        (Some(_), Some(_)) => 0,
                        _ => {
                            est.assumptions.push(
                                "for-loop with non-constant bounds assumed 1 iteration".into(),
                            );
                            1
                        }
                    };
                    let one = self.scaled_walk(system, body, timings, est, depth, iters)?;
                    iters * (one + u64::from(self.cost_model.loop_overhead_cycles))
                }
                Stmt::While { body, .. } => {
                    est.assumptions
                        .push("while-loop assumed 1 iteration".into());
                    self.walk(system, body, timings, est, depth + 1)?
                }
                Stmt::Call { procedure, args: _ } => {
                    let p = system.procedure(*procedure);
                    u64::from(self.cost_model.call_overhead_cycles)
                        + self.walk(system, &p.body, timings, est, depth + 1)?
                }
                Stmt::ChannelSend { channel, .. } | Stmt::ChannelReceive { channel, .. } => {
                    *est.channel_accesses.entry(*channel).or_insert(0) += 1;
                    self.channel_access_cycles(system, *channel, timings)
                }
                Stmt::Assert { .. } => 0,
                Stmt::Return => 0,
            };
        }
        Ok(cycles)
    }

    /// Walks a loop body once for cycle counting, but records channel
    /// accesses `iters` times (each iteration really performs them).
    fn scaled_walk(
        &self,
        system: &System,
        body: &[Stmt],
        timings: &ChannelTimings,
        est: &mut BehaviorEstimate,
        depth: u32,
        iters: u64,
    ) -> Result<u64, EstimateError> {
        let before: HashMap<ChannelId, u64> = est.channel_accesses.clone();
        let cycles = self.walk(system, body, timings, est, depth + 1)?;
        if iters != 1 {
            for (ch, after) in est.channel_accesses.iter_mut() {
                let base = before.get(ch).copied().unwrap_or(0);
                let delta = *after - base;
                *after = base + delta * iters;
            }
        }
        Ok(cycles)
    }
}

/// Evaluates an expression to a constant integer if possible.
fn const_eval(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::Const(v) => match v {
            Value::Int { value, .. } => Some(*value),
            Value::Bit(b) => Some(*b as i64),
            Value::Bits(bv) => Some(bv.to_u64() as i64),
            Value::Array(_) => None,
        },
        Expr::Binary { op, lhs, rhs } => {
            use ifsyn_spec::BinOp::*;
            let a = const_eval(lhs)?;
            let b = const_eval(rhs)?;
            match op {
                Add => Some(a.wrapping_add(b)),
                Sub => Some(a.wrapping_sub(b)),
                Mul => Some(a.wrapping_mul(b)),
                Div => Some(if b == 0 { 0 } else { a / b }),
                Rem => Some(if b == 0 { 0 } else { a % b }),
                Min => Some(a.min(b)),
                Max => Some(a.max(b)),
                _ => None,
            }
        }
        Expr::Unary { op, arg } => {
            let a = const_eval(arg)?;
            match op {
                ifsyn_spec::UnaryOp::Neg => Some(-a),
                ifsyn_spec::UnaryOp::Not => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, Ty};

    use crate::timing::BusTiming;

    fn system_with_loop(iters: i64, sends_per_iter: usize) -> (System, BehaviorId, ChannelId) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let mem_owner = sys.add_behavior("MEMPROC", m);
        let v = sys.add_variable("MEM", Ty::array(Ty::Int(16), 128), mem_owner);
        let i = sys.add_variable("i", Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: "ch1".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: iters as u64 * sends_per_iter as u64,
        });
        let mut body = Vec::new();
        for _ in 0..sends_per_iter {
            body.push(send_at(ch, load(var(i)), int_const(0, 16)));
        }
        sys.behavior_mut(b).body.push(for_loop(
            var(i),
            int_const(0, 16),
            int_const(iters - 1, 16),
            body,
        ));
        (sys, b, ch)
    }

    #[test]
    fn straight_line_costs_sum() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("X", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![
            assign(var(x), int_const(1, 16)),
            assign_cost(var(x), int_const(2, 16), 5),
            Stmt::compute(10, "work"),
        ];
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 1 + 5 + 10);
        assert!(est.assumptions.is_empty());
    }

    #[test]
    fn loop_multiplies_body() {
        let (sys, b, ch) = system_with_loop(128, 1);
        // Ideal channel: 1 cycle per access -> 128 cycles.
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 128);
        assert_eq!(est.channel_accesses[&ch], 128);
    }

    #[test]
    fn bus_timing_prices_channel_accesses() {
        let (sys, b, ch) = system_with_loop(128, 1);
        // 23-bit messages over an 8-bit handshake bus: 3 words x 2 clk = 6.
        let timings = ChannelTimings::uniform(&[ch], BusTiming::new(8, 2));
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &timings)
            .unwrap();
        assert_eq!(est.cycles, 128 * 6);
    }

    #[test]
    fn nested_channel_counts_scale_by_loop() {
        let (sys, b, ch) = system_with_loop(10, 3);
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.channel_accesses[&ch], 30);
        assert_eq!(est.bits_on(ch, 23), 30 * 23);
    }

    #[test]
    fn if_takes_worst_case_branch() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![if_else(
            bit_const(true),
            vec![Stmt::compute(3, "short")],
            vec![Stmt::compute(9, "long")],
        )];
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 9);
    }

    #[test]
    fn while_loop_records_assumption() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![while_loop(bit_const(false), vec![Stmt::compute(2, "x")])];
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 2);
        assert!(!est.assumptions.is_empty());
    }

    #[test]
    fn empty_for_loop_is_zero() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let i = sys.add_variable("i", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(5, 16),
            int_const(0, 16),
            vec![Stmt::compute(100, "never")],
        )];
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 0);
    }

    #[test]
    fn unknown_behavior_errors() {
        let sys = System::new("t");
        let r =
            PerformanceEstimator::new().estimate(&sys, BehaviorId::new(3), &ChannelTimings::new());
        assert!(matches!(r, Err(EstimateError::UnknownBehavior { .. })));
    }

    #[test]
    fn const_eval_arithmetic() {
        let e = mul(add(int_const(2, 8), int_const(3, 8)), int_const(4, 8));
        assert_eq!(const_eval(&e), Some(20));
        assert_eq!(const_eval(&load(var(ifsyn_spec::VarId::new(0)))), None);
    }

    #[test]
    fn wait_for_cycles_is_exact() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![wait_cycles(42)];
        let est = PerformanceEstimator::new()
            .estimate(&sys, b, &ChannelTimings::new())
            .unwrap();
        assert_eq!(est.cycles, 42);
        assert!(est.assumptions.is_empty());
    }
}

//! Bus transfer timing: how long a channel access takes on a given bus.

use std::collections::HashMap;

use ifsyn_spec::ChannelId;

/// Transfer timing of a bus implementation.
///
/// A message of `m` bits crosses a `width`-bit bus in `ceil(m / width)`
/// words, each word costing `cycles_per_word` clocks (2 for the paper's
/// full handshake, Eq. 2), plus a fixed per-message `overhead` (0 for the
/// basic protocols; arbitration adds here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusTiming {
    /// Bus width in data lines (pins).
    pub width: u32,
    /// Clock cycles consumed per bus word.
    pub cycles_per_word: u32,
    /// Fixed clock cycles added per message (e.g. arbitration latency).
    pub overhead: u32,
}

impl BusTiming {
    /// Creates a timing with zero per-message overhead.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `cycles_per_word` is zero.
    pub fn new(width: u32, cycles_per_word: u32) -> Self {
        assert!(width > 0, "bus width must be positive");
        assert!(cycles_per_word > 0, "cycles per word must be positive");
        Self {
            width,
            cycles_per_word,
            overhead: 0,
        }
    }

    /// Builder-style setter for the per-message overhead.
    pub fn with_overhead(mut self, overhead: u32) -> Self {
        self.overhead = overhead;
        self
    }

    /// Number of bus words for a message of `message_bits`.
    pub fn words(&self, message_bits: u32) -> u32 {
        message_bits.div_ceil(self.width).max(1)
    }

    /// Clock cycles for one complete message transfer.
    pub fn cycles_per_access(&self, message_bits: u32) -> u64 {
        u64::from(self.words(message_bits)) * u64::from(self.cycles_per_word)
            + u64::from(self.overhead)
    }

    /// The bus data rate in bits per clock (the paper's Eq. 2 with
    /// `ClockPeriod = 1`): `width / cycles_per_word`.
    pub fn bus_rate(&self) -> f64 {
        f64::from(self.width) / f64::from(self.cycles_per_word)
    }

    /// Peak rate of a channel on this bus, in bits per clock: the fastest
    /// instantaneous transfer the channel can sustain during a burst,
    /// `min(width, message_bits) / cycles_per_word`.
    pub fn peak_rate(&self, message_bits: u32) -> f64 {
        f64::from(self.width.min(message_bits)) / f64::from(self.cycles_per_word)
    }
}

/// Per-channel transfer timings for one bus implementation.
///
/// Bus generation evaluates many widths; each candidate produces one
/// `ChannelTimings` mapping every grouped channel to the same
/// [`BusTiming`]. Channels *not* in the map are priced as abstract
/// (ideal) channels by the estimator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelTimings {
    map: HashMap<ChannelId, BusTiming>,
}

impl ChannelTimings {
    /// Creates an empty map (every channel ideal).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map pricing all `channels` with the same `timing`.
    pub fn uniform(channels: &[ChannelId], timing: BusTiming) -> Self {
        Self {
            map: channels.iter().map(|&c| (c, timing)).collect(),
        }
    }

    /// Sets the timing for one channel.
    pub fn insert(&mut self, channel: ChannelId, timing: BusTiming) {
        self.map.insert(channel, timing);
    }

    /// Returns the timing for a channel, if it is bus-priced.
    pub fn get(&self, channel: ChannelId) -> Option<&BusTiming> {
        self.map.get(&channel)
    }

    /// Returns `true` if no channel has bus timing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_rounds_up() {
        let t = BusTiming::new(8, 2);
        assert_eq!(t.words(16), 2);
        assert_eq!(t.words(17), 3);
        assert_eq!(t.words(1), 1);
        assert_eq!(t.words(0), 1);
    }

    #[test]
    fn flc_channel_cycles_match_paper_model() {
        // 23-bit messages (16 data + 7 addr), full handshake (2 clk/word).
        let cases = [(1, 46), (4, 12), (8, 6), (16, 4), (23, 2), (32, 2)];
        for (w, cycles) in cases {
            let t = BusTiming::new(w, 2);
            assert_eq!(t.cycles_per_access(23), cycles, "width {w}");
        }
    }

    #[test]
    fn bus_rate_is_eq2() {
        assert_eq!(BusTiming::new(8, 2).bus_rate(), 4.0);
        assert_eq!(BusTiming::new(23, 2).bus_rate(), 11.5);
    }

    #[test]
    fn peak_rate_saturates_at_message_size() {
        let t = BusTiming::new(32, 2);
        assert_eq!(t.peak_rate(23), 11.5);
        let t = BusTiming::new(8, 2);
        assert_eq!(t.peak_rate(23), 4.0);
    }

    #[test]
    fn overhead_adds_per_message() {
        let t = BusTiming::new(8, 2).with_overhead(3);
        assert_eq!(t.cycles_per_access(16), 7);
    }

    #[test]
    fn timings_map_roundtrip() {
        let chans = [ChannelId::new(0), ChannelId::new(1)];
        let t = BusTiming::new(8, 2);
        let map = ChannelTimings::uniform(&chans, t);
        assert_eq!(map.get(ChannelId::new(0)), Some(&t));
        assert_eq!(map.get(ChannelId::new(2)), None);
        assert!(!map.is_empty());
        assert!(ChannelTimings::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "bus width must be positive")]
    fn zero_width_panics() {
        let _ = BusTiming::new(0, 2);
    }
}

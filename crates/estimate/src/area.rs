//! Area estimation (the other half of the paper's reference \[10\],
//! "Area and performance estimation from system-level specifications").
//!
//! A coarse FSMD (FSM + datapath) model, enough to expose the *area
//! side* of interface-synthesis trade-offs: protocol generation adds
//! controller states (the handshake sequencing) and registers (message
//! buffers) in exchange for fewer wires; the estimator makes that
//! visible.
//!
//! Model:
//!
//! * every statement that consumes time (assignment, signal assignment,
//!   wait, channel access, compute block) occupies one **controller
//!   state**; control logic costs [`AreaModel::gates_per_state`] gates
//!   per state;
//! * every variable bit is a **register bit** costing
//!   [`AreaModel::gates_per_register_bit`] gates;
//! * interconnect costs [`AreaModel::gates_per_wire`] gate-equivalents
//!   per bus wire (drivers/receivers).

use ifsyn_spec::{BehaviorId, Stmt, System};

use crate::error::EstimateError;

/// Gate-cost coefficients of the FSMD area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Gate equivalents per controller state.
    pub gates_per_state: f64,
    /// Gate equivalents per register bit.
    pub gates_per_register_bit: f64,
    /// Gate equivalents per bus wire (driver + receiver).
    pub gates_per_wire: f64,
}

impl AreaModel {
    /// Default coefficients (typical standard-cell ballpark: a state
    /// costs ~10 gates of next-state/output logic, a register bit ~6, a
    /// pad/driver pair ~20).
    pub fn new() -> Self {
        Self {
            gates_per_state: 10.0,
            gates_per_register_bit: 6.0,
            gates_per_wire: 20.0,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::new()
    }
}

/// The estimated area of one behavior (or a whole system).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaEstimate {
    /// Controller states.
    pub states: u64,
    /// Register bits.
    pub register_bits: u64,
    /// Gate-equivalent total under the model used.
    pub gates: f64,
}

impl AreaEstimate {
    /// Combines two estimates (e.g. summing over behaviors).
    pub fn merged(self, other: AreaEstimate) -> AreaEstimate {
        AreaEstimate {
            states: self.states + other.states,
            register_bits: self.register_bits + other.register_bits,
            gates: self.gates + other.gates,
        }
    }
}

/// Estimates FSMD area of behaviors and systems.
#[derive(Debug, Clone, Default)]
pub struct AreaEstimator {
    model: AreaModel,
}

impl AreaEstimator {
    /// Creates an estimator with the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style setter for the coefficients.
    pub fn with_model(mut self, model: AreaModel) -> Self {
        self.model = model;
        self
    }

    /// Estimates the area of one behavior: its controller states plus
    /// the registers of the variables it owns.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnknownBehavior`] for an out-of-range id.
    pub fn estimate_behavior(
        &self,
        system: &System,
        behavior: BehaviorId,
    ) -> Result<AreaEstimate, EstimateError> {
        if behavior.index() >= system.behaviors.len() {
            return Err(EstimateError::UnknownBehavior { id: behavior });
        }
        let mut states = 0u64;
        count_states(&system.behavior(behavior).body, &mut states);
        // Procedures called from this behavior contribute their states
        // once (shared controller / subroutine sharing).
        let mut called: Vec<usize> = Vec::new();
        collect_calls(system, &system.behavior(behavior).body, &mut called);
        for p in called {
            count_states(&system.procedures[p].body, &mut states);
        }
        let register_bits: u64 = system
            .variables
            .iter()
            .filter(|v| v.owner == behavior)
            .map(|v| u64::from(v.ty.bit_width()))
            .sum();
        Ok(self.finish(states, register_bits))
    }

    /// Estimates the whole system (sum over behaviors) plus `bus_wires`
    /// of interconnect.
    ///
    /// # Errors
    ///
    /// Propagates behavior-estimation errors.
    pub fn estimate_system(
        &self,
        system: &System,
        bus_wires: u32,
    ) -> Result<AreaEstimate, EstimateError> {
        let mut total = AreaEstimate::default();
        for i in 0..system.behaviors.len() {
            total = total.merged(self.estimate_behavior(system, BehaviorId::new(i as u32))?);
        }
        total.gates += f64::from(bus_wires) * self.model.gates_per_wire;
        Ok(total)
    }

    fn finish(&self, states: u64, register_bits: u64) -> AreaEstimate {
        AreaEstimate {
            states,
            register_bits,
            gates: states as f64 * self.model.gates_per_state
                + register_bits as f64 * self.model.gates_per_register_bit,
        }
    }
}

/// Counts controller states: one per time-consuming statement.
fn count_states(body: &[Stmt], states: &mut u64) {
    for stmt in body {
        match stmt {
            Stmt::Assign { .. }
            | Stmt::SignalAssign { .. }
            | Stmt::Wait(_)
            | Stmt::ChannelSend { .. }
            | Stmt::ChannelReceive { .. }
            | Stmt::Compute { .. } => *states += 1,
            _ => {}
        }
        for inner in stmt.bodies() {
            count_states(inner, states);
        }
    }
}

fn collect_calls(system: &System, body: &[Stmt], out: &mut Vec<usize>) {
    ifsyn_spec::visit::for_each_stmt(body, &mut |s| {
        if let Stmt::Call { procedure, .. } = s {
            if !out.contains(&procedure.index()) {
                out.push(procedure.index());
                // Transitive calls (procedures calling procedures).
                let inner = system.procedures[procedure.index()].body.clone();
                collect_calls(system, &inner, out);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Arg, ParamMode, Procedure, Ty};

    fn rig() -> (System, BehaviorId) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("x", Ty::Bits(16), b);
        let i = sys.add_variable("i", Ty::Int(8), b);
        sys.behavior_mut(b).body = vec![
            assign(var(x), bits_const(0, 16)),
            for_loop(
                var(i),
                int_const(0, 8),
                int_const(3, 8),
                vec![Stmt::compute(2, "w")],
            ),
        ];
        (sys, b)
    }

    #[test]
    fn states_count_time_consuming_statements() {
        let (sys, b) = rig();
        let est = AreaEstimator::new().estimate_behavior(&sys, b).unwrap();
        // assign + compute (loop body counted once: shared state).
        assert_eq!(est.states, 2);
        assert_eq!(est.register_bits, 16 + 8);
    }

    #[test]
    fn gates_follow_the_model() {
        let (sys, b) = rig();
        let model = AreaModel {
            gates_per_state: 100.0,
            gates_per_register_bit: 1.0,
            gates_per_wire: 0.0,
        };
        let est = AreaEstimator::new()
            .with_model(model)
            .estimate_behavior(&sys, b)
            .unwrap();
        assert_eq!(est.gates, 2.0 * 100.0 + 24.0);
    }

    #[test]
    fn called_procedures_count_once() {
        let (mut sys, b) = rig();
        let mut p = Procedure::new("helper");
        p.add_param("a", Ty::Bits(8), ParamMode::In);
        p.body = vec![
            assign(local(0), bits_const(1, 8)),
            assign(local(0), bits_const(2, 8)),
        ];
        let pid = sys.add_procedure(p);
        sys.behavior_mut(b)
            .body
            .push(call(pid, vec![Arg::In(bits_const(0, 8))]));
        sys.behavior_mut(b)
            .body
            .push(call(pid, vec![Arg::In(bits_const(1, 8))]));
        let est = AreaEstimator::new().estimate_behavior(&sys, b).unwrap();
        // 2 original states + 2 from the procedure, shared across calls.
        assert_eq!(est.states, 4);
    }

    #[test]
    fn system_estimate_adds_wires() {
        let (sys, _) = rig();
        let without = AreaEstimator::new().estimate_system(&sys, 0).unwrap();
        let with = AreaEstimator::new().estimate_system(&sys, 10).unwrap();
        assert!(with.gates > without.gates);
        assert_eq!(with.states, without.states);
    }

    #[test]
    fn unknown_behavior_errors() {
        let (sys, _) = rig();
        assert!(AreaEstimator::new()
            .estimate_behavior(&sys, BehaviorId::new(9))
            .is_err());
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = AreaEstimate {
            states: 1,
            register_bits: 2,
            gates: 3.0,
        };
        let b = AreaEstimate {
            states: 10,
            register_bits: 20,
            gates: 30.0,
        };
        let m = a.merged(b);
        assert_eq!(m.states, 11);
        assert_eq!(m.register_bits, 22);
        assert_eq!(m.gates, 33.0);
    }
}

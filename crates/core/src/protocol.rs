//! Communication protocols a bus can use (paper §4, step 1).

use std::fmt;

use ifsyn_estimate::BusTiming;

/// The data-transfer protocol of a bus.
///
/// Protocol selection (the first step of protocol generation) trades
/// control wires against per-word delay and robustness:
///
/// | protocol        | control lines | clocks/word | restriction            |
/// |-----------------|---------------|-------------|------------------------|
/// | full handshake  | 2 (START, DONE) | 2         | none                   |
/// | half handshake  | 1 (START)       | 1         | write-only channels    |
/// | fixed delay     | 1 (START)       | d ≥ 2     | responder must keep up |
/// | hardwired       | 0               | 1         | dedicated wires, no sharing |
///
/// The paper evaluates the full handshake (its Eq. 2 assumes 2 clocks per
/// word); the others are the "incorporating protocols other than a full
/// handshake" future-work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ProtocolKind {
    /// Four-phase request/acknowledge handshake; safe for any mix of
    /// channels and relative process speeds.
    FullHandshake,
    /// Single strobe line toggled per word; the receiver must consume a
    /// word per cycle. Only valid for write channels.
    HalfHandshake,
    /// Strobe plus a fixed word period of `cycles` clocks; no
    /// acknowledgement.
    FixedDelay {
        /// Clocks per bus word (must be at least 2).
        cycles: u32,
    },
    /// Dedicated point-to-point wires, no sharing and no sequencing: the
    /// whole message is one word.
    Hardwired,
}

impl ProtocolKind {
    /// Number of dedicated control lines the protocol needs.
    pub fn control_lines(self) -> u32 {
        match self {
            ProtocolKind::FullHandshake => 2,
            ProtocolKind::HalfHandshake | ProtocolKind::FixedDelay { .. } => 1,
            ProtocolKind::Hardwired => 0,
        }
    }

    /// Clock cycles consumed per bus word.
    pub fn cycles_per_word(self) -> u32 {
        match self {
            ProtocolKind::FullHandshake => 2,
            ProtocolKind::HalfHandshake => 1,
            ProtocolKind::FixedDelay { cycles } => cycles.max(2),
            ProtocolKind::Hardwired => 1,
        }
    }

    /// Builds the transfer timing of a `width`-bit bus under this
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn timing(self, width: u32) -> BusTiming {
        BusTiming::new(width, self.cycles_per_word())
    }

    /// Short lowercase name for tables and traces.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::FullHandshake => "full-handshake",
            ProtocolKind::HalfHandshake => "half-handshake",
            ProtocolKind::FixedDelay { .. } => "fixed-delay",
            ProtocolKind::Hardwired => "hardwired",
        }
    }
}

impl Default for ProtocolKind {
    /// The paper's default: full handshake.
    fn default() -> Self {
        ProtocolKind::FullHandshake
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::FixedDelay { cycles } => write!(f, "fixed-delay({cycles})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_handshake_matches_eq2() {
        let p = ProtocolKind::FullHandshake;
        assert_eq!(p.cycles_per_word(), 2);
        assert_eq!(p.control_lines(), 2);
        // Eq. 2: BusRate = width / (2 * ClockPeriod), ClockPeriod = 1.
        assert_eq!(p.timing(16).bus_rate(), 8.0);
    }

    #[test]
    fn control_line_counts() {
        assert_eq!(ProtocolKind::HalfHandshake.control_lines(), 1);
        assert_eq!(ProtocolKind::FixedDelay { cycles: 3 }.control_lines(), 1);
        assert_eq!(ProtocolKind::Hardwired.control_lines(), 0);
    }

    #[test]
    fn fixed_delay_clamps_to_two() {
        // One-cycle fixed delay would race the responder's data latch.
        assert_eq!(ProtocolKind::FixedDelay { cycles: 1 }.cycles_per_word(), 2);
        assert_eq!(ProtocolKind::FixedDelay { cycles: 5 }.cycles_per_word(), 5);
    }

    #[test]
    fn default_is_full_handshake() {
        assert_eq!(ProtocolKind::default(), ProtocolKind::FullHandshake);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::FullHandshake.to_string(), "full-handshake");
        assert_eq!(
            ProtocolKind::FixedDelay { cycles: 4 }.to_string(),
            "fixed-delay(4)"
        );
    }
}

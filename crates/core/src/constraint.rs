//! Designer constraints and the bus-generation cost function (paper §3,
//! step 4).

use std::collections::HashMap;

use ifsyn_spec::ChannelId;

/// What quantity a constraint bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintKind {
    /// Lower bound on the bus width in pins.
    MinBusWidth,
    /// Upper bound on the bus width in pins.
    MaxBusWidth,
    /// Lower bound on a channel's average rate (bits/clock).
    MinAveRate(ChannelId),
    /// Upper bound on a channel's average rate (bits/clock).
    MaxAveRate(ChannelId),
    /// Lower bound on a channel's peak rate (bits/clock).
    MinPeakRate(ChannelId),
    /// Upper bound on a channel's peak rate (bits/clock).
    MaxPeakRate(ChannelId),
}

/// One designer constraint with a relative weight.
///
/// "The cost of a bus implementation is calculated as the sum of the
/// squares of violations of each of the constraints, weighted by the
/// relative weights specified for them." (paper §3, step 4)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// The bounded quantity.
    pub kind: ConstraintKind,
    /// The bound value (pins or bits/clock).
    pub bound: f64,
    /// Relative weight in the cost function.
    pub weight: f64,
}

impl Constraint {
    /// `width >= bound` pins.
    pub fn min_bus_width(bound: u32, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MinBusWidth,
            bound: f64::from(bound),
            weight,
        }
    }

    /// `width <= bound` pins.
    pub fn max_bus_width(bound: u32, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MaxBusWidth,
            bound: f64::from(bound),
            weight,
        }
    }

    /// `AveRate(channel) >= bound` bits/clock.
    pub fn min_ave_rate(channel: ChannelId, bound: f64, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MinAveRate(channel),
            bound,
            weight,
        }
    }

    /// `AveRate(channel) <= bound` bits/clock.
    pub fn max_ave_rate(channel: ChannelId, bound: f64, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MaxAveRate(channel),
            bound,
            weight,
        }
    }

    /// `PeakRate(channel) >= bound` bits/clock.
    pub fn min_peak_rate(channel: ChannelId, bound: f64, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MinPeakRate(channel),
            bound,
            weight,
        }
    }

    /// `PeakRate(channel) <= bound` bits/clock.
    pub fn max_peak_rate(channel: ChannelId, bound: f64, weight: f64) -> Self {
        Self {
            kind: ConstraintKind::MaxPeakRate(channel),
            bound,
            weight,
        }
    }

    /// The (non-negative) violation of this constraint under the given
    /// width metrics. Zero when satisfied.
    pub fn violation(&self, metrics: &WidthMetrics) -> f64 {
        let (actual, is_min) = match self.kind {
            ConstraintKind::MinBusWidth => (f64::from(metrics.width), true),
            ConstraintKind::MaxBusWidth => (f64::from(metrics.width), false),
            ConstraintKind::MinAveRate(ch) => (metrics.ave_rate(ch), true),
            ConstraintKind::MaxAveRate(ch) => (metrics.ave_rate(ch), false),
            ConstraintKind::MinPeakRate(ch) => (metrics.peak_rate(ch), true),
            ConstraintKind::MaxPeakRate(ch) => (metrics.peak_rate(ch), false),
        };
        if is_min {
            (self.bound - actual).max(0.0)
        } else {
            (actual - self.bound).max(0.0)
        }
    }

    /// This constraint's contribution to the cost: `weight * violation²`.
    pub fn cost(&self, metrics: &WidthMetrics) -> f64 {
        let v = self.violation(metrics);
        self.weight * v * v
    }
}

/// The per-width quantities the cost function consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WidthMetrics {
    /// The candidate bus width in pins.
    pub width: u32,
    /// Bus rate at this width (bits/clock).
    pub bus_rate: f64,
    /// Per-channel average rates (bits/clock).
    pub ave_rates: HashMap<ChannelId, f64>,
    /// Per-channel peak rates (bits/clock).
    pub peak_rates: HashMap<ChannelId, f64>,
}

impl WidthMetrics {
    /// Average rate of a channel (0.0 if unknown).
    pub fn ave_rate(&self, channel: ChannelId) -> f64 {
        self.ave_rates.get(&channel).copied().unwrap_or(0.0)
    }

    /// Peak rate of a channel (0.0 if unknown).
    pub fn peak_rate(&self, channel: ChannelId) -> f64 {
        self.peak_rates.get(&channel).copied().unwrap_or(0.0)
    }

    /// Sum of all channel average rates (the right side of Eq. 1).
    pub fn sum_ave_rates(&self) -> f64 {
        self.ave_rates.values().sum()
    }
}

/// Total cost of a width under a constraint set.
pub(crate) fn total_cost(constraints: &[Constraint], metrics: &WidthMetrics) -> f64 {
    constraints.iter().map(|c| c.cost(metrics)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(width: u32, peak: f64) -> WidthMetrics {
        let ch = ChannelId::new(0);
        WidthMetrics {
            width,
            bus_rate: f64::from(width) / 2.0,
            ave_rates: HashMap::from([(ch, 1.0)]),
            peak_rates: HashMap::from([(ch, peak)]),
        }
    }

    #[test]
    fn satisfied_constraints_cost_nothing() {
        let m = metrics(20, 10.0);
        let c = Constraint::min_peak_rate(ChannelId::new(0), 10.0, 10.0);
        assert_eq!(c.violation(&m), 0.0);
        assert_eq!(c.cost(&m), 0.0);
    }

    #[test]
    fn violations_are_squared_and_weighted() {
        let m = metrics(16, 8.0);
        // peak 8 < bound 10: violation 2, cost 10 * 4 = 40.
        let c = Constraint::min_peak_rate(ChannelId::new(0), 10.0, 10.0);
        assert_eq!(c.violation(&m), 2.0);
        assert_eq!(c.cost(&m), 40.0);
    }

    #[test]
    fn max_width_penalises_excess() {
        let m = metrics(20, 10.0);
        let c = Constraint::max_bus_width(16, 2.0);
        assert_eq!(c.violation(&m), 4.0);
        assert_eq!(c.cost(&m), 32.0);
    }

    #[test]
    fn min_width_penalises_deficit() {
        let m = metrics(10, 5.0);
        let c = Constraint::min_bus_width(14, 1.0);
        assert_eq!(c.cost(&m), 16.0);
    }

    #[test]
    fn ave_rate_constraints() {
        let m = metrics(8, 4.0);
        assert_eq!(
            Constraint::min_ave_rate(ChannelId::new(0), 3.0, 1.0).cost(&m),
            4.0
        );
        assert_eq!(
            Constraint::max_ave_rate(ChannelId::new(0), 0.5, 1.0).cost(&m),
            0.25
        );
    }

    #[test]
    fn unknown_channel_rate_reads_as_zero() {
        let m = metrics(8, 4.0);
        assert_eq!(m.ave_rate(ChannelId::new(9)), 0.0);
        assert_eq!(m.peak_rate(ChannelId::new(9)), 0.0);
    }

    #[test]
    fn total_cost_sums_constraints() {
        let m = metrics(16, 8.0);
        let cs = [
            Constraint::min_peak_rate(ChannelId::new(0), 10.0, 2.0), // 2*4 = 8
            Constraint::max_bus_width(14, 1.0),                      // 1*4 = 4
        ];
        assert_eq!(total_cost(&cs, &m), 12.0);
    }

    #[test]
    fn sum_ave_rates_adds_channels() {
        let mut m = metrics(8, 4.0);
        m.ave_rates.insert(ChannelId::new(1), 2.5);
        assert_eq!(m.sum_ave_rates(), 3.5);
    }
}

//! Error type for bus and protocol generation.

use std::error::Error;
use std::fmt;

use ifsyn_spec::{ChannelId, SpecError};

use crate::busgen::Exploration;

/// Errors produced by interface synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No channels were given to implement.
    EmptyChannelGroup,
    /// A channel id does not exist in the system.
    UnknownChannel {
        /// The offending id.
        id: ChannelId,
    },
    /// No bus width in the explored range satisfies Eq. 1.
    ///
    /// Carries the full exploration so the caller can see how far each
    /// width fell short — and hand the group to
    /// [`crate::BusGenerator::generate_with_split`].
    NoFeasibleWidth {
        /// Per-width feasibility data.
        exploration: Exploration,
    },
    /// The requested protocol cannot implement this channel group.
    UnsupportedProtocol {
        /// Human-readable reason (e.g. half-handshake with read channels).
        reason: String,
    },
    /// The bus design itself is malformed (zero width, zero-bit channel).
    InvalidDesign {
        /// Human-readable reason.
        reason: String,
    },
    /// The refined specification failed validation (generator bug guard).
    Refinement {
        /// The underlying message.
        message: String,
    },
    /// An estimation step failed.
    Estimate {
        /// The underlying message.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyChannelGroup => {
                write!(f, "no channels given to implement as a bus")
            }
            CoreError::UnknownChannel { id } => {
                write!(f, "channel {id} does not exist in the system")
            }
            CoreError::NoFeasibleWidth { exploration } => write!(
                f,
                "no feasible bus width in 1..={}; consider splitting the channel group",
                exploration.rows.last().map(|r| r.width).unwrap_or(0)
            ),
            CoreError::UnsupportedProtocol { reason } => {
                write!(f, "unsupported protocol for this channel group: {reason}")
            }
            CoreError::InvalidDesign { reason } => {
                write!(f, "invalid bus design: {reason}")
            }
            CoreError::Refinement { message } => {
                write!(f, "refinement produced an invalid system: {message}")
            }
            CoreError::Estimate { message } => write!(f, "estimation failed: {message}"),
        }
    }
}

impl Error for CoreError {}

impl From<SpecError> for CoreError {
    fn from(e: SpecError) -> Self {
        CoreError::Refinement {
            message: e.to_string(),
        }
    }
}

impl From<ifsyn_estimate::EstimateError> for CoreError {
    fn from(e: ifsyn_estimate::EstimateError) -> Self {
        CoreError::Estimate {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(CoreError::EmptyChannelGroup
            .to_string()
            .contains("no channels"));
        let e = CoreError::UnknownChannel {
            id: ChannelId::new(5),
        };
        assert!(e.to_string().contains("ch5"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}

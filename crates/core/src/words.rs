//! Message-to-bus-word layout planning.
//!
//! A channel access moves one *message* of `addr_bits + data_bits` bits
//! (address in the low positions). Protocol generation slices the message
//! into `ceil(message_bits / width)` bus words; for read channels the
//! words split by direction — address words flow requester→server, data
//! words flow back, and the word straddling the address/data boundary is
//! served in both directions within one handshake (requester drives the
//! address bits, the server answers with the data bits on the same
//! lines, exactly like a multiplexed-bus turnaround).
//!
//! This single packing rule makes the word count equal to
//! [`BusTiming::words`] for *every* direction — which is what makes the
//! paper's Fig. 7 curves flatten only past 23 pins (16 data + 7 address)
//! for both the writing and the reading process.
//!
//! [`BusTiming::words`]: ifsyn_estimate::BusTiming::words

use ifsyn_spec::{Channel, ChannelDirection};

/// Transfer direction of one bus word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordDir {
    /// Requester drives the word (write data, or read address).
    Request,
    /// Server drives the word (read data).
    Response,
    /// Requester drives the low (address) part, server answers with the
    /// high (data) part within the same handshake.
    Mixed,
}

/// One bus word of a message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordSpec {
    /// Word index within the message (0 first).
    pub index: u32,
    /// Lowest message bit carried by this word.
    pub msg_lo: u32,
    /// Highest message bit carried by this word (inclusive).
    pub msg_hi: u32,
    /// Direction of the word.
    pub dir: WordDir,
}

impl WordSpec {
    /// Number of message bits in this word.
    pub fn bits(&self) -> u32 {
        self.msg_hi - self.msg_lo + 1
    }
}

/// The complete word layout for one channel on one bus width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordPlan {
    /// Bus width in bits.
    pub width: u32,
    /// Address bits of the message (low positions).
    pub addr_bits: u32,
    /// Data bits of the message (high positions).
    pub data_bits: u32,
    /// The words, in transfer order.
    pub words: Vec<WordSpec>,
}

impl WordPlan {
    /// Plans the word layout for `channel` on a `width`-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the channel has a zero-bit message.
    pub fn for_channel(channel: &Channel, width: u32) -> Self {
        assert!(width > 0, "bus width must be positive");
        let a = channel.addr_bits;
        let d = channel.data_bits;
        let m = a + d;
        assert!(m > 0, "channel `{}` has a zero-bit message", channel.name);
        let n = m.div_ceil(width);
        let words = (0..n)
            .map(|i| {
                let msg_lo = i * width;
                let msg_hi = (msg_lo + width - 1).min(m - 1);
                let dir = match channel.direction {
                    ChannelDirection::Write => WordDir::Request,
                    ChannelDirection::Read => {
                        if msg_hi < a {
                            WordDir::Request
                        } else if msg_lo >= a {
                            WordDir::Response
                        } else {
                            WordDir::Mixed
                        }
                    }
                };
                WordSpec {
                    index: i,
                    msg_lo,
                    msg_hi,
                    dir,
                }
            })
            .collect();
        Self {
            width,
            addr_bits: a,
            data_bits: d,
            words,
        }
    }

    /// Plans a *direction-aligned* word layout: request words carry only
    /// address bits, response words only data bits, so no word straddles
    /// the boundary ([`WordDir::Mixed`] never appears).
    ///
    /// The integrity-protected protocol uses this layout for read
    /// channels so each direction can carry its own trailing check word;
    /// a message whose address does not fill a whole word costs up to
    /// one extra bus word compared to [`WordPlan::for_channel`]. Write
    /// channels and address-free reads plan identically either way.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the channel has a zero-bit message.
    pub fn aligned_for_channel(channel: &Channel, width: u32) -> Self {
        assert!(width > 0, "bus width must be positive");
        let a = channel.addr_bits;
        let d = channel.data_bits;
        let m = a + d;
        assert!(m > 0, "channel `{}` has a zero-bit message", channel.name);
        if channel.direction == ChannelDirection::Write || a == 0 {
            return Self::for_channel(channel, width);
        }
        let mut words = Vec::new();
        let mut index = 0u32;
        let mut push_run = |words: &mut Vec<WordSpec>, lo: u32, hi: u32, dir: WordDir| {
            let mut msg_lo = lo;
            while msg_lo <= hi {
                let msg_hi = (msg_lo + width - 1).min(hi);
                words.push(WordSpec {
                    index,
                    msg_lo,
                    msg_hi,
                    dir,
                });
                index += 1;
                msg_lo = msg_hi + 1;
            }
        };
        push_run(&mut words, 0, a - 1, WordDir::Request);
        push_run(&mut words, a, m - 1, WordDir::Response);
        Self {
            width,
            addr_bits: a,
            data_bits: d,
            words,
        }
    }

    /// Total message bits.
    pub fn message_bits(&self) -> u32 {
        self.addr_bits + self.data_bits
    }

    /// Number of bus words.
    pub fn word_count(&self) -> u32 {
        self.words.len() as u32
    }

    /// Index of the word in which the last address bit travels (`None`
    /// for scalar channels with no address).
    pub fn addr_complete_word(&self) -> Option<u32> {
        if self.addr_bits == 0 {
            return None;
        }
        Some((self.addr_bits - 1) / self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::{BehaviorId, VarId};

    fn channel(direction: ChannelDirection, data: u32, addr: u32) -> Channel {
        Channel {
            name: "ch".into(),
            accessor: BehaviorId::new(0),
            variable: VarId::new(0),
            direction,
            data_bits: data,
            addr_bits: addr,
            accesses: 1,
        }
    }

    #[test]
    fn write_channel_words_are_all_requests() {
        let ch = channel(ChannelDirection::Write, 16, 7);
        let plan = WordPlan::for_channel(&ch, 8);
        assert_eq!(plan.word_count(), 3); // ceil(23/8)
        assert!(plan.words.iter().all(|w| w.dir == WordDir::Request));
        assert_eq!(plan.words[2].msg_hi, 22);
        assert_eq!(plan.words[2].bits(), 7);
    }

    #[test]
    fn read_channel_splits_by_address_boundary() {
        // 7 addr + 16 data on width 8: word0 = bits 0..7 (addr 0..6 +
        // data bit 7) -> Mixed; word1, word2 -> Response.
        let ch = channel(ChannelDirection::Read, 16, 7);
        let plan = WordPlan::for_channel(&ch, 8);
        assert_eq!(plan.word_count(), 3);
        assert_eq!(plan.words[0].dir, WordDir::Mixed);
        assert_eq!(plan.words[1].dir, WordDir::Response);
        assert_eq!(plan.words[2].dir, WordDir::Response);
    }

    #[test]
    fn narrow_read_has_pure_address_words() {
        let ch = channel(ChannelDirection::Read, 16, 7);
        let plan = WordPlan::for_channel(&ch, 4);
        // words: 0..3 addr(0-3), 4..6+7 mixed(4-7), rest response.
        assert_eq!(plan.words[0].dir, WordDir::Request);
        assert_eq!(plan.words[1].dir, WordDir::Mixed);
        assert!(plan.words[2..].iter().all(|w| w.dir == WordDir::Response));
        assert_eq!(plan.word_count(), 6); // ceil(23/4)
    }

    #[test]
    fn exact_boundary_has_no_mixed_word() {
        // addr 8, data 16, width 8: word0 pure addr, words 1-2 pure data.
        let ch = channel(ChannelDirection::Read, 16, 8);
        let plan = WordPlan::for_channel(&ch, 8);
        assert_eq!(plan.words[0].dir, WordDir::Request);
        assert_eq!(plan.words[1].dir, WordDir::Response);
        assert_eq!(plan.words[2].dir, WordDir::Response);
    }

    #[test]
    fn scalar_read_is_all_response() {
        let ch = channel(ChannelDirection::Read, 16, 0);
        let plan = WordPlan::for_channel(&ch, 8);
        assert!(plan.words.iter().all(|w| w.dir == WordDir::Response));
        assert_eq!(plan.addr_complete_word(), None);
    }

    #[test]
    fn wide_bus_gives_single_word() {
        let ch = channel(ChannelDirection::Read, 16, 7);
        let plan = WordPlan::for_channel(&ch, 23);
        assert_eq!(plan.word_count(), 1);
        assert_eq!(plan.words[0].dir, WordDir::Mixed);
        let plan = WordPlan::for_channel(&ch, 64);
        assert_eq!(plan.word_count(), 1);
    }

    #[test]
    fn word_count_matches_bus_timing() {
        use ifsyn_estimate::BusTiming;
        for dir in [ChannelDirection::Read, ChannelDirection::Write] {
            for (d, a) in [(16, 7), (16, 0), (8, 6), (1, 1), (32, 11)] {
                let ch = channel(dir, d, a);
                for w in 1..=40 {
                    let plan = WordPlan::for_channel(&ch, w);
                    let timing = BusTiming::new(w, 2);
                    assert_eq!(
                        plan.word_count(),
                        timing.words(ch.message_bits()),
                        "dir {dir:?} d{d} a{a} w{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn words_cover_message_exactly_once() {
        let ch = channel(ChannelDirection::Read, 16, 7);
        for w in 1..=30 {
            let plan = WordPlan::for_channel(&ch, w);
            let mut covered = [false; 23];
            for word in &plan.words {
                for bit in word.msg_lo..=word.msg_hi {
                    assert!(!covered[bit as usize], "bit {bit} covered twice");
                    covered[bit as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "width {w} left bits uncovered");
        }
    }

    #[test]
    fn aligned_read_plan_has_no_mixed_words() {
        let ch = channel(ChannelDirection::Read, 16, 7);
        for w in 1..=30 {
            let plan = WordPlan::aligned_for_channel(&ch, w);
            assert!(
                plan.words.iter().all(|word| word.dir != WordDir::Mixed),
                "width {w} produced a mixed word"
            );
            let mut covered = [false; 23];
            for word in &plan.words {
                for bit in word.msg_lo..=word.msg_hi {
                    assert!(!covered[bit as usize], "bit {bit} covered twice");
                    covered[bit as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "width {w} left bits uncovered");
        }
    }

    #[test]
    fn aligned_read_plan_splits_at_address_boundary() {
        // 7 addr + 16 data on width 16: one pure address word, one pure
        // data word — where the straddling plan needs a Mixed turnaround.
        let ch = channel(ChannelDirection::Read, 16, 7);
        let plan = WordPlan::aligned_for_channel(&ch, 16);
        assert_eq!(plan.word_count(), 2);
        assert_eq!(plan.words[0].dir, WordDir::Request);
        assert_eq!((plan.words[0].msg_lo, plan.words[0].msg_hi), (0, 6));
        assert_eq!(plan.words[1].dir, WordDir::Response);
        assert_eq!((plan.words[1].msg_lo, plan.words[1].msg_hi), (7, 22));
    }

    #[test]
    fn aligned_plan_matches_plain_for_writes_and_scalar_reads() {
        let wr = channel(ChannelDirection::Write, 16, 7);
        let rd = channel(ChannelDirection::Read, 16, 0);
        for w in 1..=24 {
            assert_eq!(
                WordPlan::aligned_for_channel(&wr, w),
                WordPlan::for_channel(&wr, w)
            );
            assert_eq!(
                WordPlan::aligned_for_channel(&rd, w),
                WordPlan::for_channel(&rd, w)
            );
        }
    }

    #[test]
    fn addr_complete_word_is_where_last_addr_bit_travels() {
        let ch = channel(ChannelDirection::Read, 16, 7);
        assert_eq!(WordPlan::for_channel(&ch, 4).addr_complete_word(), Some(1));
        assert_eq!(WordPlan::for_channel(&ch, 8).addr_complete_word(), Some(0));
        assert_eq!(WordPlan::for_channel(&ch, 7).addr_complete_word(), Some(0));
        assert_eq!(WordPlan::for_channel(&ch, 2).addr_complete_word(), Some(3));
    }
}

//! Bus generation: the five-step width-selection algorithm (paper §3).

use std::collections::HashMap;

use ifsyn_estimate::{ChannelRates, ChannelTimings, RateModel};
use ifsyn_spec::{ChannelId, System};

use crate::constraint::{total_cost, Constraint, WidthMetrics};
use crate::error::CoreError;
use crate::protocol::ProtocolKind;

/// One explored width: the data behind the feasibility decision.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthRow {
    /// Candidate width in pins.
    pub width: u32,
    /// Bus rate at this width (Eq. 2), bits/clock.
    pub bus_rate: f64,
    /// Sum of channel average rates at this width, bits/clock.
    pub sum_ave_rates: f64,
    /// Eq. 1: `bus_rate >= sum_ave_rates`.
    pub feasible: bool,
    /// Cost under the constraint set (computed for feasible widths).
    pub cost: Option<f64>,
    /// The full metrics used for the cost (kept for reporting).
    pub metrics: WidthMetrics,
}

/// The complete width exploration (paper §3 steps 1–4 for every width).
///
/// Exposed on both success ([`BusDesign::exploration`]) and failure
/// ([`CoreError::NoFeasibleWidth`]) so callers can plot rate-vs-width
/// curves or diagnose infeasibility without re-running the algorithm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exploration {
    /// One row per candidate width, in increasing width order.
    pub rows: Vec<WidthRow>,
}

impl Exploration {
    /// The feasible rows only.
    pub fn feasible(&self) -> impl Iterator<Item = &WidthRow> {
        self.rows.iter().filter(|r| r.feasible)
    }

    /// The smallest feasible width, if any.
    pub fn min_feasible_width(&self) -> Option<u32> {
        self.feasible().map(|r| r.width).min()
    }

    /// Renders the exploration as CSV (`width,bus_rate,sum_ave_rates,
    /// feasible,cost`), ready for external plotting of rate-vs-width
    /// curves like the paper's Fig. 7 companion data.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("width,bus_rate,sum_ave_rates,feasible,cost\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                row.width,
                row.bus_rate,
                row.sum_ave_rates,
                row.feasible,
                row.cost.map(|c| c.to_string()).unwrap_or_default()
            ));
        }
        out
    }
}

/// A selected bus implementation for a channel group.
#[derive(Debug, Clone, PartialEq)]
pub struct BusDesign {
    /// The channels implemented on this bus.
    pub channels: Vec<ChannelId>,
    /// Selected data-line count (pins).
    pub width: u32,
    /// The protocol the width was priced with.
    pub protocol: ProtocolKind,
    /// Bus rate at the selected width, bits/clock.
    pub bus_rate: f64,
    /// Sum of channel average rates at the selected width, bits/clock.
    pub sum_ave_rates: f64,
    /// Cost of the selected width.
    pub cost: f64,
    /// Full per-width exploration data.
    pub exploration: Exploration,
}

impl BusDesign {
    /// Creates a design with a *designer-specified* width, bypassing the
    /// width-selection algorithm ("the number of data lines required can
    /// be determined by the bus-generation algorithm **or** they can be
    /// specified by the system designer", paper §4).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_width(channels: Vec<ChannelId>, width: u32, protocol: ProtocolKind) -> Self {
        assert!(width > 0, "bus width must be positive");
        Self {
            channels,
            width,
            protocol,
            bus_rate: protocol.timing(width).bus_rate(),
            sum_ave_rates: 0.0,
            cost: 0.0,
            exploration: Exploration::default(),
        }
    }

    /// ID lines needed to address the channels: `ceil(log2(N))`.
    pub fn id_bits(&self) -> u32 {
        let n = self.channels.len() as u32;
        if n <= 1 {
            0
        } else {
            32 - (n - 1).leading_zeros()
        }
    }

    /// Control lines of the protocol.
    pub fn control_lines(&self) -> u32 {
        self.protocol.control_lines()
    }

    /// Total wires of the bus: data + control + ID.
    pub fn total_wires(&self) -> u32 {
        self.width + self.control_lines() + self.id_bits()
    }

    /// Wires a dedicated (unmerged) implementation of the channels would
    /// need: the sum of per-channel message widths.
    pub fn dedicated_wires(&self, system: &System) -> u32 {
        self.channels
            .iter()
            .map(|&c| system.channel(c).dedicated_wires())
            .sum()
    }

    /// Interconnect reduction of the shared *data lines* versus dedicated
    /// per-channel wires, as a fraction in `[0, 1]` — the paper's Fig. 8
    /// metric ("reduction in the number of data lines").
    pub fn interconnect_reduction(&self, system: &System) -> f64 {
        let dedicated = self.dedicated_wires(system);
        if dedicated == 0 {
            return 0.0;
        }
        1.0 - f64::from(self.width) / f64::from(dedicated)
    }
}

/// The bus generation algorithm (paper §3).
///
/// For each width in `1..=max(message_bits)`:
///
/// 1. compute the bus rate (Eq. 2: `width / cycles_per_word`);
/// 2. estimate every channel's average rate *at that width* (narrower
///    buses stretch the accessing process, lowering its rates);
/// 3. keep the width if `bus_rate >= Σ ave_rates` (Eq. 1);
/// 4. price feasible widths with the constraint cost function;
/// 5. select the cheapest (ties broken toward fewer pins).
#[derive(Debug, Clone, Default)]
pub struct BusGenerator {
    protocol: ProtocolKind,
    constraints: Vec<Constraint>,
    rates: RateModel,
    width_range: Option<(u32, u32)>,
}

impl BusGenerator {
    /// Creates a generator with the paper's defaults: full handshake, no
    /// constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style setter for the protocol used to price widths.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Adds one designer constraint.
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds several constraints at once.
    pub fn constraints<I: IntoIterator<Item = Constraint>>(mut self, iter: I) -> Self {
        self.constraints.extend(iter);
        self
    }

    /// Overrides the explored width range (default `1..=max message`).
    pub fn with_width_range(mut self, min: u32, max: u32) -> Self {
        self.width_range = Some((min.max(1), max.max(1)));
        self
    }

    /// Replaces the rate estimator (e.g. to share a custom cost model).
    /// The estimator is used as-is, statically — see
    /// [`BusGenerator::with_rate_model`] for calibrated rates.
    pub fn with_rates(mut self, rates: ChannelRates) -> Self {
        self.rates = RateModel::from_static(rates);
        self
    }

    /// Replaces the whole rate model — this is how the trace-analytics
    /// calibration loop re-runs width selection with measured per-channel
    /// correction factors ([`RateModel::Calibrated`]).
    pub fn with_rate_model(mut self, rates: RateModel) -> Self {
        self.rates = rates;
        self
    }

    /// The rate model currently installed.
    pub fn rate_model(&self) -> &RateModel {
        &self.rates
    }

    /// The constraints currently installed.
    pub fn installed_constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Runs the algorithm for `channels` of `system`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyChannelGroup`] for an empty group;
    /// * [`CoreError::UnknownChannel`] for a dangling id;
    /// * [`CoreError::NoFeasibleWidth`] when Eq. 1 fails at every width —
    ///   the error carries the exploration, and
    ///   [`crate::BusGenerator::generate_with_split`] can split the group.
    pub fn generate(
        &self,
        system: &System,
        channels: &[ChannelId],
    ) -> Result<BusDesign, CoreError> {
        let exploration = self.explore(system, channels)?;
        let best = exploration
            .rows
            .iter()
            .filter(|r| r.feasible)
            .min_by(|a, b| {
                let ca = a.cost.unwrap_or(f64::INFINITY);
                let cb = b.cost.unwrap_or(f64::INFINITY);
                ca.partial_cmp(&cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.width.cmp(&b.width))
            })
            .cloned();
        match best {
            Some(row) => Ok(BusDesign {
                channels: channels.to_vec(),
                width: row.width,
                protocol: self.protocol,
                bus_rate: row.bus_rate,
                sum_ave_rates: row.sum_ave_rates,
                cost: row.cost.unwrap_or(0.0),
                exploration,
            }),
            None => Err(CoreError::NoFeasibleWidth { exploration }),
        }
    }

    /// Runs steps 1–4 for every candidate width without selecting.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`BusGenerator::generate`], except that
    /// an infeasible exploration is returned, not an error.
    pub fn explore(
        &self,
        system: &System,
        channels: &[ChannelId],
    ) -> Result<Exploration, CoreError> {
        if channels.is_empty() {
            return Err(CoreError::EmptyChannelGroup);
        }
        for &ch in channels {
            if ch.index() >= system.channels.len() {
                return Err(CoreError::UnknownChannel { id: ch });
            }
        }
        let max_message = channels
            .iter()
            .map(|&c| system.channel(c).message_bits())
            .max()
            .unwrap_or(1)
            .max(1);
        let (lo, hi) = self.width_range.unwrap_or((1, max_message));
        let mut rows = Vec::with_capacity((hi - lo + 1) as usize);
        for width in lo..=hi {
            rows.push(self.evaluate_width(system, channels, width)?);
        }
        Ok(Exploration { rows })
    }

    /// Steps 2–4 for one candidate width.
    fn evaluate_width(
        &self,
        system: &System,
        channels: &[ChannelId],
        width: u32,
    ) -> Result<WidthRow, CoreError> {
        let timing = self.protocol.timing(width);
        let timings = ChannelTimings::uniform(channels, timing);
        let mut ave_rates = HashMap::new();
        let mut peak_rates = HashMap::new();
        for &ch in channels {
            ave_rates.insert(ch, self.rates.average_rate(system, ch, &timings)?);
            peak_rates.insert(ch, self.rates.peak_rate(system, ch, timing)?);
        }
        let metrics = WidthMetrics {
            width,
            bus_rate: timing.bus_rate(),
            ave_rates,
            peak_rates,
        };
        let sum = metrics.sum_ave_rates();
        let feasible = metrics.bus_rate >= sum;
        let cost = feasible.then(|| total_cost(&self.constraints, &metrics));
        Ok(WidthRow {
            width,
            bus_rate: metrics.bus_rate,
            sum_ave_rates: sum,
            feasible,
            cost,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, Stmt, Ty};

    /// Two FLC-like channels: 128 accesses of (16 data + 7 addr) bits
    /// with per-access compute padding.
    fn flc_like() -> (System, ChannelId, ChannelId) {
        let mut sys = System::new("flc");
        let chip1 = sys.add_module("chip1");
        let chip2 = sys.add_module("chip2");
        let eval = sys.add_behavior("EVAL_R3", chip1);
        let conv = sys.add_behavior("CONV_R2", chip1);
        let store = sys.add_behavior("store", chip2);
        let trru0 = sys.add_variable("trru0", Ty::array(Ty::Int(16), 128), store);
        let trru2 = sys.add_variable("trru2", Ty::array(Ty::Int(16), 128), store);
        let i1 = sys.add_variable("i1", Ty::Int(16), eval);
        let i2 = sys.add_variable("i2", Ty::Int(16), conv);
        let tmp = sys.add_variable("tmp", Ty::Int(16), conv);
        let ch1 = sys.add_channel(Channel {
            name: "ch1".into(),
            accessor: eval,
            variable: trru0,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: 128,
        });
        let ch2 = sys.add_channel(Channel {
            name: "ch2".into(),
            accessor: conv,
            variable: trru2,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 7,
            accesses: 128,
        });
        sys.behavior_mut(eval).body = vec![for_loop(
            var(i1),
            int_const(0, 16),
            int_const(127, 16),
            vec![
                Stmt::compute(6, "evaluate rule"),
                send_at(ch1, load(var(i1)), load(var(i1))),
            ],
        )];
        sys.behavior_mut(conv).body = vec![for_loop(
            var(i2),
            int_const(0, 16),
            int_const(127, 16),
            vec![
                receive_at(ch2, load(var(i2)), var(tmp)),
                Stmt::compute(4, "convolve"),
            ],
        )];
        (sys, ch1, ch2)
    }

    #[test]
    fn unconstrained_generation_picks_smallest_feasible_width() {
        let (sys, ch1, ch2) = flc_like();
        let design = BusGenerator::new().generate(&sys, &[ch1, ch2]).unwrap();
        let min = design.exploration.min_feasible_width().unwrap();
        assert_eq!(design.width, min);
        assert!(design.bus_rate >= design.sum_ave_rates);
    }

    #[test]
    fn feasibility_is_monotone_in_width() {
        // Once feasible, wider buses stay feasible: the bus rate grows
        // linearly while average rates saturate.
        let (sys, ch1, ch2) = flc_like();
        let expl = BusGenerator::new().explore(&sys, &[ch1, ch2]).unwrap();
        let mut seen_feasible = false;
        for row in &expl.rows {
            if seen_feasible {
                assert!(row.feasible, "width {} regressed to infeasible", row.width);
            }
            seen_feasible |= row.feasible;
        }
        assert!(seen_feasible, "no feasible width at all");
    }

    #[test]
    fn peak_rate_constraint_pushes_width_up_to_twenty() {
        // Paper Fig. 8 design A: MinPeakRate(ch2) = 10 bits/clock forces
        // width/2 >= 10, i.e. width 20, reducing interconnect by ~56%.
        let (sys, ch1, ch2) = flc_like();
        let design = BusGenerator::new()
            .constraint(Constraint::min_peak_rate(ch2, 10.0, 10.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert_eq!(design.width, 20);
        let reduction = design.interconnect_reduction(&sys);
        assert!((reduction - (1.0 - 20.0 / 46.0)).abs() < 1e-9);
    }

    #[test]
    fn width_range_is_one_to_max_message() {
        let (sys, ch1, ch2) = flc_like();
        let expl = BusGenerator::new().explore(&sys, &[ch1, ch2]).unwrap();
        assert_eq!(expl.rows.first().unwrap().width, 1);
        assert_eq!(expl.rows.last().unwrap().width, 23);
    }

    #[test]
    fn no_feasible_width_reports_exploration() {
        // Channels with zero compute padding: every access is pure
        // transfer, so sum of rates ~ message/cycles exceeds bus rate at
        // every width for two saturating channels.
        let mut sys = System::new("hot");
        let m1 = sys.add_module("m1");
        let m2 = sys.add_module("m2");
        let store = sys.add_behavior("store", m2);
        let mut chans = Vec::new();
        for k in 0..3 {
            let b = sys.add_behavior(format!("P{k}"), m1);
            let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 16), store);
            let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
            let ch = sys.add_channel(Channel {
                name: format!("ch{k}"),
                accessor: b,
                variable: v,
                direction: ChannelDirection::Write,
                data_bits: 16,
                addr_bits: 4,
                accesses: 16,
            });
            sys.behavior_mut(b).body = vec![for_loop(
                var(i),
                int_const(0, 16),
                int_const(15, 16),
                vec![send_at(ch, load(var(i)), load(var(i)))],
            )];
            chans.push(ch);
        }
        let err = BusGenerator::new().generate(&sys, &chans).unwrap_err();
        match err {
            CoreError::NoFeasibleWidth { exploration } => {
                assert!(!exploration.rows.is_empty());
                assert!(exploration.min_feasible_width().is_none());
            }
            other => panic!("expected NoFeasibleWidth, got {other}"),
        }
    }

    #[test]
    fn empty_group_is_rejected() {
        let (sys, _, _) = flc_like();
        assert!(matches!(
            BusGenerator::new().generate(&sys, &[]),
            Err(CoreError::EmptyChannelGroup)
        ));
    }

    #[test]
    fn unknown_channel_is_rejected() {
        let (sys, ch1, _) = flc_like();
        assert!(matches!(
            BusGenerator::new().generate(&sys, &[ch1, ChannelId::new(99)]),
            Err(CoreError::UnknownChannel { .. })
        ));
    }

    #[test]
    fn id_and_wire_accounting() {
        let (sys, ch1, ch2) = flc_like();
        let design = BusGenerator::new()
            .constraint(Constraint::min_bus_width(16, 1.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert_eq!(design.id_bits(), 1); // 2 channels
        assert_eq!(design.control_lines(), 2); // full handshake
        assert_eq!(design.total_wires(), design.width + 3);
        assert_eq!(design.dedicated_wires(&sys), 46);
    }

    #[test]
    fn max_width_constraint_pulls_selection_down() {
        let (sys, ch1, ch2) = flc_like();
        let free = BusGenerator::new()
            .constraint(Constraint::min_peak_rate(ch2, 10.0, 10.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        let constrained = BusGenerator::new()
            .constraint(Constraint::min_peak_rate(ch2, 10.0, 1.0))
            .constraint(Constraint::min_bus_width(14, 5.0))
            .constraint(Constraint::max_bus_width(16, 5.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert!(constrained.width < free.width);
        assert_eq!(constrained.width, 16);
    }

    #[test]
    fn min_ave_rate_constraint_pushes_width_up() {
        // Demanding a floor on ch1's *average* rate penalises narrow
        // widths (where transfer time stretches the process and the
        // rate drops), pushing the selection up without any peak-rate
        // or width constraints.
        let (sys, ch1, ch2) = flc_like();
        let free = BusGenerator::new().generate(&sys, &[ch1, ch2]).unwrap();
        let constrained = BusGenerator::new()
            .constraint(Constraint::min_ave_rate(ch1, 2.8, 10.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert!(
            constrained.width > free.width,
            "{} !> {}",
            constrained.width,
            free.width
        );
        let rate = constrained
            .exploration
            .rows
            .iter()
            .find(|r| r.width == constrained.width)
            .unwrap()
            .metrics
            .ave_rate(ch1);
        assert!(rate >= 2.8 - 1e-9, "selected width satisfies the floor");
    }

    #[test]
    fn max_ave_rate_constraint_pulls_width_down() {
        // A ceiling on ch1's average rate (e.g. the remote memory can
        // only absorb so much) penalises wide, fast buses.
        let (sys, ch1, ch2) = flc_like();
        let constrained = BusGenerator::new()
            .constraint(Constraint::max_ave_rate(ch1, 2.0, 10.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        let rate = constrained
            .exploration
            .rows
            .iter()
            .find(|r| r.width == constrained.width)
            .unwrap()
            .metrics
            .ave_rate(ch1);
        assert!(rate <= 2.0 + 1e-9, "rate {rate} exceeds the ceiling");
    }

    #[test]
    fn cost_tie_at_adjacent_widths_breaks_toward_fewer_pins() {
        // With a satisfied min-width constraint every width >= the bound
        // prices at exactly 0, so adjacent feasible widths tie on cost
        // and the selection must fall to the tie-break (fewer pins).
        let (sys, ch1, ch2) = flc_like();
        let design = BusGenerator::new()
            .constraint(Constraint::min_bus_width(12, 5.0))
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        let cost_at = |w: u32| {
            design
                .exploration
                .rows
                .iter()
                .find(|r| r.width == w)
                .and_then(|r| r.cost)
                .unwrap()
        };
        assert_eq!(cost_at(12), cost_at(13), "adjacent widths must tie");
        assert_eq!(design.width, 12, "tie broken toward fewer pins");
    }

    #[test]
    fn peak_rate_violation_cost_ranks_widths() {
        // Restrict exploration to widths where MinPeakRate(ch2)=10 is
        // violated everywhere (peak = width/2 < 10 for width < 20): the
        // cheapest violation — the widest bus in range — must win, and
        // the per-row costs must be the squared, weighted shortfalls.
        let (sys, ch1, ch2) = flc_like();
        let design = BusGenerator::new()
            .constraint(Constraint::min_peak_rate(ch2, 10.0, 10.0))
            .with_width_range(14, 18)
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert_eq!(design.width, 18);
        for row in &design.exploration.rows {
            let shortfall = 10.0 - f64::from(row.width) / 2.0;
            let expected = 10.0 * shortfall * shortfall;
            assert!(
                (row.cost.unwrap() - expected).abs() < 1e-9,
                "width {}: cost {:?} != {expected}",
                row.width,
                row.cost
            );
        }
    }

    #[test]
    fn calibrated_rates_shift_the_feasibility_frontier() {
        // Doubling every measured rate makes narrow widths infeasible
        // that static estimation accepted — the calibration loop's whole
        // point. The selected width must not decrease, and the scaled
        // sums must be exactly 2x the static ones.
        let (sys, ch1, ch2) = flc_like();
        let static_design = BusGenerator::new().generate(&sys, &[ch1, ch2]).unwrap();
        let scale = HashMap::from([(ch1, 2.0), (ch2, 2.0)]);
        let model = ifsyn_estimate::RateModel::calibrated(ChannelRates::new(), scale);
        let calibrated = BusGenerator::new()
            .with_rate_model(model)
            .generate(&sys, &[ch1, ch2])
            .unwrap();
        assert!(calibrated.width > static_design.width);
        let static_row = &static_design.exploration.rows[0];
        let cal_row = &calibrated.exploration.rows[0];
        assert!((cal_row.sum_ave_rates - 2.0 * static_row.sum_ave_rates).abs() < 1e-12);
    }

    #[test]
    fn exploration_exports_csv() {
        let (sys, ch1, ch2) = flc_like();
        let expl = BusGenerator::new().explore(&sys, &[ch1, ch2]).unwrap();
        let csv = expl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "width,bus_rate,sum_ave_rates,feasible,cost");
        assert_eq!(lines.len(), expl.rows.len() + 1);
        assert!(lines[1].starts_with("1,0.5,"));
    }

    #[test]
    fn explicit_width_range_is_respected() {
        let (sys, ch1, ch2) = flc_like();
        let expl = BusGenerator::new()
            .with_width_range(8, 12)
            .explore(&sys, &[ch1, ch2])
            .unwrap();
        assert_eq!(expl.rows.first().unwrap().width, 8);
        assert_eq!(expl.rows.last().unwrap().width, 12);
    }
}

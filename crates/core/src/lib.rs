//! # ifsyn-core — bus generation and protocol generation
//!
//! The primary contribution of Narayan & Gajski, *Protocol Generation for
//! Communication Channels* (DAC 1994): given a group of abstract
//! communication channels produced by system partitioning,
//!
//! 1. **Bus generation** ([`BusGenerator`]) explores candidate bus widths,
//!    keeps the *feasible* ones — bus rate at least the sum of channel
//!    average rates (Eq. 1) — and picks the width minimising a cost
//!    function over designer [`Constraint`]s (weighted sum of squared
//!    violations);
//! 2. **Protocol generation** ([`ProtocolGenerator`]) refines the system
//!    into a *simulatable* specification: bus wires (`START`, `DONE`,
//!    `ID`, `DATA`), per-channel send/receive procedures that slice
//!    messages into bus words, rewritten behaviors, and variable server
//!    processes (the paper's Fig. 4–5).
//!
//! Extensions the paper lists as future work are implemented too:
//! alternative protocols ([`ProtocolKind`]), bus splitting when no
//! feasible width exists ([`BusGenerator::generate_with_split`]), and bus
//! arbitration with measurable grant delay ([`Arbitration`]).
//!
//! ## Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ifsyn_core::{BusGenerator, Constraint};
//! use ifsyn_spec::{Channel, ChannelDirection, System, Ty};
//!
//! // A channel carrying 23-bit messages (16 data + 7 address).
//! let mut sys = System::new("flc");
//! let chip1 = sys.add_module("chip1");
//! let chip2 = sys.add_module("chip2");
//! let eval = sys.add_behavior("EVAL_R3", chip1);
//! let store = sys.add_behavior("store", chip2);
//! let trru0 = sys.add_variable("trru0", Ty::array(Ty::Int(16), 128), store);
//! let ch1 = sys.add_channel(Channel {
//!     name: "ch1".into(),
//!     accessor: eval,
//!     variable: trru0,
//!     direction: ChannelDirection::Write,
//!     data_bits: 16,
//!     addr_bits: 7,
//!     accesses: 128,
//! });
//!
//! let design = BusGenerator::new()
//!     .constraint(Constraint::min_peak_rate(ch1, 10.0, 10.0))
//!     .generate(&sys, &[ch1])?;
//! assert!(design.width >= 20); // peak rate w/2 >= 10 needs w >= 20
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbitration;
mod busgen;
mod constraint;
mod error;
mod protocol;
mod protogen;
mod split;
mod words;

pub use arbitration::{Arbitration, ArbitrationPolicy};
pub use busgen::{BusDesign, BusGenerator, Exploration, WidthRow};
pub use constraint::{Constraint, ConstraintKind, WidthMetrics};
pub use error::CoreError;
pub use protocol::ProtocolKind;
pub use protogen::{BusStructure, Hardening, MultiBusRefinement, ProtocolGenerator, RefinedSystem};
pub use split::SplitOutcome;
pub use words::{WordDir, WordPlan, WordSpec};

//! Bus arbitration (the paper's "effect of bus arbitration delays"
//! future-work item, implemented).
//!
//! When more than one behavior initiates transactions on the same bus,
//! an arbiter serialises them: each client gets a REQ/GNT wire pair, and
//! a generated arbiter process grants the bus according to a policy. The
//! grant can be given a nonzero cycle cost to model arbitration latency —
//! the ablation experiments sweep it.

use ifsyn_spec::dsl::*;
use ifsyn_spec::{BehaviorId, Expr, ModuleId, SignalId, Stmt, System, Ty};

/// Grant-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationPolicy {
    /// Lowest client index wins; can starve later clients under load.
    FixedPriority,
    /// Rotating priority starting after the last grantee; fair.
    RoundRobin,
}

/// Arbitration configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arbitration {
    /// Grant-selection policy.
    pub policy: ArbitrationPolicy,
    /// Cycles between request and grant (0 = combinational arbiter that
    /// adds no latency on an idle bus).
    pub grant_cycles: u32,
}

impl Arbitration {
    /// A fair, zero-latency arbiter.
    pub fn round_robin() -> Self {
        Self {
            policy: ArbitrationPolicy::RoundRobin,
            grant_cycles: 0,
        }
    }

    /// A fixed-priority, zero-latency arbiter.
    pub fn fixed_priority() -> Self {
        Self {
            policy: ArbitrationPolicy::FixedPriority,
            grant_cycles: 0,
        }
    }

    /// Builder-style setter for the grant latency.
    pub fn with_grant_cycles(mut self, grant_cycles: u32) -> Self {
        self.grant_cycles = grant_cycles;
        self
    }
}

impl Default for Arbitration {
    fn default() -> Self {
        Self::round_robin()
    }
}

/// The wires and process of an installed arbiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterWiring {
    /// Clients in grant-index order.
    pub clients: Vec<BehaviorId>,
    /// Per-client request lines (same order as `clients`).
    pub req: Vec<SignalId>,
    /// Per-client grant lines (same order as `clients`).
    pub gnt: Vec<SignalId>,
    /// The generated arbiter behavior.
    pub arbiter: BehaviorId,
}

impl ArbiterWiring {
    /// REQ/GNT pair of a client behavior, if it is wired.
    pub fn lines_of(&self, client: BehaviorId) -> Option<(SignalId, SignalId)> {
        self.clients
            .iter()
            .position(|&c| c == client)
            .map(|i| (self.req[i], self.gnt[i]))
    }
}

/// Installs REQ/GNT signals and an arbiter process into `system`.
pub(crate) fn install(
    system: &mut System,
    bus_name: &str,
    clients: &[BehaviorId],
    config: &Arbitration,
    module: ModuleId,
) -> ArbiterWiring {
    let mut req = Vec::with_capacity(clients.len());
    let mut gnt = Vec::with_capacity(clients.len());
    for &c in clients {
        let cname = system.behavior(c).name.clone();
        req.push(system.add_signal(format!("{bus_name}_REQ_{cname}"), Ty::Bit));
        gnt.push(system.add_signal(format!("{bus_name}_GNT_{cname}"), Ty::Bit));
    }
    let arbiter = system.add_behavior(format!("{bus_name}_arbiter"), module);
    system.behavior_mut(arbiter).repeats = true;

    let any_req = req
        .iter()
        .map(|&s| eq(signal(s), bit_const(true)))
        .reduce(or)
        .expect("at least one client");

    let body = match config.policy {
        ArbitrationPolicy::FixedPriority => {
            vec![
                wait_until(any_req),
                priority_chain(&req, &gnt, 0, config.grant_cycles, None),
            ]
        }
        ArbitrationPolicy::RoundRobin => {
            let last = system.add_variable(format!("{bus_name}_arb_last"), Ty::Int(8), arbiter);
            let n = clients.len();
            // Dispatch on the previous grantee: start the priority chain
            // one past it. The innermost else covers `last == n-1`, whose
            // rotation wraps to client 0.
            let mut dispatch = priority_chain(&req, &gnt, 0, config.grant_cycles, Some(last));
            for l in (0..n.saturating_sub(1)).rev() {
                // if last = l then chain starting at l+1.
                dispatch = if_else(
                    eq(load(var(last)), int_const(l as i64, 8)),
                    vec![priority_chain(
                        &req,
                        &gnt,
                        (l + 1) % n,
                        config.grant_cycles,
                        Some(last),
                    )],
                    vec![dispatch],
                );
            }
            vec![wait_until(any_req), dispatch]
        }
    };
    system.behavior_mut(arbiter).body = body;
    ArbiterWiring {
        clients: clients.to_vec(),
        req,
        gnt,
        arbiter,
    }
}

/// Builds the `if REQ_s ... elsif REQ_{s+1} ...` grant chain rotated to
/// start at client `start`.
fn priority_chain(
    req: &[SignalId],
    gnt: &[SignalId],
    start: usize,
    grant_cycles: u32,
    last_var: Option<ifsyn_spec::VarId>,
) -> Stmt {
    let n = req.len();
    let order: Vec<usize> = (0..n).map(|k| (start + k) % n).collect();
    let mut stmt: Option<Stmt> = None;
    for &i in order.iter().rev() {
        let grant = grant_body(req[i], gnt[i], i, grant_cycles, last_var);
        let cond = eq(signal(req[i]), bit_const(true));
        stmt = Some(match stmt {
            None => if_then(cond, grant),
            Some(tail) => if_else(cond, grant, vec![tail]),
        });
    }
    stmt.expect("at least one client")
}

/// GNT rise (optionally delayed), hold until REQ falls, GNT fall.
fn grant_body(
    req: SignalId,
    gnt: SignalId,
    index: usize,
    grant_cycles: u32,
    last_var: Option<ifsyn_spec::VarId>,
) -> Vec<Stmt> {
    let mut body = vec![
        drive_cost(gnt, bit_const(true), grant_cycles),
        wait_until(eq(signal(req), bit_const(false))),
        drive_cost(gnt, bit_const(false), 0),
    ];
    if let Some(last) = last_var {
        body.push(assign_cost(var(last), int_const(index as i64, 8), 0));
    }
    body
}

/// Client-side lock: statements executed before a bus transaction.
pub(crate) fn lock_stmts(req: SignalId, gnt: SignalId) -> Vec<Stmt> {
    vec![
        drive_cost(req, bit_const(true), 0),
        wait_until(eq(signal(gnt), bit_const(true))),
    ]
}

/// Client-side unlock: statements executed after a bus transaction.
pub(crate) fn unlock_stmts(req: SignalId, gnt: SignalId) -> Vec<Stmt> {
    vec![
        drive_cost(req, bit_const(false), 0),
        wait_until(eq(signal(gnt), bit_const(false))),
    ]
}

/// Expression: any request line high (used in tests).
#[allow(dead_code)]
pub(crate) fn any_request(req: &[SignalId]) -> Option<Expr> {
    req.iter()
        .map(|&s| eq(signal(s), bit_const(true)))
        .reduce(or)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig(n: usize, config: Arbitration) -> (System, ArbiterWiring) {
        let mut sys = System::new("arb");
        let m = sys.add_module("chip");
        let clients: Vec<BehaviorId> = (0..n)
            .map(|i| sys.add_behavior(format!("C{i}"), m))
            .collect();
        let wiring = install(&mut sys, "B", &clients, &config, m);
        (sys, wiring)
    }

    #[test]
    fn install_creates_wires_and_arbiter() {
        let (sys, w) = rig(3, Arbitration::round_robin());
        assert_eq!(w.req.len(), 3);
        assert_eq!(w.gnt.len(), 3);
        assert_eq!(sys.behavior(w.arbiter).name, "B_arbiter");
        assert!(sys.behavior(w.arbiter).repeats);
        assert!(sys.check().is_ok());
    }

    #[test]
    fn fixed_priority_system_is_valid() {
        let (sys, _) = rig(4, Arbitration::fixed_priority().with_grant_cycles(2));
        assert!(sys.check().is_ok());
    }

    #[test]
    fn single_client_round_robin_is_valid() {
        let (sys, _) = rig(1, Arbitration::round_robin());
        assert!(sys.check().is_ok());
    }

    #[test]
    fn lines_of_finds_client_pairs() {
        let (_, w) = rig(2, Arbitration::round_robin());
        let (r, g) = w.lines_of(w.clients[1]).unwrap();
        assert_eq!(r, w.req[1]);
        assert_eq!(g, w.gnt[1]);
        assert!(w.lines_of(BehaviorId::new(99)).is_none());
    }

    #[test]
    fn lock_unlock_shapes() {
        let (_, w) = rig(2, Arbitration::round_robin());
        let lock = lock_stmts(w.req[0], w.gnt[0]);
        assert_eq!(lock.len(), 2);
        let unlock = unlock_stmts(w.req[0], w.gnt[0]);
        assert_eq!(unlock.len(), 2);
    }
}

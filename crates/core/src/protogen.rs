//! Protocol generation: refining channel operations into bus behavior
//! (paper §4, steps 1–5).
//!
//! Given a [`BusDesign`], the generator produces a *new* [`System`] in
//! which:
//!
//! * the bus wires exist as signals (`B_START`, `B_DONE`, `B_ID`,
//!   `B_DATA`) — paper step 3's `HandShakeBus` record, flattened;
//! * every channel has a unique ID code — step 2;
//! * every channel has a client-side procedure (`Send_ch` / `Receive_ch`)
//!   that slices the message into bus words and runs the handshake per
//!   word, and a server-side procedure (`Serve_ch`) — step 3, Fig. 4;
//! * behaviors' abstract `ChannelSend`/`ChannelReceive` operations are
//!   replaced by calls to those procedures — step 4, Fig. 5 top;
//! * each remotely accessed variable gains a *variable process* that
//!   watches the bus and dispatches on the ID lines — step 5, Fig. 5
//!   bottom (`Xproc`, `MEMproc`).
//!
//! Statement costs are assigned so that a full-handshake word takes
//! exactly 2 clocks of simulated time (the paper's Eq. 2 delay model):
//! the two rising control edges cost one cycle each, and latches,
//! release edges and data setup are free (they overlap the control
//! edges in hardware).

use std::collections::HashMap;

use ifsyn_spec::dsl::*;
use ifsyn_spec::{
    Arg, BehaviorId, Channel, ChannelDirection, ChannelId, Expr, ParamMode, ProcId, Procedure,
    SignalId, Stmt, System, Ty, VarId,
};

use crate::arbitration::{self, ArbiterWiring, Arbitration};
use crate::busgen::BusDesign;
use crate::error::CoreError;
use crate::protocol::ProtocolKind;
use crate::words::{WordDir, WordPlan};

/// How the generator decides whether to install a bus arbiter.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArbitrationChoice {
    /// Install a zero-latency round-robin arbiter iff more than one
    /// behavior initiates transactions (the safe default; the paper's
    /// own examples leave multi-master buses unarbitrated).
    Auto,
    /// Never install an arbiter (paper-faithful; unsafe with concurrent
    /// initiators).
    Off,
    /// Always install the given arbiter.
    Forced(Arbitration),
}

/// Timeout hardening of the generated handshake (see
/// [`ProtocolGenerator::with_timeout`]).
///
/// Hardening applies to the full-handshake protocol, whose client blocks
/// on two `wait until` statements per word and therefore hangs forever on
/// a stuck or dropped control line. The other protocols either never
/// block (half-handshake, hardwired) or wait for a fixed count
/// (fixed-delay), so they pass through unhardened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hardening {
    /// Watchdog bound per `wait until`, in clock cycles: the hardened
    /// handshake emits `wait until ... for <watchdog>` instead of an
    /// unbounded wait.
    pub watchdog: u64,
    /// Bounded retry: how many times a word transfer is re-attempted
    /// (re-driving START) after a watchdog expiry before aborting.
    pub max_retries: u32,
}

impl Default for Hardening {
    fn default() -> Self {
        Self {
            watchdog: 16,
            max_retries: 3,
        }
    }
}

/// The structure of the generated bus: wires, ID codes, procedures and
/// server processes.
#[derive(Debug, Clone, PartialEq)]
pub struct BusStructure {
    /// Bus name prefix (default `B`).
    pub name: String,
    /// The bus design this structure implements.
    pub design: BusDesign,
    /// START control line (absent for hardwired channels).
    pub start: Option<SignalId>,
    /// DONE control line (full handshake only).
    pub done: Option<SignalId>,
    /// ID (mode) lines, absent when the bus carries a single channel.
    pub id: Option<SignalId>,
    /// Shared data lines (absent for hardwired channels).
    pub data: Option<SignalId>,
    /// Integrity NACK line (`<bus>_ERR`), present only for
    /// integrity-protected refinements. Rests at `'1'`; the server
    /// lowers it only while acknowledging a verified check word.
    pub err: Option<SignalId>,
    /// Per-channel ID codes, in `design.channels` order.
    pub id_codes: Vec<(ChannelId, u64)>,
    /// Per-channel client-side procedures.
    pub client_procs: Vec<(ChannelId, ProcId)>,
    /// Per-channel server-side procedures.
    pub serve_procs: Vec<(ChannelId, ProcId)>,
    /// Generated variable processes, one per served variable.
    pub var_processes: Vec<(VarId, BehaviorId)>,
    /// Installed arbiter, if any.
    pub arbiter: Option<ArbiterWiring>,
    /// Dedicated data signals (hardwired channels only).
    pub dedicated_data: Vec<(ChannelId, SignalId)>,
    /// Per-channel abort status flags (`<bus>_STAT_<channel>`), present
    /// only for hardened full-handshake refinements. The flag is sticky:
    /// once a transfer aborts it stays `'1'` for the rest of the run.
    pub status_flags: Vec<(ChannelId, SignalId)>,
}

impl BusStructure {
    /// ID code assigned to a channel.
    pub fn id_code(&self, channel: ChannelId) -> Option<u64> {
        self.id_codes
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, code)| *code)
    }

    /// Client-side procedure of a channel.
    pub fn client_proc(&self, channel: ChannelId) -> Option<ProcId> {
        self.client_procs
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, p)| *p)
    }

    /// Server-side procedure of a channel.
    pub fn serve_proc(&self, channel: ChannelId) -> Option<ProcId> {
        self.serve_procs
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, p)| *p)
    }

    /// Abort status flag of a channel (hardened refinements only).
    pub fn status_flag(&self, channel: ChannelId) -> Option<SignalId> {
        self.status_flags
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, s)| *s)
    }
}

/// The output of protocol generation: a refined, simulatable system plus
/// the bus structure metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedSystem {
    /// The refined specification.
    pub system: System,
    /// The generated bus structure.
    pub bus: BusStructure,
}

/// The output of multi-bus refinement ([`ProtocolGenerator::refine_all`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBusRefinement {
    /// The refined specification, with every bus's wires and servers.
    pub system: System,
    /// One structure per bus, in design order.
    pub buses: Vec<BusStructure>,
}

impl MultiBusRefinement {
    /// Total wires across all buses.
    pub fn total_wires(&self) -> u32 {
        self.buses.iter().map(|b| b.design.total_wires()).sum()
    }
}

/// Protocol generation (paper §4).
///
/// # Example
///
/// See the crate-level example; typical use is
/// `ProtocolGenerator::new().refine(&system, &design)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolGenerator {
    bus_name: String,
    arbitration: ArbitrationChoice,
    rolled_loops: bool,
    hardening: Option<Hardening>,
    integrity: bool,
}

impl ProtocolGenerator {
    /// Creates a generator with bus name `B` and automatic arbitration.
    pub fn new() -> Self {
        Self {
            bus_name: "B".to_string(),
            arbitration: ArbitrationChoice::Auto,
            rolled_loops: false,
            hardening: None,
            integrity: false,
        }
    }

    /// Builder-style setter for the bus name prefix.
    pub fn with_bus_name(mut self, name: impl Into<String>) -> Self {
        self.bus_name = name.into();
        self
    }

    /// Forces a specific arbiter configuration.
    pub fn with_arbitration(mut self, config: Arbitration) -> Self {
        self.arbitration = ArbitrationChoice::Forced(config);
        self
    }

    /// Emits the word sequence as a `for` loop over dynamic slices —
    /// the exact form of the paper's Fig. 4 (`for J in 1 to 2 loop ...
    /// txdata(8*J-1 downto 8*(J-1))`) — whenever the layout allows it
    /// (homogeneous word direction and the width dividing the message).
    /// Heterogeneous layouts fall back to unrolled words. Timing is
    /// identical either way (loop bookkeeping is free).
    pub fn with_rolled_word_loops(mut self) -> Self {
        self.rolled_loops = true;
        self
    }

    /// Enables timeout-hardened handshakes with the given watchdog bound
    /// (cycles per `wait until`) and the default retry limit.
    ///
    /// Hardened full-handshake clients bound every wait with a watchdog,
    /// retry a timed-out word up to the retry limit, and on exhaustion
    /// abort the transfer: they raise the channel's sticky
    /// `<bus>_STAT_<channel>` flag, release the bus arbiter if held, and
    /// return. Fault-free timing is identical to the plain protocol
    /// (2 clocks per word); the extra branches are free.
    pub fn with_timeout(mut self, watchdog: u64) -> Self {
        let h = self.hardening.get_or_insert_with(Hardening::default);
        h.watchdog = watchdog.max(1);
        self
    }

    /// Sets the bounded-retry limit of hardened handshakes (enables
    /// hardening with the default watchdog if not already on).
    pub fn with_retry_limit(mut self, retries: u32) -> Self {
        let h = self.hardening.get_or_insert_with(Hardening::default);
        h.max_retries = retries;
        self
    }

    /// Enables the integrity-protected protocol variant.
    ///
    /// Protected full-handshake transfers append one *check word* per
    /// word run: a position-weighted rolling checksum of the words just
    /// transferred (`acc := acc + word_j * salt_j` truncated to the data
    /// width, with `salt_j = j + 1`). The weighting makes the sum
    /// *order-sensitive*: swapped, duplicated, or stream-shifted words
    /// change it even when the payload repeats — unlike a salted XOR,
    /// which commutes and accepts any permutation of the same word set
    /// (the explicit-state checker found exactly that false accept: a
    /// retry-desynced stream under a stuck DONE that verified and
    /// committed a corrupt address). The server verifies the checksum
    /// before committing anything and acknowledges the check word with
    /// the bus-wide `<bus>_ERR` wire, which rests at `'1'` (NACK) and is
    /// lowered only while a *verified* check word is acknowledged — a
    /// spuriously flipped DONE therefore reads as a NACK, never as a
    /// false accept. On a NACK (or, for reads, a client-side response
    /// checksum mismatch) the whole message is retransmitted, bounded by
    /// the hardening retry limit; exhaustion raises the channel's sticky
    /// status flag exactly like a hardened word abort. Read channels use
    /// a direction-aligned word plan (no mixed address/data words) so
    /// request and response runs are checksummed independently.
    ///
    /// Integrity implies hardening (enabled with defaults if not already
    /// configured) and requires the full-handshake protocol; the ID
    /// lines themselves are not covered (a corrupted ID mis-routes the
    /// transfer before any checksum is computed).
    pub fn with_integrity(mut self) -> Self {
        self.integrity = true;
        self.hardening.get_or_insert_with(Hardening::default);
        self
    }

    /// Disables arbitration entirely (paper-faithful mode).
    ///
    /// With more than one initiating behavior the refined system can
    /// exhibit bus collisions, exactly as the paper's unrefined examples
    /// would; use only when initiators are known not to overlap.
    pub fn without_arbitration(mut self) -> Self {
        self.arbitration = ArbitrationChoice::Off;
        self
    }

    /// Refines `system` by implementing `design`'s channels on a bus.
    ///
    /// Channels outside the design are left abstract, so multi-bus
    /// systems refine one bus at a time.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyChannelGroup`] / [`CoreError::UnknownChannel`] /
    ///   [`CoreError::InvalidDesign`] for bad designs;
    /// * [`CoreError::UnsupportedProtocol`] when the protocol cannot
    ///   implement the group (e.g. half-handshake with read channels);
    /// * [`CoreError::Refinement`] if the generated system fails
    ///   validation (an internal invariant; please report).
    pub fn refine(&self, system: &System, design: &BusDesign) -> Result<RefinedSystem, CoreError> {
        if design.channels.is_empty() {
            return Err(CoreError::EmptyChannelGroup);
        }
        if design.width == 0 {
            return Err(CoreError::InvalidDesign {
                reason: "bus width must be positive".to_string(),
            });
        }
        for &ch in &design.channels {
            if ch.index() >= system.channels.len() {
                return Err(CoreError::UnknownChannel { id: ch });
            }
            let c = system.channel(ch);
            if c.message_bits() == 0 {
                return Err(CoreError::InvalidDesign {
                    reason: format!("channel `{}` carries a zero-bit message", c.name),
                });
            }
        }
        check_directions(system, &design.channels)?;
        if design.protocol == ProtocolKind::HalfHandshake {
            let has_read = design
                .channels
                .iter()
                .any(|&c| system.channel(c).direction == ChannelDirection::Read);
            if has_read {
                return Err(CoreError::UnsupportedProtocol {
                    reason: "half-handshake has no return path for read channels".to_string(),
                });
            }
        }
        if self.integrity && design.protocol != ProtocolKind::FullHandshake {
            return Err(CoreError::UnsupportedProtocol {
                reason: "integrity protection requires the full-handshake protocol".to_string(),
            });
        }
        if design.protocol == ProtocolKind::Hardwired {
            return self.refine_hardwired(system, design);
        }
        let mut gen = Gen::new(self, system.clone(), design.clone())?;
        gen.build_bus_signals();
        gen.build_arbiter();
        gen.build_channel_procs();
        gen.build_variable_processes();
        gen.rewrite_clients();
        gen.finish()
    }

    /// Refines several bus designs in sequence — one physical bus per
    /// design, each with its own wires, procedures, servers and (if
    /// needed) arbiter. Bus `k` is named `<bus_name><k>`.
    ///
    /// This is how a [`crate::SplitOutcome`] becomes hardware: channels
    /// split across buses transfer concurrently, the "two or more
    /// channels may transfer data simultaneously over the same bus by
    /// utilizing different sets of data and control lines" future-work
    /// item of the paper's §6.
    ///
    /// # Errors
    ///
    /// Same as [`ProtocolGenerator::refine`], per design.
    pub fn refine_all(
        &self,
        system: &System,
        designs: &[BusDesign],
    ) -> Result<MultiBusRefinement, CoreError> {
        if designs.is_empty() {
            return Err(CoreError::EmptyChannelGroup);
        }
        let mut current = system.clone();
        let mut buses = Vec::with_capacity(designs.len());
        for (k, design) in designs.iter().enumerate() {
            let generator = Self {
                bus_name: format!("{}{k}", self.bus_name),
                arbitration: self.arbitration,
                rolled_loops: self.rolled_loops,
                hardening: self.hardening,
                integrity: self.integrity,
            };
            let refined = generator.refine(&current, design)?;
            current = refined.system;
            buses.push(refined.bus);
        }
        Ok(MultiBusRefinement {
            system: current,
            buses,
        })
    }

    /// Hardwired refinement: dedicated wires per channel, no sequencing.
    fn refine_hardwired(
        &self,
        system: &System,
        design: &BusDesign,
    ) -> Result<RefinedSystem, CoreError> {
        for &chid in &design.channels {
            let ch = system.channel(chid);
            if ch.direction != ChannelDirection::Write {
                return Err(CoreError::UnsupportedProtocol {
                    reason: "hardwired ports support write channels only".to_string(),
                });
            }
        }
        let mut sys = system.clone();
        let mut dedicated_data = Vec::new();
        let mut client_procs = Vec::new();
        let mut var_processes = Vec::new();
        for &chid in &design.channels {
            let ch = sys.channel(chid).clone();
            let m = ch.message_bits();
            let sig = sys.add_signal(format!("{}_{}_WIRES", self.bus_name, ch.name), Ty::Bits(m));
            dedicated_data.push((chid, sig));
            // Client procedure: drive the dedicated wires (1 cycle).
            let mut p = Procedure::new(format!("Send_{}", ch.name));
            let addr_slot = (ch.addr_bits > 0)
                .then(|| p.add_param("addr", Ty::Bits(ch.addr_bits), ParamMode::In));
            let tx = p.add_param("txdata", Ty::Bits(ch.data_bits), ParamMode::In);
            let msg = match addr_slot {
                Some(a) => concat(load(local(a)), load(local(tx))),
                None => resize(load(local(tx)), m),
            };
            p.body = vec![drive_cost(sig, msg, 1)];
            let pid = sys.add_procedure(p);
            client_procs.push((chid, pid));
            // Server process: latch on every change.
            let owner = sys.variable(ch.variable).owner;
            let module = sys.behavior(owner).module;
            let vname = sys.variable(ch.variable).name.clone();
            let beh = sys.add_behavior(format!("{vname}proc_{}", ch.name), module);
            sys.behavior_mut(beh).repeats = true;
            let commit = commit_stmt(&ch, Expr::Signal(sig));
            sys.behavior_mut(beh).body = vec![wait_on(vec![sig]), commit];
            var_processes.push((ch.variable, beh));
        }
        let structure = BusStructure {
            name: self.bus_name.clone(),
            design: design.clone(),
            start: None,
            done: None,
            id: None,
            data: None,
            err: None,
            id_codes: Vec::new(),
            client_procs: client_procs.clone(),
            serve_procs: Vec::new(),
            var_processes,
            arbiter: None,
            dedicated_data,
            status_flags: Vec::new(),
        };
        let client_map: HashMap<ChannelId, ProcId> = client_procs.into_iter().collect();
        rewrite_channel_ops(&mut sys, &client_map);
        sys.check().map_err(|e| CoreError::Refinement {
            message: e.to_string(),
        })?;
        Ok(RefinedSystem {
            system: sys,
            bus: structure,
        })
    }
}

impl Default for ProtocolGenerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Commit a whole received message into the channel's variable.
fn commit_stmt(ch: &Channel, message: Expr) -> Stmt {
    let a = ch.addr_bits;
    let m = ch.message_bits();
    if a > 0 {
        Stmt::Assign {
            place: index(var(ch.variable), slice_of(message.clone(), a - 1, 0)),
            value: slice_of(message, m - 1, a),
            cost: Some(0),
        }
    } else {
        Stmt::Assign {
            place: var(ch.variable),
            value: message,
            cost: Some(0),
        }
    }
}

/// Verifies every channel's statements match its declared direction.
fn check_directions(system: &System, channels: &[ChannelId]) -> Result<(), CoreError> {
    let mut bad: Option<String> = None;
    for b in &system.behaviors {
        ifsyn_spec::visit::for_each_stmt(&b.body, &mut |s| {
            let (ch, is_send) = match s {
                Stmt::ChannelSend { channel, .. } => (*channel, true),
                Stmt::ChannelReceive { channel, .. } => (*channel, false),
                _ => return,
            };
            if !channels.contains(&ch) {
                return;
            }
            let dir = system.channel(ch).direction;
            let ok = matches!(
                (dir, is_send),
                (ChannelDirection::Write, true) | (ChannelDirection::Read, false)
            );
            if !ok && bad.is_none() {
                bad = Some(format!(
                    "channel `{}` is declared {:?} but used with {}",
                    system.channel(ch).name,
                    dir,
                    if is_send { "send" } else { "receive" }
                ));
            }
        });
    }
    match bad {
        Some(reason) => Err(CoreError::UnsupportedProtocol { reason }),
        None => Ok(()),
    }
}

/// Rewrites abstract channel operations into procedure calls.
fn rewrite_channel_ops(sys: &mut System, client_map: &HashMap<ChannelId, ProcId>) {
    for b in &mut sys.behaviors {
        let body = std::mem::take(&mut b.body);
        b.body = ifsyn_spec::visit::rewrite_body(body, &mut |s| match s {
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } if client_map.contains_key(channel) => {
                let mut args = Vec::new();
                if let Some(a) = addr {
                    args.push(Arg::In(a.clone()));
                }
                args.push(Arg::In(data.clone()));
                ifsyn_spec::visit::Rewrite::Replace(vec![Stmt::Call {
                    procedure: client_map[channel],
                    args,
                }])
            }
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } if client_map.contains_key(channel) => {
                let mut args = Vec::new();
                if let Some(a) = addr {
                    args.push(Arg::In(a.clone()));
                }
                args.push(Arg::Out(target.clone()));
                ifsyn_spec::visit::Rewrite::Replace(vec![Stmt::Call {
                    procedure: client_map[channel],
                    args,
                }])
            }
            _ => ifsyn_spec::visit::Rewrite::Keep,
        });
    }
}

/// Working state of one shared-bus refinement.
struct Gen {
    sys: System,
    design: BusDesign,
    protocol: ProtocolKind,
    bus_name: String,
    arbitration: ArbitrationChoice,
    rolled_loops: bool,
    hardening: Option<Hardening>,
    integrity: bool,
    width: u32,
    id_bits: u32,
    start: SignalId,
    done: Option<SignalId>,
    id: Option<SignalId>,
    data: SignalId,
    err: Option<SignalId>,
    id_codes: Vec<(ChannelId, u64)>,
    client_procs: Vec<(ChannelId, ProcId)>,
    serve_procs: Vec<(ChannelId, ProcId)>,
    var_processes: Vec<(VarId, BehaviorId)>,
    arbiter: Option<ArbiterWiring>,
    status_flags: Vec<(ChannelId, SignalId)>,
}

impl Gen {
    fn new(pg: &ProtocolGenerator, sys: System, design: BusDesign) -> Result<Self, CoreError> {
        let protocol = design.protocol;
        let width = design.width;
        let id_bits = design.id_bits();
        Ok(Self {
            sys,
            protocol,
            bus_name: pg.bus_name.clone(),
            arbitration: pg.arbitration,
            rolled_loops: pg.rolled_loops,
            hardening: pg.hardening,
            integrity: pg.integrity,
            width,
            id_bits,
            // placeholder ids; assigned in build_bus_signals
            start: SignalId::new(0),
            done: None,
            id: None,
            data: SignalId::new(0),
            err: None,
            id_codes: Vec::new(),
            client_procs: Vec::new(),
            serve_procs: Vec::new(),
            var_processes: Vec::new(),
            arbiter: None,
            status_flags: Vec::new(),
            design,
        })
    }

    fn build_bus_signals(&mut self) {
        let b = &self.bus_name;
        self.start = self.sys.add_signal(format!("{b}_START"), Ty::Bit);
        if self.protocol == ProtocolKind::FullHandshake {
            self.done = Some(self.sys.add_signal(format!("{b}_DONE"), Ty::Bit));
        }
        if self.id_bits > 0 {
            self.id = Some(
                self.sys
                    .add_signal(format!("{b}_ID"), Ty::Bits(self.id_bits)),
            );
        }
        self.data = self
            .sys
            .add_signal(format!("{b}_DATA"), Ty::Bits(self.width));
        if self.integrity {
            // Resting-high NACK: a spuriously sampled acknowledge reads
            // as "retransmit", never as a silent accept.
            self.err = Some(self.sys.add_signal_init(
                format!("{b}_ERR"),
                Ty::Bit,
                ifsyn_spec::Value::Bit(true),
            ));
        }
        self.id_codes = self
            .design
            .channels
            .iter()
            .enumerate()
            .map(|(k, &c)| (c, k as u64))
            .collect();
    }

    fn build_arbiter(&mut self) {
        let mut clients: Vec<BehaviorId> = Vec::new();
        for &c in &self.design.channels {
            let acc = self.sys.channel(c).accessor;
            if !clients.contains(&acc) {
                clients.push(acc);
            }
        }
        let config = match self.arbitration {
            ArbitrationChoice::Off => None,
            ArbitrationChoice::Forced(a) => Some(a),
            ArbitrationChoice::Auto => (clients.len() > 1).then(Arbitration::round_robin),
        };
        if let Some(config) = config {
            let module = self.sys.behavior(clients[0]).module;
            self.arbiter = Some(arbitration::install(
                &mut self.sys,
                &self.bus_name,
                &clients,
                &config,
                module,
            ));
        }
    }

    fn build_channel_procs(&mut self) {
        for (k, &chid) in self.design.channels.clone().iter().enumerate() {
            let ch = self.sys.channel(chid).clone();
            let code = k as u64;
            // Protected reads need direction-aligned words so request
            // and response runs checksum independently.
            let plan = if self.integrity && ch.direction == ChannelDirection::Read {
                WordPlan::aligned_for_channel(&ch, self.width)
            } else {
                WordPlan::for_channel(&ch, self.width)
            };
            let lock = self.arbiter.as_ref().and_then(|w| w.lines_of(ch.accessor));
            // Hardened transfers report unrecoverable failures through a
            // sticky per-channel status flag instead of hanging. The
            // channel name is uppercased so flag names are uniform
            // across systems regardless of source-level casing.
            let stat = (self.hardening.is_some() && self.protocol == ProtocolKind::FullHandshake)
                .then(|| {
                    let sig = self.sys.add_signal(
                        format!("{}_STAT_{}", self.bus_name, ch.name.to_uppercase()),
                        Ty::Bit,
                    );
                    self.status_flags.push((chid, sig));
                    sig
                });
            let (client, serve) = if self.integrity {
                let stat = stat.expect("integrity implies hardening status flags");
                match ch.direction {
                    ChannelDirection::Write => (
                        self.gen_send_proc_protected(&ch, code, &plan, lock, stat),
                        self.gen_serve_write_protected(&ch, &plan),
                    ),
                    ChannelDirection::Read => (
                        self.gen_receive_proc_protected(&ch, code, &plan, lock, stat),
                        self.gen_serve_read_protected(&ch, &plan),
                    ),
                }
            } else {
                match ch.direction {
                    ChannelDirection::Write => (
                        self.gen_send_proc(&ch, code, &plan, lock, stat),
                        self.gen_serve_write(&ch, &plan),
                    ),
                    ChannelDirection::Read => (
                        self.gen_receive_proc(&ch, code, &plan, lock, stat),
                        self.gen_serve_read(&ch, &plan),
                    ),
                }
            };
            let client_id = self.sys.add_procedure(client);
            let serve_id = self.sys.add_procedure(serve);
            self.client_procs.push((chid, client_id));
            self.serve_procs.push((chid, serve_id));
        }
    }

    /// Client-side synchronisation of one requester-driven word; the
    /// data lines must already be set up. `latch` runs while the word is
    /// acknowledged (response latches, checksum updates, ERR samples).
    fn client_word_sync(&self, latch: Vec<Stmt>) -> Vec<Stmt> {
        let start = self.start;
        match self.protocol {
            ProtocolKind::FullHandshake => {
                let done = self.done.expect("full handshake has DONE");
                let mut v = vec![
                    drive_cost(start, bit_const(true), 1),
                    wait_until(eq(signal(done), bit_const(true))),
                ];
                v.extend(latch);
                v.push(drive_cost(start, bit_const(false), 0));
                v.push(wait_until(eq(signal(done), bit_const(false))));
                v
            }
            ProtocolKind::HalfHandshake => {
                vec![drive_cost(start, not(signal(start)), 1)]
            }
            ProtocolKind::FixedDelay { .. } => {
                let period = self.protocol.cycles_per_word();
                let mut v = vec![
                    drive_cost(start, bit_const(true), 1),
                    drive_cost(start, bit_const(false), 0),
                    wait_cycles(u64::from(period - 1)),
                ];
                v.extend(latch);
                v
            }
            ProtocolKind::Hardwired => unreachable!("hardwired handled separately"),
        }
    }

    /// Add the `ok`/`retry` bookkeeping locals a hardened client procedure
    /// needs. Returns `(ok_slot, retry_slot, stat)` when hardening applies,
    /// `None` otherwise (then plain synchronisation is emitted).
    fn harden_slots(
        &self,
        p: &mut Procedure,
        stat: Option<SignalId>,
    ) -> Option<(usize, usize, SignalId)> {
        let stat = stat?;
        if self.hardening.is_none() || self.protocol != ProtocolKind::FullHandshake {
            return None;
        }
        let ok_slot = p.add_local("ok", Ty::Bit);
        let retry_slot = p.add_local("retry", Ty::Int(16));
        Some((ok_slot, retry_slot, stat))
    }

    /// One requester-driven word, hardened when `harden` carries the
    /// bookkeeping slots and plain otherwise.
    fn client_word_sync_with(
        &self,
        latch: Vec<Stmt>,
        harden: Option<(usize, usize, SignalId)>,
        lock: Option<(SignalId, SignalId)>,
    ) -> Vec<Stmt> {
        match harden {
            Some((ok_slot, retry_slot, stat)) => {
                self.hardened_client_word_sync(latch, ok_slot, retry_slot, stat, lock)
            }
            None => self.client_word_sync(latch),
        }
    }

    /// Timeout-hardened full-handshake word (paper Fig. 4, robust form).
    ///
    /// Every `wait until` carries a watchdog bound of `W` cycles. A word
    /// that does not complete is retried (START re-driven) up to `N`
    /// times; on exhaustion the procedure raises the channel's sticky
    /// status flag, releases any bus lock it holds, and returns. In the
    /// fault-free case the emitted schedule is cycle-identical to the
    /// plain handshake (2 cycles per word), so hardening costs nothing
    /// until a fault fires. The worst-case residency of one word is
    /// bounded by `(N + 1) * (2W + 2)` cycles.
    fn hardened_client_word_sync(
        &self,
        latch: Vec<Stmt>,
        ok_slot: usize,
        retry_slot: usize,
        stat: SignalId,
        lock: Option<(SignalId, SignalId)>,
    ) -> Vec<Stmt> {
        let h = self.hardening.expect("hardened sync requires hardening");
        let start = self.start;
        let done = self.done.expect("full handshake has DONE");
        let watchdog = h.watchdog.max(1);
        let retries = i64::from(h.max_retries);
        let bump_retry = assign_cost(
            local(retry_slot),
            add(load(local(retry_slot)), int_const(1, 16)),
            0,
        );
        let mut done_hi = Vec::new();
        done_hi.extend(latch);
        done_hi.push(drive_cost(start, bit_const(false), 0));
        done_hi.push(wait_until_for(eq(signal(done), bit_const(false)), watchdog));
        done_hi.push(if_else(
            eq(signal(done), bit_const(false)),
            vec![assign_cost(local(ok_slot), bit_const(true), 0)],
            vec![bump_retry.clone()],
        ));
        // The release drive costs a cycle here (unlike the fault-free
        // path) so that retries against a dead server consume time and
        // the watchdog bound stays finite.
        let done_lo = vec![drive_cost(start, bit_const(false), 1), bump_retry];
        let attempt = vec![
            drive_cost(start, bit_const(true), 1),
            wait_until_for(eq(signal(done), bit_const(true)), watchdog),
            if_else(eq(signal(done), bit_const(true)), done_hi, done_lo),
        ];
        let mut v = vec![
            assign_cost(local(ok_slot), bit_const(false), 0),
            assign_cost(local(retry_slot), int_const(0, 16), 0),
            while_loop(
                and(
                    eq(load(local(ok_slot)), bit_const(false)),
                    le(load(local(retry_slot)), int_const(retries, 16)),
                ),
                attempt,
            ),
        ];
        let mut abort = vec![drive_cost(stat, bit_const(true), 0)];
        if let Some((req, gnt)) = lock {
            abort.extend(arbitration::unlock_stmts(req, gnt));
        }
        abort.push(Stmt::Return);
        v.push(if_then(eq(load(local(ok_slot)), bit_const(false)), abort));
        v
    }

    /// Server-side word: wait for the word, run `actions` (latches and/or
    /// response drives), acknowledge.
    fn server_word_sync(&self, word_index: u32, actions: Vec<Stmt>) -> Vec<Stmt> {
        let start = self.start;
        match self.protocol {
            ProtocolKind::FullHandshake => {
                let done = self.done.expect("full handshake has DONE");
                let mut v = vec![wait_until(eq(signal(start), bit_const(true)))];
                v.extend(actions);
                v.push(drive_cost(done, bit_const(true), 1));
                v.push(wait_until(eq(signal(start), bit_const(false))));
                v.push(drive_cost(done, bit_const(false), 0));
                v
            }
            ProtocolKind::HalfHandshake => {
                // Word 0's strobe event was consumed by the dispatcher.
                let mut v = Vec::new();
                if word_index > 0 {
                    v.push(wait_on(vec![start]));
                }
                v.extend(actions);
                v
            }
            ProtocolKind::FixedDelay { .. } => {
                let mut v = vec![wait_until(eq(signal(start), bit_const(true)))];
                v.extend(actions);
                v.push(wait_until(eq(signal(start), bit_const(false))));
                v
            }
            ProtocolKind::Hardwired => unreachable!("hardwired handled separately"),
        }
    }

    /// Can this plan be emitted as one homogeneous rolled loop?
    fn rollable(&self, plan: &WordPlan, dir: WordDir) -> bool {
        self.rolled_loops
            && matches!(
                self.protocol,
                ProtocolKind::FullHandshake | ProtocolKind::FixedDelay { .. }
            )
            && plan.word_count() > 1
            && plan.message_bits().is_multiple_of(self.width)
            && plan.words.iter().all(|w| w.dir == dir)
    }

    /// `for j in 0 to n-1 loop <word> end loop` over dynamic slices.
    fn rolled_loop(&self, plan: &WordPlan, j_slot: usize, word_body: Vec<Stmt>) -> Stmt {
        let _ = plan;
        for_loop(
            local(j_slot),
            int_const(0, 16),
            int_const(i64::from(plan.word_count()) - 1, 16),
            word_body,
        )
    }

    /// The message offset of word `j`: `j * width`.
    fn word_offset(&self, j_slot: usize) -> Expr {
        mul(load(local(j_slot)), int_const(i64::from(self.width), 16))
    }

    fn drive_id_stmt(&self, code: u64) -> Option<Stmt> {
        self.id
            .map(|id| drive_cost(id, bits_const(code, self.id_bits), 0))
    }

    /// `Send_ch(addr?, txdata)` — paper Fig. 4's `SendCH0`, with the word
    /// loop unrolled (widths and message sizes are static here).
    fn gen_send_proc(
        &self,
        ch: &Channel,
        code: u64,
        plan: &WordPlan,
        lock: Option<(SignalId, SignalId)>,
        stat: Option<SignalId>,
    ) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let m = a + d;
        let mut p = Procedure::new(format!("Send_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_param("addr", Ty::Bits(a), ParamMode::In));
        let tx_slot = p.add_param("txdata", Ty::Bits(d), ParamMode::In);
        let msg_slot = p.add_local("msg", Ty::Bits(m));
        let harden = self.harden_slots(&mut p, stat);
        let mut body = Vec::new();
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::lock_stmts(req, gnt));
        }
        let msg_val = match addr_slot {
            Some(aslot) => concat(load(local(aslot)), load(local(tx_slot))),
            None => resize(load(local(tx_slot)), m),
        };
        body.push(assign_cost(local(msg_slot), msg_val, 0));
        body.extend(self.drive_id_stmt(code));
        if self.rollable(plan, WordDir::Request) {
            // Fig. 4's form: one loop, the word selected by a dynamic
            // slice of the message buffer.
            let j_slot = p.add_local("j", Ty::Int(16));
            let mut word = vec![drive_cost(
                self.data,
                dyn_slice_of(load(local(msg_slot)), self.word_offset(j_slot), self.width),
                0,
            )];
            word.extend(self.client_word_sync_with(vec![], harden, lock));
            body.push(self.rolled_loop(plan, j_slot, word));
        } else {
            for w in &plan.words {
                body.push(drive_cost(
                    self.data,
                    resize(
                        slice_of(load(local(msg_slot)), w.msg_hi, w.msg_lo),
                        self.width,
                    ),
                    0,
                ));
                body.extend(self.client_word_sync_with(vec![], harden, lock));
            }
        }
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::unlock_stmts(req, gnt));
        }
        p.body = body;
        p
    }

    /// `Receive_ch(addr?, rxdata)` — the client side of a read channel.
    fn gen_receive_proc(
        &self,
        ch: &Channel,
        code: u64,
        plan: &WordPlan,
        lock: Option<(SignalId, SignalId)>,
        stat: Option<SignalId>,
    ) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let mut p = Procedure::new(format!("Receive_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_param("addr", Ty::Bits(a), ParamMode::In));
        let rx_slot = p.add_param("rxdata", Ty::Bits(d), ParamMode::Out);
        let harden = self.harden_slots(&mut p, stat);
        let mut body = Vec::new();
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::lock_stmts(req, gnt));
        }
        body.extend(self.drive_id_stmt(code));
        for w in &plan.words {
            match w.dir {
                WordDir::Request => {
                    let aslot = addr_slot.expect("request words imply an address");
                    body.push(drive_cost(
                        self.data,
                        resize(slice_of(load(local(aslot)), w.msg_hi, w.msg_lo), self.width),
                        0,
                    ));
                    body.extend(self.client_word_sync_with(vec![], harden, lock));
                }
                WordDir::Response => {
                    let latch = Stmt::Assign {
                        place: slice(local(rx_slot), w.msg_hi - a, w.msg_lo - a),
                        value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                        cost: Some(0),
                    };
                    body.extend(self.client_word_sync_with(vec![latch], harden, lock));
                }
                WordDir::Mixed => {
                    let aslot = addr_slot.expect("mixed words imply an address");
                    body.push(drive_cost(
                        self.data,
                        resize(slice_of(load(local(aslot)), a - 1, w.msg_lo), self.width),
                        0,
                    ));
                    let latch = Stmt::Assign {
                        place: slice(local(rx_slot), w.msg_hi - a, 0),
                        value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, a - w.msg_lo),
                        cost: Some(0),
                    };
                    body.extend(self.client_word_sync_with(vec![latch], harden, lock));
                }
            }
        }
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::unlock_stmts(req, gnt));
        }
        p.body = body;
        p
    }

    /// `Serve_ch` for a write channel: receive all words, commit to the
    /// variable.
    fn gen_serve_write(&self, ch: &Channel, plan: &WordPlan) -> Procedure {
        let m = ch.message_bits();
        let mut p = Procedure::new(format!("Serve_{}", ch.name));
        let msg_slot = p.add_local("msg", Ty::Bits(m));
        let mut body = Vec::new();
        if self.rollable(plan, WordDir::Request) {
            let j_slot = p.add_local("j", Ty::Int(16));
            let latch = Stmt::Assign {
                place: dyn_slice(local(msg_slot), self.word_offset(j_slot), self.width),
                value: slice_of(signal(self.data), self.width - 1, 0),
                cost: Some(0),
            };
            // Every word of a homogeneous write plan synchronises the
            // same way (word index 1 avoids half-handshake's special
            // word 0, which `rollable` already excludes).
            let word = self.server_word_sync(1, vec![latch]);
            body.push(self.rolled_loop(plan, j_slot, word));
        } else {
            for w in &plan.words {
                let latch = Stmt::Assign {
                    place: slice(local(msg_slot), w.msg_hi, w.msg_lo),
                    value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                    cost: Some(0),
                };
                body.extend(self.server_word_sync(w.index, vec![latch]));
            }
        }
        body.push(commit_stmt(ch, load(local(msg_slot))));
        p.body = body;
        p
    }

    /// `Serve_ch` for a read channel: receive the address, fetch, answer.
    fn gen_serve_read(&self, ch: &Channel, plan: &WordPlan) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let mut p = Procedure::new(format!("Serve_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_local("addrbuf", Ty::Bits(a)));
        let data_slot = p.add_local("data", Ty::Bits(d));
        let fetch = |data_slot: usize| -> Stmt {
            let value = match addr_slot {
                Some(aslot) => load(index(var(ch.variable), load(local(aslot)))),
                None => load(var(ch.variable)),
            };
            assign_cost(local(data_slot), value, 0)
        };
        let mut body = Vec::new();
        if a == 0 {
            body.push(fetch(data_slot));
        }
        let complete = plan.addr_complete_word();
        for w in &plan.words {
            match w.dir {
                WordDir::Request => {
                    let aslot = addr_slot.expect("request words imply an address");
                    let latch = Stmt::Assign {
                        place: slice(local(aslot), w.msg_hi, w.msg_lo),
                        value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                        cost: Some(0),
                    };
                    body.extend(self.server_word_sync(w.index, vec![latch]));
                    if complete == Some(w.index) {
                        body.push(fetch(data_slot));
                    }
                }
                WordDir::Response => {
                    let respond = drive_cost(
                        self.data,
                        resize(
                            slice_of(load(local(data_slot)), w.msg_hi - a, w.msg_lo - a),
                            self.width,
                        ),
                        0,
                    );
                    body.extend(self.server_word_sync(w.index, vec![respond]));
                }
                WordDir::Mixed => {
                    let aslot = addr_slot.expect("mixed words imply an address");
                    let latch_addr = Stmt::Assign {
                        place: slice(local(aslot), a - 1, w.msg_lo),
                        value: slice_of(signal(self.data), a - 1 - w.msg_lo, 0),
                        cost: Some(0),
                    };
                    // Data part sits at word positions a-lo .. hi-lo:
                    // pad the low (address) positions with zeros.
                    let respond_value = if a - w.msg_lo > 0 {
                        resize(
                            concat(
                                bits_const(0, a - w.msg_lo),
                                slice_of(load(local(data_slot)), w.msg_hi - a, 0),
                            ),
                            self.width,
                        )
                    } else {
                        resize(
                            slice_of(load(local(data_slot)), w.msg_hi - a, 0),
                            self.width,
                        )
                    };
                    let actions = vec![
                        latch_addr,
                        fetch(data_slot),
                        drive_cost(self.data, respond_value, 0),
                    ];
                    body.extend(self.server_word_sync(w.index, actions));
                }
            }
        }
        p.body = body;
        p
    }

    /// Salt for word `j` of a protected run: the nonzero position weight
    /// `j + 1` multiplied into the rolling checksum so duplicated,
    /// swapped, or stream-shifted words change the sum even when the
    /// payload repeats.
    fn salt(&self, j: u32) -> Expr {
        bits_const(u64::from(j) + 1, self.width)
    }

    /// Seeds a protected run's checksum with the run's word count.
    ///
    /// A zero seed makes a single-word run's check word equal the word
    /// itself (`word * 1`), so a duplicated word — exactly the shape a
    /// stuck DONE's word retry produces — self-verifies as `(X, X)`.
    /// The nonzero length seed breaks that fixpoint and ties the sum to
    /// the run shape both sides expect.
    fn acc_init(&self, acc_slot: usize, run_words: usize) -> Stmt {
        assign_cost(local(acc_slot), bits_const(run_words as u64, self.width), 0)
    }

    /// The array length behind `ch`, when its variable is addressable:
    /// the bound a message address must respect before the server
    /// dereferences it.
    fn served_array_len(&self, ch: &Channel) -> Option<u32> {
        match &self.sys.variable(ch.variable).ty {
            Ty::Array { len, .. } => Some(*len),
            _ => None,
        }
    }

    /// Conjoins an in-range check of a served message's address onto a
    /// verification condition. A false-accepted (or merely corrupt)
    /// address must read as a NACK, never reach an array index: the
    /// client retransmits or aborts with its flag, and the server stays
    /// inside its storage.
    fn guard_addr(&self, cond: Expr, ch: &Channel, addr: Expr) -> Expr {
        match self.served_array_len(ch) {
            Some(len) if ch.addr_bits > 0 => and(cond, lt(addr, int_const(i64::from(len), 32))),
            _ => cond,
        }
    }

    /// `acc := acc + word * salt_j` — one rolling-checksum step,
    /// truncated to the data width on assignment.
    ///
    /// The position weight makes the sum order-sensitive. A salted XOR
    /// (`acc xor word xor salt_j`) is not: XOR commutes and the salt set
    /// is unchanged under permutation, so a retry-desynced word stream
    /// containing the same values in the wrong slots verifies cleanly —
    /// the model checker exhibited exactly that false accept committing
    /// a corrupt address under a stuck-at-0 DONE.
    fn acc_update(&self, acc_slot: usize, word: Expr, j: u32) -> Stmt {
        assign_cost(
            local(acc_slot),
            add(load(local(acc_slot)), mul(word, self.salt(j))),
            0,
        )
    }

    /// `mretry := mretry + 1` — one message-level retry consumed.
    fn bump_mretry(&self, mretry_slot: usize) -> Stmt {
        assign_cost(
            local(mretry_slot),
            add(load(local(mretry_slot)), int_const(1, 16)),
            0,
        )
    }

    /// Sticky abort: raise the status flag, release the bus, return.
    fn abort_stmts(&self, stat: SignalId, lock: Option<(SignalId, SignalId)>) -> Vec<Stmt> {
        let mut v = vec![drive_cost(stat, bit_const(true), 0)];
        if let Some((req, gnt)) = lock {
            v.extend(arbitration::unlock_stmts(req, gnt));
        }
        v.push(Stmt::Return);
        v
    }

    /// `Send_ch(addr?, txdata)`, integrity-protected: every attempt
    /// drives the message words followed by one check word carrying the
    /// salted-XOR checksum; the server's verdict is sampled from the ERR
    /// wire while the check word is acknowledged. A NACK retransmits the
    /// whole message, bounded by the hardening retry limit; exhaustion
    /// raises the sticky status flag.
    fn gen_send_proc_protected(
        &self,
        ch: &Channel,
        code: u64,
        plan: &WordPlan,
        lock: Option<(SignalId, SignalId)>,
        stat: SignalId,
    ) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let m = a + d;
        let err = self.err.expect("integrity refinement has ERR");
        let h = self.hardening.expect("integrity implies hardening");
        let retries = i64::from(h.max_retries);
        let mut p = Procedure::new(format!("Send_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_param("addr", Ty::Bits(a), ParamMode::In));
        let tx_slot = p.add_param("txdata", Ty::Bits(d), ParamMode::In);
        let msg_slot = p.add_local("msg", Ty::Bits(m));
        let acc_slot = p.add_local("acc", Ty::Bits(self.width));
        let nak_slot = p.add_local("nak", Ty::Bit);
        let sent_slot = p.add_local("sent", Ty::Bit);
        let mretry_slot = p.add_local("mretry", Ty::Int(16));
        let harden = self.harden_slots(&mut p, Some(stat));
        let mut body = Vec::new();
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::lock_stmts(req, gnt));
        }
        let msg_val = match addr_slot {
            Some(aslot) => concat(load(local(aslot)), load(local(tx_slot))),
            None => resize(load(local(tx_slot)), m),
        };
        body.push(assign_cost(local(msg_slot), msg_val, 0));
        body.push(assign_cost(local(sent_slot), bit_const(false), 0));
        body.push(assign_cost(local(mretry_slot), int_const(0, 16), 0));
        let mut attempt = Vec::new();
        attempt.extend(self.drive_id_stmt(code));
        attempt.push(self.acc_init(acc_slot, plan.words.len()));
        for w in &plan.words {
            let word = resize(
                slice_of(load(local(msg_slot)), w.msg_hi, w.msg_lo),
                self.width,
            );
            attempt.push(drive_cost(self.data, word.clone(), 0));
            attempt.push(self.acc_update(acc_slot, word, w.index));
            attempt.extend(self.client_word_sync_with(vec![], harden, lock));
        }
        attempt.push(drive_cost(self.data, load(local(acc_slot)), 0));
        let sample = assign_cost(local(nak_slot), signal(err), 0);
        attempt.extend(self.client_word_sync_with(vec![sample], harden, lock));
        attempt.push(if_else(
            eq(load(local(nak_slot)), bit_const(false)),
            vec![assign_cost(local(sent_slot), bit_const(true), 0)],
            vec![self.bump_mretry(mretry_slot)],
        ));
        body.push(while_loop(
            and(
                eq(load(local(sent_slot)), bit_const(false)),
                le(load(local(mretry_slot)), int_const(retries, 16)),
            ),
            attempt,
        ));
        body.push(if_then(
            eq(load(local(sent_slot)), bit_const(false)),
            self.abort_stmts(stat, lock),
        ));
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::unlock_stmts(req, gnt));
        }
        p.body = body;
        p
    }

    /// `Serve_ch` for a protected write channel: latch the words while
    /// accumulating their checksum, compare against the client's check
    /// word, answer on ERR, and commit only a verified message. The
    /// mismatch-restart loop doubles as the resynchronisation mechanism:
    /// after a duplicated or dropped word the next client attempt lands
    /// back on word 0 of a fresh round.
    fn gen_serve_write_protected(&self, ch: &Channel, plan: &WordPlan) -> Procedure {
        let m = ch.message_bits();
        let err = self.err.expect("integrity refinement has ERR");
        let mut p = Procedure::new(format!("Serve_{}", ch.name));
        let msg_slot = p.add_local("msg", Ty::Bits(m));
        let acc_slot = p.add_local("acc", Ty::Bits(self.width));
        let chk_slot = p.add_local("chk", Ty::Bits(self.width));
        let good_slot = p.add_local("good", Ty::Bit);
        let mut round = vec![self.acc_init(acc_slot, plan.words.len())];
        for w in &plan.words {
            let latch = Stmt::Assign {
                place: slice(local(msg_slot), w.msg_hi, w.msg_lo),
                value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                cost: Some(0),
            };
            let word = resize(
                slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                self.width,
            );
            let upd = self.acc_update(acc_slot, word, w.index);
            round.extend(self.server_word_sync(w.index, vec![latch, upd]));
        }
        let ok = self.guard_addr(
            eq(load(local(chk_slot)), load(local(acc_slot))),
            ch,
            slice_of(load(local(msg_slot)), ch.addr_bits.max(1) - 1, 0),
        );
        let verify = vec![
            assign_cost(local(chk_slot), signal(self.data), 0),
            if_else(
                ok,
                vec![
                    assign_cost(local(good_slot), bit_const(true), 0),
                    drive_cost(err, bit_const(false), 0),
                ],
                vec![drive_cost(err, bit_const(true), 0)],
            ),
        ];
        let mut check_word = self.server_word_sync(plan.word_count(), verify);
        // Restore the resting NACK level once the check word completes.
        check_word.push(drive_cost(err, bit_const(true), 0));
        round.extend(check_word);
        p.body = vec![
            assign_cost(local(good_slot), bit_const(false), 0),
            while_loop(eq(load(local(good_slot)), bit_const(false)), round),
            commit_stmt(ch, load(local(msg_slot))),
        ];
        p
    }

    /// `Receive_ch(addr?, rxdata)`, integrity-protected: the request run
    /// (if any) carries its own check word verified by the server and
    /// acknowledged on ERR; the response run's trailing check word is
    /// verified by the client itself. Either failure retransmits the
    /// whole message, bounded by the hardening retry limit.
    fn gen_receive_proc_protected(
        &self,
        ch: &Channel,
        code: u64,
        plan: &WordPlan,
        lock: Option<(SignalId, SignalId)>,
        stat: SignalId,
    ) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let err = self.err.expect("integrity refinement has ERR");
        let h = self.hardening.expect("integrity implies hardening");
        let retries = i64::from(h.max_retries);
        let mut p = Procedure::new(format!("Receive_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_param("addr", Ty::Bits(a), ParamMode::In));
        let rx_slot = p.add_param("rxdata", Ty::Bits(d), ParamMode::Out);
        let acc_slot = p.add_local("acc", Ty::Bits(self.width));
        let racc_slot = p.add_local("racc", Ty::Bits(self.width));
        let chkw_slot = p.add_local("chkw", Ty::Bits(self.width));
        let nak_slot = p.add_local("nak", Ty::Bit);
        let got_slot = p.add_local("got", Ty::Bit);
        let mretry_slot = p.add_local("mretry", Ty::Int(16));
        let harden = self.harden_slots(&mut p, Some(stat));
        let request_words: Vec<_> = plan
            .words
            .iter()
            .filter(|w| w.dir == WordDir::Request)
            .collect();
        let response_words: Vec<_> = plan
            .words
            .iter()
            .filter(|w| w.dir == WordDir::Response)
            .collect();
        let mut body = Vec::new();
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::lock_stmts(req, gnt));
        }
        body.push(assign_cost(local(got_slot), bit_const(false), 0));
        body.push(assign_cost(local(mretry_slot), int_const(0, 16), 0));
        let mut attempt = Vec::new();
        attempt.extend(self.drive_id_stmt(code));
        attempt.push(assign_cost(local(nak_slot), bit_const(false), 0));
        if !request_words.is_empty() {
            let aslot = addr_slot.expect("request words imply an address");
            attempt.push(self.acc_init(acc_slot, request_words.len()));
            for w in &request_words {
                let word = resize(slice_of(load(local(aslot)), w.msg_hi, w.msg_lo), self.width);
                attempt.push(drive_cost(self.data, word.clone(), 0));
                attempt.push(self.acc_update(acc_slot, word, w.index));
                attempt.extend(self.client_word_sync_with(vec![], harden, lock));
            }
            attempt.push(drive_cost(self.data, load(local(acc_slot)), 0));
            let sample = assign_cost(local(nak_slot), signal(err), 0);
            attempt.extend(self.client_word_sync_with(vec![sample], harden, lock));
        }
        let mut respond = vec![self.acc_init(racc_slot, response_words.len())];
        for w in &response_words {
            let latch = Stmt::Assign {
                place: slice(local(rx_slot), w.msg_hi - a, w.msg_lo - a),
                value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                cost: Some(0),
            };
            let word = resize(
                slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                self.width,
            );
            let upd = self.acc_update(racc_slot, word, w.index);
            respond.extend(self.client_word_sync_with(vec![latch, upd], harden, lock));
        }
        let latch_chk = assign_cost(local(chkw_slot), signal(self.data), 0);
        respond.extend(self.client_word_sync_with(vec![latch_chk], harden, lock));
        respond.push(if_else(
            eq(load(local(chkw_slot)), load(local(racc_slot))),
            vec![assign_cost(local(got_slot), bit_const(true), 0)],
            vec![self.bump_mretry(mretry_slot)],
        ));
        attempt.push(if_else(
            eq(load(local(nak_slot)), bit_const(false)),
            respond,
            vec![self.bump_mretry(mretry_slot)],
        ));
        body.push(while_loop(
            and(
                eq(load(local(got_slot)), bit_const(false)),
                le(load(local(mretry_slot)), int_const(retries, 16)),
            ),
            attempt,
        ));
        body.push(if_then(
            eq(load(local(got_slot)), bit_const(false)),
            self.abort_stmts(stat, lock),
        ));
        if let Some((req, gnt)) = lock {
            body.extend(arbitration::unlock_stmts(req, gnt));
        }
        p.body = body;
        p
    }

    /// `Serve_ch` for a protected read channel: verify the request run's
    /// check word before fetching (a corrupted address must not produce
    /// an internally consistent response), then answer the response
    /// words followed by their own checksum for the client to verify.
    fn gen_serve_read_protected(&self, ch: &Channel, plan: &WordPlan) -> Procedure {
        let a = ch.addr_bits;
        let d = ch.data_bits;
        let err = self.err.expect("integrity refinement has ERR");
        let mut p = Procedure::new(format!("Serve_{}", ch.name));
        let addr_slot = (a > 0).then(|| p.add_local("addrbuf", Ty::Bits(a)));
        let data_slot = p.add_local("data", Ty::Bits(d));
        let acc_slot = p.add_local("acc", Ty::Bits(self.width));
        let request_words: Vec<_> = plan
            .words
            .iter()
            .filter(|w| w.dir == WordDir::Request)
            .collect();
        let response_words: Vec<_> = plan
            .words
            .iter()
            .filter(|w| w.dir == WordDir::Response)
            .collect();
        let fetch = |data_slot: usize| -> Stmt {
            let value = match addr_slot {
                Some(aslot) => load(index(var(ch.variable), load(local(aslot)))),
                None => load(var(ch.variable)),
            };
            assign_cost(local(data_slot), value, 0)
        };
        let mut body = Vec::new();
        if !request_words.is_empty() {
            let aslot = addr_slot.expect("request words imply an address");
            let chk_slot = p.add_local("chk", Ty::Bits(self.width));
            let good_slot = p.add_local("good", Ty::Bit);
            let mut round = vec![self.acc_init(acc_slot, request_words.len())];
            for w in &request_words {
                let latch = Stmt::Assign {
                    place: slice(local(aslot), w.msg_hi, w.msg_lo),
                    value: slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                    cost: Some(0),
                };
                let word = resize(
                    slice_of(signal(self.data), w.msg_hi - w.msg_lo, 0),
                    self.width,
                );
                let upd = self.acc_update(acc_slot, word, w.index);
                round.extend(self.server_word_sync(w.index, vec![latch, upd]));
            }
            let ok = self.guard_addr(
                eq(load(local(chk_slot)), load(local(acc_slot))),
                ch,
                load(local(aslot)),
            );
            let verify = vec![
                assign_cost(local(chk_slot), signal(self.data), 0),
                if_else(
                    ok,
                    vec![
                        assign_cost(local(good_slot), bit_const(true), 0),
                        drive_cost(err, bit_const(false), 0),
                    ],
                    vec![drive_cost(err, bit_const(true), 0)],
                ),
            ];
            let mut check_word = self.server_word_sync(request_words.len() as u32, verify);
            check_word.push(drive_cost(err, bit_const(true), 0));
            round.extend(check_word);
            body.push(assign_cost(local(good_slot), bit_const(false), 0));
            body.push(while_loop(
                eq(load(local(good_slot)), bit_const(false)),
                round,
            ));
        }
        body.push(fetch(data_slot));
        body.push(self.acc_init(acc_slot, response_words.len()));
        for w in &response_words {
            let word = resize(
                slice_of(load(local(data_slot)), w.msg_hi - a, w.msg_lo - a),
                self.width,
            );
            let respond = drive_cost(self.data, word.clone(), 0);
            let upd = self.acc_update(acc_slot, word, w.index);
            body.extend(self.server_word_sync(w.index, vec![respond, upd]));
        }
        body.extend(self.server_word_sync(
            plan.word_count(),
            vec![drive_cost(self.data, load(local(acc_slot)), 0)],
        ));
        p.body = body;
        p
    }

    /// Step 5: one variable process per served variable, dispatching on
    /// the ID lines (paper Fig. 5's `Xproc` / `MEMproc`).
    fn build_variable_processes(&mut self) {
        // Group channels by variable, preserving design order.
        let mut vars: Vec<VarId> = Vec::new();
        for &c in &self.design.channels {
            let v = self.sys.channel(c).variable;
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for v in vars {
            let vchans: Vec<(ChannelId, u64, ProcId)> = self
                .design
                .channels
                .iter()
                .enumerate()
                .filter(|&(_, &c)| self.sys.channel(c).variable == v)
                .map(|(k, &c)| (c, k as u64, self.serve_proc_of(c)))
                .collect();
            let owner = self.sys.variable(v).owner;
            let module = self.sys.behavior(owner).module;
            let vname = self.sys.variable(v).name.clone();
            // A variable can be served by several buses (e.g. written
            // over one and read over another): disambiguate the server
            // name with the bus when `<var>proc` is already taken.
            let name = if self.sys.behavior_by_name(&format!("{vname}proc")).is_none() {
                format!("{vname}proc")
            } else {
                format!("{vname}proc_{}", self.bus_name)
            };
            let beh = self.sys.add_behavior(name, module);
            self.sys.behavior_mut(beh).repeats = true;

            let head = match self.protocol {
                ProtocolKind::HalfHandshake => wait_on(vec![self.start]),
                _ => wait_until(eq(signal(self.start), bit_const(true))),
            };
            let dispatch = match self.id {
                None => {
                    // Single channel on the bus: no ID decode needed.
                    let (_, _, serve) = vchans[0];
                    call(serve, vec![])
                }
                Some(id_sig) => {
                    // Foreign transaction: skip this word.
                    let foreign: Vec<Stmt> = match self.protocol {
                        ProtocolKind::HalfHandshake => Vec::new(),
                        _ => vec![wait_until(eq(signal(self.start), bit_const(false)))],
                    };
                    let mut stmt: Option<Stmt> = None;
                    for &(_, code, serve) in vchans.iter().rev() {
                        let cond = eq(signal(id_sig), bits_const(code, self.id_bits));
                        let branch = vec![call(serve, vec![])];
                        stmt = Some(match stmt {
                            None => if_else(cond, branch, foreign.clone()),
                            Some(tail) => if_else(cond, branch, vec![tail]),
                        });
                    }
                    stmt.expect("variable has at least one channel")
                }
            };
            self.sys.behavior_mut(beh).body = vec![head, dispatch];
            self.var_processes.push((v, beh));
        }
    }

    fn serve_proc_of(&self, ch: ChannelId) -> ProcId {
        self.serve_procs
            .iter()
            .find(|(c, _)| *c == ch)
            .map(|(_, p)| *p)
            .expect("serve proc generated before variable processes")
    }

    /// Step 4: replace abstract channel operations with procedure calls.
    fn rewrite_clients(&mut self) {
        let map: HashMap<ChannelId, ProcId> = self.client_procs.iter().copied().collect();
        rewrite_channel_ops(&mut self.sys, &map);
    }

    fn finish(self) -> Result<RefinedSystem, CoreError> {
        self.sys.check().map_err(|e| CoreError::Refinement {
            message: e.to_string(),
        })?;
        let structure = BusStructure {
            name: self.bus_name,
            design: self.design,
            start: Some(self.start),
            done: self.done,
            id: self.id,
            data: Some(self.data),
            err: self.err,
            id_codes: self.id_codes,
            client_procs: self.client_procs,
            serve_procs: self.serve_procs,
            var_processes: self.var_processes,
            arbiter: self.arbiter,
            dedicated_data: Vec::new(),
            status_flags: self.status_flags,
        };
        Ok(RefinedSystem {
            system: self.sys,
            bus: structure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3 style: P writes scalar X over ch0 and reads it over ch1;
    /// Q writes MEM\[60\] over ch3.
    fn fig3ish() -> (System, Vec<ChannelId>) {
        let mut sys = System::new("fig3");
        let left = sys.add_module("left");
        let right = sys.add_module("right");
        let p = sys.add_behavior("P", left);
        let q = sys.add_behavior("Q", left);
        let store = sys.add_behavior("store", right);
        let x = sys.add_variable("X", Ty::Bits(16), store);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Bits(16), 64), store);
        let xtemp = sys.add_variable("Xtemp", Ty::Bits(16), p);
        let count =
            sys.add_variable_init("COUNT", Ty::Int(16), q, ifsyn_spec::Value::int(1234, 16));
        let ch0 = sys.add_channel(Channel {
            name: "CH0".into(),
            accessor: p,
            variable: x,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        let ch1 = sys.add_channel(Channel {
            name: "CH1".into(),
            accessor: p,
            variable: x,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        let ch3 = sys.add_channel(Channel {
            name: "CH3".into(),
            accessor: q,
            variable: mem,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 6,
            accesses: 1,
        });
        sys.behavior_mut(p).body = vec![send(ch0, int_const(32, 16)), receive(ch1, var(xtemp))];
        sys.behavior_mut(q).body = vec![send_at(ch3, int_const(60, 16), load(var(count)))];
        (sys, vec![ch0, ch1, ch3])
    }

    fn design_for(_sys: &System, chans: &[ChannelId], width: u32) -> BusDesign {
        BusDesign::with_width(chans.to_vec(), width, ProtocolKind::FullHandshake)
    }

    #[test]
    fn refined_system_validates() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        assert!(refined.system.check().is_ok());
    }

    #[test]
    fn bus_wires_exist_with_expected_types() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        let s = &refined.system;
        let bus = &refined.bus;
        assert_eq!(s.signal(bus.start.unwrap()).ty, Ty::Bit);
        assert_eq!(s.signal(bus.done.unwrap()).ty, Ty::Bit);
        // 3 channels -> 2 ID bits.
        assert_eq!(s.signal(bus.id.unwrap()).ty, Ty::Bits(2));
        assert_eq!(s.signal(bus.data.unwrap()).ty, Ty::Bits(8));
    }

    #[test]
    fn id_codes_are_unique_and_dense() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        let codes: Vec<u64> = refined.bus.id_codes.iter().map(|&(_, c)| c).collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn channel_ops_are_rewritten_into_calls() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        for b in &refined.system.behaviors {
            let remaining = ifsyn_spec::visit::count_stmts(&b.body, |s| {
                matches!(s, Stmt::ChannelSend { .. } | Stmt::ChannelReceive { .. })
            });
            assert_eq!(remaining, 0, "behavior `{}` kept channel ops", b.name);
        }
        let p = refined.system.behavior_by_name("P").unwrap();
        let calls = ifsyn_spec::visit::count_stmts(&refined.system.behavior(p).body, |s| {
            matches!(s, Stmt::Call { .. })
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn variable_processes_are_created_per_variable() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        // X and MEM each get one server process.
        assert_eq!(refined.bus.var_processes.len(), 2);
        assert!(refined.system.behavior_by_name("Xproc").is_some());
        assert!(refined.system.behavior_by_name("MEMproc").is_some());
        for &(_, beh) in &refined.bus.var_processes {
            assert!(refined.system.behavior(beh).repeats);
        }
    }

    #[test]
    fn auto_arbitration_installs_for_two_initiators() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        let arb = refined.bus.arbiter.as_ref().expect("P and Q both initiate");
        assert_eq!(arb.clients.len(), 2);
        assert!(refined.system.behavior_by_name("B_arbiter").is_some());
    }

    #[test]
    fn without_arbitration_omits_arbiter() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new()
            .without_arbitration()
            .refine(&sys, &design)
            .unwrap();
        assert!(refined.bus.arbiter.is_none());
        assert!(refined.system.behavior_by_name("B_arbiter").is_none());
    }

    #[test]
    fn zero_width_design_is_rejected() {
        let (sys, chans) = fig3ish();
        let mut design = design_for(&sys, &chans, 8);
        design.width = 0;
        let err = ProtocolGenerator::new().refine(&sys, &design).unwrap_err();
        assert!(matches!(err, CoreError::InvalidDesign { .. }), "{err}");
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn zero_bit_channel_is_rejected() {
        let (mut sys, mut chans) = fig3ish();
        let p = sys.behavior_by_name("P").unwrap();
        let x = sys.variable_by_name("X").unwrap();
        chans.push(sys.add_channel(Channel {
            name: "EMPTY".into(),
            accessor: p,
            variable: x,
            direction: ChannelDirection::Write,
            data_bits: 0,
            addr_bits: 0,
            accesses: 1,
        }));
        let design = design_for(&sys, &chans, 8);
        let err = ProtocolGenerator::new().refine(&sys, &design).unwrap_err();
        assert!(matches!(err, CoreError::InvalidDesign { .. }), "{err}");
        assert!(err.to_string().contains("EMPTY"), "{err}");
    }

    #[test]
    fn half_handshake_rejects_read_channels() {
        let (sys, chans) = fig3ish();
        let mut design = design_for(&sys, &chans, 8);
        design.protocol = ProtocolKind::HalfHandshake;
        let err = ProtocolGenerator::new().refine(&sys, &design).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedProtocol { .. }));
    }

    #[test]
    fn direction_mismatch_is_detected() {
        let (mut sys, chans) = fig3ish();
        // Abuse: receive on a write channel.
        let p = sys.behavior_by_name("P").unwrap();
        let xtemp = sys.variable_by_name("Xtemp").unwrap();
        sys.behavior_mut(p).body.push(receive(chans[0], var(xtemp)));
        let design = design_for(&sys, &chans, 8);
        let err = ProtocolGenerator::new().refine(&sys, &design).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedProtocol { .. }));
    }

    #[test]
    fn single_channel_bus_has_no_id_lines() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &[chans[0]], 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        assert!(refined.bus.id.is_none());
        assert_eq!(refined.bus.design.id_bits(), 0);
    }

    #[test]
    fn send_proc_word_count_matches_plan() {
        let (sys, chans) = fig3ish();
        let design = design_for(&sys, &chans, 8);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        // CH3: 22-bit message on 8-bit bus -> 3 words -> 3 START rises
        // in the send procedure.
        let proc_id = refined.bus.client_proc(chans[2]).unwrap();
        let body = &refined.system.procedure(proc_id).body;
        let rises = ifsyn_spec::visit::count_stmts(body, |s| {
            matches!(
                s,
                Stmt::SignalAssign { signal, value, .. }
                if *signal == refined.bus.start.unwrap()
                    && *value == bit_const(true)
            )
        });
        assert_eq!(rises, 3);
    }

    #[test]
    fn hardwired_single_write_channel() {
        let (sys, chans) = fig3ish();
        let mut design = design_for(&sys, &[chans[0]], 16);
        design.protocol = ProtocolKind::Hardwired;
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        assert_eq!(refined.bus.dedicated_data.len(), 1);
        assert!(refined.system.check().is_ok());
    }

    #[test]
    fn refining_twice_with_one_bus_name_is_rejected() {
        // The duplicate B_START declaration is caught by validation —
        // multi-bus systems must use refine_all (distinct names).
        let (sys, chans) = fig3ish();
        let d1 = design_for(&sys, &[chans[0]], 8);
        let d2 = design_for(&sys, &[chans[2]], 8);
        let once = ProtocolGenerator::new().refine(&sys, &d1).unwrap();
        let err = ProtocolGenerator::new()
            .refine(&once.system, &d2)
            .unwrap_err();
        assert!(matches!(err, CoreError::Refinement { .. }), "{err}");
        // With distinct bus names it works.
        let refined = ProtocolGenerator::new()
            .refine_all(&sys, &[d1, d2])
            .unwrap();
        assert_eq!(refined.buses.len(), 2);
        assert!(refined.system.check().is_ok());
    }

    #[test]
    fn hardwired_rejects_read_channels() {
        let (sys, chans) = fig3ish();
        let mut design = design_for(&sys, &[chans[1]], 16);
        design.protocol = ProtocolKind::Hardwired;
        let err = ProtocolGenerator::new().refine(&sys, &design).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedProtocol { .. }));
    }
}

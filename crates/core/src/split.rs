//! Bus splitting: implementing an overloaded channel group with more
//! than one bus (the paper's §3 step 5 remark and §6 future work:
//! "One solution to this problem would be to split the group of channels
//! further to be implemented by more than one bus").

use ifsyn_spec::{ChannelId, System};

use crate::busgen::{BusDesign, BusGenerator};
use crate::error::CoreError;

/// The result of feasibility-driven splitting.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitOutcome {
    /// One bus design per final channel group.
    pub buses: Vec<BusDesign>,
}

impl SplitOutcome {
    /// Total wires across all buses (data + control + ID).
    pub fn total_wires(&self) -> u32 {
        self.buses.iter().map(BusDesign::total_wires).sum()
    }

    /// Number of buses.
    pub fn bus_count(&self) -> usize {
        self.buses.len()
    }
}

impl BusGenerator {
    /// Like [`BusGenerator::generate`], but when no single bus is
    /// feasible, greedily bisects the channel group (balancing estimated
    /// load) and recurses until every group has a feasible width.
    ///
    /// # Errors
    ///
    /// * Validation errors as in [`BusGenerator::generate`].
    /// * [`CoreError::NoFeasibleWidth`] only when a *single channel* is
    ///   infeasible on its own — no amount of splitting can help then.
    pub fn generate_with_split(
        &self,
        system: &System,
        channels: &[ChannelId],
    ) -> Result<SplitOutcome, CoreError> {
        match self.generate(system, channels) {
            Ok(design) => Ok(SplitOutcome {
                buses: vec![design],
            }),
            Err(CoreError::NoFeasibleWidth { exploration }) => {
                if channels.len() <= 1 {
                    return Err(CoreError::NoFeasibleWidth { exploration });
                }
                let (left, right) = bisect_by_load(system, channels, &exploration);
                let mut buses = self.generate_with_split(system, &left)?.buses;
                buses.extend(self.generate_with_split(system, &right)?.buses);
                Ok(SplitOutcome { buses })
            }
            Err(other) => Err(other),
        }
    }
}

/// Splits channels into two groups with balanced average-rate load,
/// using the rates observed at the widest explored width.
fn bisect_by_load(
    system: &System,
    channels: &[ChannelId],
    exploration: &crate::busgen::Exploration,
) -> (Vec<ChannelId>, Vec<ChannelId>) {
    let metrics = exploration
        .rows
        .last()
        .map(|r| &r.metrics)
        .cloned()
        .unwrap_or_default();
    // Longest-processing-time first: sort by rate descending, then place
    // each channel in the lighter group.
    let mut sorted: Vec<ChannelId> = channels.to_vec();
    sorted.sort_by(|&a, &b| {
        metrics
            .ave_rate(b)
            .partial_cmp(&metrics.ave_rate(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                system
                    .channel(b)
                    .total_bits()
                    .cmp(&system.channel(a).total_bits())
            })
    });
    let mut left = Vec::new();
    let mut right = Vec::new();
    let (mut load_l, mut load_r) = (0.0f64, 0.0f64);
    for ch in sorted {
        let rate = metrics.ave_rate(ch).max(1e-12);
        if load_l <= load_r {
            left.push(ch);
            load_l += rate;
        } else {
            right.push(ch);
            load_r += rate;
        }
    }
    // Guard against degenerate splits (all rates equal to zero, say).
    if left.is_empty() {
        left.push(right.pop().expect("nonempty group"));
    } else if right.is_empty() {
        right.push(left.pop().expect("nonempty group"));
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, Ty};

    /// `n` saturating writers (zero compute between accesses).
    fn hot_system(n: usize) -> (System, Vec<ChannelId>) {
        let mut sys = System::new("hot");
        let m1 = sys.add_module("m1");
        let m2 = sys.add_module("m2");
        let store = sys.add_behavior("store", m2);
        let mut chans = Vec::new();
        for k in 0..n {
            let b = sys.add_behavior(format!("P{k}"), m1);
            let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 16), store);
            let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
            let ch = sys.add_channel(Channel {
                name: format!("ch{k}"),
                accessor: b,
                variable: v,
                direction: ChannelDirection::Write,
                data_bits: 16,
                addr_bits: 4,
                accesses: 16,
            });
            sys.behavior_mut(b).body = vec![for_loop(
                var(i),
                int_const(0, 16),
                int_const(15, 16),
                vec![send_at(ch, load(var(i)), load(var(i)))],
            )];
            chans.push(ch);
        }
        (sys, chans)
    }

    #[test]
    fn feasible_group_yields_single_bus() {
        let (sys, chans) = hot_system(1);
        let out = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .unwrap();
        assert_eq!(out.bus_count(), 1);
    }

    #[test]
    fn overloaded_group_splits_until_feasible() {
        let (sys, chans) = hot_system(3);
        // Three saturating channels cannot share one bus (checked by the
        // busgen test suite); splitting must produce feasible groups.
        let out = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .unwrap();
        assert!(out.bus_count() >= 2, "expected a split, got 1 bus");
        let covered: usize = out.buses.iter().map(|b| b.channels.len()).sum();
        assert_eq!(covered, chans.len());
        for bus in &out.buses {
            assert!(bus.bus_rate >= bus.sum_ave_rates);
        }
    }

    #[test]
    fn split_preserves_channel_partition() {
        let (sys, chans) = hot_system(4);
        let out = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .unwrap();
        let mut seen: Vec<ChannelId> = out
            .buses
            .iter()
            .flat_map(|b| b.channels.iter().copied())
            .collect();
        seen.sort();
        let mut expect = chans.clone();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn total_wires_accounts_all_buses() {
        let (sys, chans) = hot_system(3);
        let out = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .unwrap();
        let sum: u32 = out.buses.iter().map(BusDesign::total_wires).sum();
        assert_eq!(out.total_wires(), sum);
    }

    #[test]
    fn single_infeasible_channel_still_errors() {
        // One channel that saturates even the widest bus cannot be fixed
        // by splitting. Construct: every access is back-to-back and the
        // message equals the max width, so sum_ave_rates ~ m/2 per access
        // time of exactly the transfer -> rate = m/2... actually a single
        // saturating channel has rate = bus rate, which *is* feasible.
        // So instead verify the recursion terminates with one channel
        // per bus at worst.
        let (sys, chans) = hot_system(5);
        let out = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .unwrap();
        assert!(out.bus_count() <= chans.len());
    }
}

//! Property tests for the core algorithms: word planning, the cost
//! function, and bus generation.

use ifsyn_core::{BusGenerator, Constraint, WidthMetrics, WordDir, WordPlan};
use ifsyn_spec::dsl::*;
use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{BehaviorId, Channel, ChannelDirection, ChannelId, System, Ty, VarId};

fn channel(direction: ChannelDirection, data: u32, addr: u32) -> Channel {
    Channel {
        name: "ch".into(),
        accessor: BehaviorId::new(0),
        variable: VarId::new(0),
        direction,
        data_bits: data,
        addr_bits: addr,
        accesses: 1,
    }
}

#[test]
fn word_plan_partitions_the_message() {
    let mut rng = SplitMix64::new(0xc0_01);
    for _ in 0..300 {
        let data = rng.range_u32(1, 63);
        let addr = rng.range_u32(0, 15);
        let width = rng.range_u32(1, 79);
        let dir = if rng.bool() {
            ChannelDirection::Read
        } else {
            ChannelDirection::Write
        };
        let ch = channel(dir, data, addr);
        let plan = WordPlan::for_channel(&ch, width);
        let m = data + addr;
        // Exactly ceil(m/width) words.
        assert_eq!(plan.word_count(), m.div_ceil(width));
        // Contiguous, non-overlapping, complete coverage.
        let mut next = 0u32;
        for w in &plan.words {
            assert_eq!(w.msg_lo, next);
            assert!(w.msg_hi >= w.msg_lo);
            assert!(w.bits() <= width);
            next = w.msg_hi + 1;
        }
        assert_eq!(next, m);
    }
}

#[test]
fn word_plan_directions_are_ordered() {
    let mut rng = SplitMix64::new(0xc0_02);
    for _ in 0..300 {
        let data = rng.range_u32(1, 63);
        let addr = rng.range_u32(1, 15);
        let width = rng.range_u32(1, 79);
        // For reads: Request* (Mixed)? Response* — never interleaved.
        let ch = channel(ChannelDirection::Read, data, addr);
        let plan = WordPlan::for_channel(&ch, width);
        let mut phase = 0; // 0 request, 1 mixed, 2 response
        for w in &plan.words {
            let p = match w.dir {
                WordDir::Request => 0,
                WordDir::Mixed => 1,
                WordDir::Response => 2,
            };
            assert!(p >= phase, "direction went backwards");
            phase = p;
        }
        // At most one mixed word.
        let mixed = plan
            .words
            .iter()
            .filter(|w| w.dir == WordDir::Mixed)
            .count();
        assert!(mixed <= 1);
    }
}

#[test]
fn cost_is_zero_iff_all_constraints_hold() {
    let mut rng = SplitMix64::new(0xc0_03);
    for _ in 0..300 {
        let width = rng.range_u32(1, 63);
        let bound = rng.range_u32(1, 63);
        let weight = 0.1 + rng.below(1000) as f64 / 10.0;
        let metrics = WidthMetrics {
            width,
            bus_rate: f64::from(width) / 2.0,
            ..Default::default()
        };
        let min_c = Constraint::min_bus_width(bound, weight);
        let max_c = Constraint::max_bus_width(bound, weight);
        assert_eq!(min_c.cost(&metrics) == 0.0, width >= bound);
        assert_eq!(max_c.cost(&metrics) == 0.0, width <= bound);
        assert!(min_c.cost(&metrics) >= 0.0);
        assert!(max_c.cost(&metrics) >= 0.0);
    }
}

#[test]
fn cost_scales_linearly_with_weight() {
    let mut rng = SplitMix64::new(0xc0_04);
    for _ in 0..300 {
        let width = rng.range_u32(1, 39);
        let bound = rng.range_u32(1, 39);
        let weight = 0.5 + rng.below(95) as f64 / 10.0;
        let metrics = WidthMetrics {
            width,
            ..Default::default()
        };
        let c1 = Constraint::min_bus_width(bound, weight).cost(&metrics);
        let c2 = Constraint::min_bus_width(bound, 2.0 * weight).cost(&metrics);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
    }
}

#[test]
fn min_width_cost_decreases_as_width_grows() {
    for bound in 2u32..40 {
        let c = Constraint::min_bus_width(bound, 1.0);
        let mut last = f64::INFINITY;
        for width in 1..=bound + 4 {
            let metrics = WidthMetrics {
                width,
                ..Default::default()
            };
            let cost = c.cost(&metrics);
            assert!(cost <= last);
            last = cost;
        }
    }
}

/// A padded writer system (feasible at some width).
fn padded_system(compute: u64, accesses: i64) -> (System, ChannelId) {
    let mut sys = System::new("p");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let v = sys.add_variable("V", Ty::array(Ty::Int(16), 128), store);
    let b = sys.add_behavior("P", m1);
    let i = sys.add_variable("i", Ty::Int(16), b);
    let ch = sys.add_channel(Channel {
        name: "ch".into(),
        accessor: b,
        variable: v,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 7,
        accesses: accesses as u64,
    });
    sys.behavior_mut(b).body = vec![for_loop(
        var(i),
        int_const(0, 16),
        int_const(accesses - 1, 16),
        vec![
            ifsyn_spec::Stmt::compute(compute, "pad"),
            send_at(ch, load(var(i)), load(var(i))),
        ],
    )];
    (sys, ch)
}

#[test]
fn generation_picks_minimum_cost_then_minimum_width() {
    let mut rng = SplitMix64::new(0xc0_05);
    for _ in 0..32 {
        let compute = rng.range_u64(2, 19);
        let bound = rng.range_u32(2, 22);
        let (sys, ch) = padded_system(compute, 32);
        let generator = BusGenerator::new().constraint(Constraint::min_bus_width(bound, 1.0));
        match generator.generate(&sys, &[ch]) {
            Ok(design) => {
                // No feasible width can be strictly cheaper, and among
                // equal-cost feasible widths ours is the narrowest.
                for row in design.exploration.feasible() {
                    let cost = row.cost.expect("feasible rows have costs");
                    assert!(cost >= design.cost - 1e-12);
                    if (cost - design.cost).abs() < 1e-12 {
                        assert!(row.width >= design.width);
                    }
                }
            }
            Err(ifsyn_core::CoreError::NoFeasibleWidth { .. }) => {
                // Acceptable for very small compute paddings.
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}

#[test]
fn feasibility_is_monotone_in_width() {
    for compute in 1u64..20 {
        let (sys, ch) = padded_system(compute, 32);
        let expl = BusGenerator::new().explore(&sys, &[ch]).unwrap();
        let mut seen = false;
        for row in &expl.rows {
            if seen {
                assert!(row.feasible, "width {} regressed", row.width);
            }
            seen |= row.feasible;
        }
    }
}

#[test]
fn average_rate_never_exceeds_bus_rate_at_selected_width() {
    for compute in 2u64..20 {
        let (sys, ch) = padded_system(compute, 32);
        if let Ok(design) = BusGenerator::new().generate(&sys, &[ch]) {
            assert!(design.sum_ave_rates <= design.bus_rate + 1e-12);
        }
    }
}

//! Round-trip tests of the simulator's VCD emitter through the
//! analyzer's parser: what `ifsyn_sim::vcd` writes, `ifsyn_analyze::vcd`
//! must read back losslessly.

use ifsyn_analyze::vcd::parse_vcd;
use ifsyn_sim::trace::{emit_trace, MemorySink};
use ifsyn_sim::{vcd, SimConfig, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::{System, Ty, Value};

fn traced(sys: &System) -> ifsyn_sim::SimReport {
    Simulator::with_config(sys, SimConfig::new().with_trace())
        .unwrap()
        .run_to_quiescence()
        .unwrap()
}

#[test]
fn round_trip_preserves_names_initials_and_events() {
    let mut sys = System::new("rt");
    let m = sys.add_module("chip");
    let req = sys.add_signal("REQ", Ty::Bit);
    let data = sys.add_signal("DATA", Ty::Bits(16));
    let b = sys.add_behavior("P", m);
    sys.behavior_mut(b).body = vec![
        drive_cost(data, bits_const(0xbeef, 16), 1),
        drive_cost(req, bit_const(true), 1),
        drive_cost(data, bits_const(0x1234, 16), 2),
        drive_cost(req, bit_const(false), 1),
    ];
    let report = traced(&sys);
    let mut mem = MemorySink::new();
    emit_trace(&sys, &report, &mut mem);

    let parsed = parse_vcd(&vcd::to_vcd_string(&sys, &report)).unwrap();
    assert_eq!(
        parsed
            .vars
            .iter()
            .map(|v| v.name.as_str())
            .collect::<Vec<_>>(),
        vec!["REQ", "DATA"]
    );
    assert_eq!(parsed.vars[1].width, 16);
    // Initial values: Int/Bits initials come back as raw bit vectors.
    assert_eq!(parsed.initials[0], Value::Bit(false));
    assert_eq!(parsed.initials[1].to_bits().to_u64(), 0);
    // Events: same times, same signals (by index), same bit patterns.
    assert_eq!(parsed.events.len(), mem.events.len());
    for (p, m) in parsed.events.iter().zip(&mem.events) {
        assert_eq!(p.time, m.time);
        assert_eq!(p.signal, m.signal);
        assert_eq!(p.value.to_bits(), m.value.to_bits());
    }
    assert_eq!(parsed.end_time, mem.end_time);
}

#[test]
fn wide_vectors_survive_the_round_trip() {
    // A 100-bit signal with bits set above position 64: the emitter must
    // print all 100 bits MSB-first and the parser must rebuild them.
    let mut sys = System::new("wide");
    let m = sys.add_module("chip");
    let wide = sys.add_signal("WIDE", Ty::Bits(100));
    let b = sys.add_behavior("P", m);
    // concat(hi 36 bits, lo 64 bits) -> 100 bits with high bits set.
    let value = concat(
        bits_const(0xf_feed_cafe, 36),
        bits_const(0xdead_beef_0123_4567, 64),
    );
    sys.behavior_mut(b).body = vec![drive_cost(wide, value, 1)];
    let report = traced(&sys);

    let text = vcd::to_vcd_string(&sys, &report);
    let parsed = parse_vcd(&text).unwrap();
    assert_eq!(parsed.vars[0].width, 100);
    let got = parsed.events.last().unwrap().value.to_bits();
    let want = report.trace().last().unwrap().value.to_bits();
    assert_eq!(got.width(), 100);
    assert_eq!(got, want);
    // Spot-check that bits above position 64 really are set.
    assert!((64..100).any(|i| got.bit(i)), "high bits lost: {got}");
}

#[test]
fn timestamps_are_monotone_and_accepted() {
    // The parser rejects backwards time, so a clean parse of a real dump
    // doubles as a monotonicity check of the emitter.
    let mut sys = System::new("mono");
    let m = sys.add_module("chip");
    let s = sys.add_signal("S", Ty::Bit);
    let t = sys.add_signal("T", Ty::Bit);
    let b1 = sys.add_behavior("P1", m);
    let b2 = sys.add_behavior("P2", m);
    sys.behavior_mut(b1).body = vec![
        drive_cost(s, bit_const(true), 1),
        drive_cost(s, bit_const(false), 3),
        drive_cost(s, bit_const(true), 2),
    ];
    sys.behavior_mut(b2).body = vec![
        drive_cost(t, bit_const(true), 2),
        drive_cost(t, bit_const(false), 2),
    ];
    let report = traced(&sys);
    let parsed = parse_vcd(&vcd::to_vcd_string(&sys, &report)).unwrap();
    for pair in parsed.events.windows(2) {
        assert!(pair[0].time <= pair[1].time);
    }
    assert!(parsed.end_time >= parsed.events.last().unwrap().time);
}

#[test]
fn identifier_codes_stay_unique_past_the_single_char_range() {
    // More signals than printable one-char codes (94): the emitter must
    // switch to multi-char codes without collisions — the parser errors
    // on duplicates, so a clean parse proves uniqueness.
    let mut sys = System::new("many");
    let m = sys.add_module("chip");
    let signals: Vec<_> = (0..200)
        .map(|i| sys.add_signal(format!("S{i}"), Ty::Bit))
        .collect();
    let b = sys.add_behavior("P", m);
    // Touch the last signal so codes appear in the change section too.
    sys.behavior_mut(b).body = vec![drive_cost(*signals.last().unwrap(), bit_const(true), 1)];
    let report = traced(&sys);
    let parsed = parse_vcd(&vcd::to_vcd_string(&sys, &report)).unwrap();
    assert_eq!(parsed.vars.len(), 200);
    assert_eq!(parsed.vars[199].name, "S199");
    assert_eq!(parsed.events.len(), 1);
    assert_eq!(parsed.events[0].signal.index(), 199);
}

//! End-to-end analytics over the paper's FLC example: metadata export,
//! report-path vs VCD-path agreement, the estimated-vs-observed
//! cross-check, and convergence of the calibration loop.

use ifsyn_analyze::{
    analyze_report, analyze_vcd, calibrate, simulate_and_analyze, BusMeta, CalibrationOptions,
};
use ifsyn_core::{BusDesign, BusGenerator, ProtocolGenerator, ProtocolKind};
use ifsyn_estimate::{ChannelRates, ChannelTimings};
use ifsyn_sim::{vcd, SimConfig, Simulator};
use ifsyn_systems::flc;

#[test]
fn sidecar_export_matches_in_process_metadata() {
    // The VHDL-layer JSON export and the analyzer's own extraction must
    // describe the same bus identically.
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let from_sidecar = BusMeta::from_json(&ifsyn_vhdl::bus_metadata_json(&refined)).unwrap();
    assert_eq!(from_sidecar, BusMeta::from_refined(&refined));
}

#[test]
fn alone_on_the_bus_observed_rate_equals_static_estimate() {
    // The calibration invariant: for a process alone on its bus the
    // simulator reproduces the analytic execution time exactly (the
    // Fig. 7 cross-check), so the measured rate must equal the static
    // estimate and the calibration scale factor must be 1.
    let f = flc::flc();
    for width in [4u32, 8, 16] {
        let design = BusDesign::with_width(vec![f.ch1], width, ProtocolKind::FullHandshake);
        let analysis = simulate_and_analyze(&f.system, &design, 2_000_000).unwrap();
        let timings = ChannelTimings::uniform(&[f.ch1], ProtocolKind::FullHandshake.timing(width));
        let estimated = ChannelRates::new()
            .average_rate(&f.system, f.ch1, &timings)
            .unwrap();
        let observed = analysis.observed_rate("ch1").unwrap();
        assert!(
            (observed - estimated).abs() < 1e-9,
            "width {width}: observed {observed} != estimated {estimated}"
        );
    }
}

#[test]
fn shared_bus_reports_contention_the_estimator_misses() {
    // Two channels arbitrating for a narrow bus: each accessor
    // stretches (Fig. 7's shared columns exceed the alone columns below
    // width 8), so observed rates fall below the static estimates.
    let f = flc::flc();
    let width = 4;
    let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
    let analysis = simulate_and_analyze(&f.system, &design, 2_000_000).unwrap();
    assert_eq!(analysis.width, width);
    assert_eq!(analysis.channels.len(), 2);
    let timings =
        ChannelTimings::uniform(&f.bus_channels(), ProtocolKind::FullHandshake.timing(width));
    for (ch, name) in [(f.ch1, "ch1"), (f.ch2, "ch2")] {
        let estimated = ChannelRates::new()
            .average_rate(&f.system, ch, &timings)
            .unwrap();
        let observed = analysis.observed_rate(name).unwrap();
        assert!(
            observed < estimated,
            "{name}: contention must lower the rate ({observed} vs {estimated})"
        );
        assert!(observed > 0.0, "{name} moved data");
    }
    // All 128 messages of each channel were seen.
    for ch in &analysis.channels {
        assert_eq!(ch.messages, flc::FLC_ACCESSES, "{}", ch.name);
        assert!(ch.runs >= 1);
    }
    assert!(analysis.utilization > 0.0 && analysis.utilization <= 1.0);
    assert!(analysis.response_latency.count() == analysis.words);
}

#[test]
fn vcd_path_agrees_with_report_path() {
    // Analysing the written-out VCD must reproduce the in-memory
    // analysis except for channel lifetimes (behavior finish times are
    // not recorded in VCD, so rates use last-activity lifetimes there).
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), 6, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
    let config = SimConfig::new()
        .with_trace()
        .with_max_trace_events(2_000_000);
    let report = Simulator::with_config(&refined.system, config)
        .unwrap()
        .run_to_quiescence()
        .unwrap();
    let meta = BusMeta::from_refined(&refined);
    let live = analyze_report(&refined.system, &report, &meta).unwrap();
    let offline = analyze_vcd(&vcd::to_vcd_string(&refined.system, &report), &meta).unwrap();
    assert_eq!(offline.words, live.words);
    assert_eq!(offline.busy_cycles, live.busy_cycles);
    assert_eq!(offline.utilization, live.utilization);
    assert_eq!(offline.backpressure_cycles, live.backpressure_cycles);
    assert_eq!(offline.response_latency, live.response_latency);
    assert_eq!(offline.transfer_gap, live.transfer_gap);
    for (o, l) in offline.channels.iter().zip(&live.channels) {
        assert_eq!(o.words, l.words);
        assert_eq!(o.messages, l.messages);
        assert_eq!(o.runs, l.runs);
        assert_eq!(o.max_run_words, l.max_run_words);
    }
}

#[test]
fn calibration_on_the_shared_flc_reaches_a_fixed_point() {
    // Measured rates under contention are *lower* than the estimates
    // (the accessor stretches while arbitrating), which relaxes Eq. 1;
    // the loop therefore walks the width down, never up, and must end
    // on a width that re-selects itself.
    let f = flc::flc();
    let generator = BusGenerator::new();
    let report = calibrate(
        &f.system,
        &f.bus_channels(),
        &generator,
        CalibrationOptions::default(),
    )
    .unwrap();
    assert!(
        report.converged,
        "loop must reach a fixed point:\n{}",
        report.render()
    );
    assert!(!report.steps.is_empty());
    let first = &report.steps[0];
    assert_eq!(first.width, report.initial_width);
    // At the statically selected width CONV_R2 is stretched by
    // arbitration (Fig. 7: shared > alone) while EVAL_R3 happens to
    // interleave cleanly; every factor stays in (0, 1].
    for ch in &first.channels {
        assert!(
            ch.scale > 0.0 && ch.scale <= 1.0,
            "{}: {}",
            ch.name,
            ch.scale
        );
    }
    assert!(
        first.channels.iter().any(|c| c.scale < 0.999),
        "some contention must be measured:\n{}",
        report.render()
    );
    assert!(report.final_width <= report.initial_width);
    // The report's final analysis corresponds to the final width.
    assert_eq!(
        report.final_analysis.width,
        report.steps.last().unwrap().width
    );
}

#[test]
fn calibration_walks_down_and_converges_under_heavy_contention() {
    // Three same-shaped writer processes: static selection prices each
    // channel as if alone, picks a wide bus, and the first traced run
    // measures heavy arbitration losses. The loop must walk the width
    // monotonically down through several iterations and still converge.
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, Stmt, System, Ty};

    let mut sys = System::new("trio");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    for (k, compute) in [(0u32, 6u64), (1, 4), (2, 5)] {
        let b = sys.add_behavior(format!("P{k}"), m1);
        let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 128), store);
        let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("ch{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: 128,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(127, 16),
            vec![
                Stmt::compute(compute, "work"),
                send_at(ch, load(var(i)), load(var(i))),
            ],
        )];
        chans.push(ch);
    }

    let report = calibrate(
        &sys,
        &chans,
        &BusGenerator::new(),
        CalibrationOptions::default(),
    )
    .unwrap();
    assert!(report.converged, "{}", report.render());
    assert!(
        report.steps.len() >= 2,
        "expected movement:\n{}",
        report.render()
    );
    assert!(
        report.final_width < report.initial_width,
        "measured contention must narrow the bus:\n{}",
        report.render()
    );
    for pair in report.steps.windows(2) {
        assert!(pair[1].width <= pair[0].width, "widths must not climb");
        assert_eq!(pair[0].next_width, pair[1].width);
    }
    let last = report.steps.last().unwrap();
    assert_eq!(last.next_width, last.width, "fixed point");
    // Heavy sharing: every channel's estimate overshoots what the trace
    // measured, in every iteration.
    for step in &report.steps {
        for ch in &step.channels {
            assert!(ch.observed_rate < ch.estimated_rate, "{}", ch.name);
            assert!(ch.relative_error() > 0.0);
        }
    }
}

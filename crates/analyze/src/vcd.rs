//! VCD ingestion: parse the simulator's dump back into a signal trace.
//!
//! Reads the subset of IEEE 1364 VCD the workspace emits
//! (`ifsyn_sim::vcd`): one scope of `wire` variables, scalar `0c`/`1c`
//! changes and `b<bits> <code>` vector changes under `#time` markers.
//! Unknown header commands are skipped, and `x`/`z` scalar states are
//! read as `0`, so dumps from other tools in the same shape also load.
//!
//! The result re-uses the simulator's [`TraceEvent`] with synthetic
//! [`SignalId`]s indexing the parsed variable table — exactly the shape
//! [`crate::analyzer`] and `ifsyn_sim::analysis::handshake_words`
//! consume, making VCD-on-disk and in-memory traces interchangeable.

use std::collections::HashMap;

use ifsyn_sim::TraceEvent;
use ifsyn_spec::{BitVec, SignalId, Value};

use crate::error::AnalyzeError;

/// One `$var` declaration from the VCD header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdVar {
    /// Declared signal name (without the `[msb:0]` range suffix).
    pub name: String,
    /// Declared width in bits.
    pub width: u32,
    /// The identifier code changes are keyed by.
    pub code: String,
}

/// A parsed VCD document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedVcd {
    /// Declared variables; a variable's index is its [`SignalId`] in
    /// `initials` and `events`.
    pub vars: Vec<VcdVar>,
    /// Initial value per variable (from `$dumpvars`), in `vars` order.
    pub initials: Vec<Value>,
    /// Value changes in file order, with times from `#` markers.
    pub events: Vec<TraceEvent>,
    /// The last `#time` marker in the file.
    pub end_time: u64,
}

impl ParsedVcd {
    /// Index of the variable declared with `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// The synthetic [`SignalId`] of the variable declared with `name`.
    pub fn signal(&self, name: &str) -> Option<SignalId> {
        self.index_of(name).map(|i| SignalId::new(i as u32))
    }
}

/// Parses VCD text.
///
/// # Errors
///
/// Returns [`AnalyzeError::Vcd`] on unknown identifier codes, malformed
/// vector values, or times that run backwards.
pub fn parse_vcd(text: &str) -> Result<ParsedVcd, AnalyzeError> {
    let mut vars: Vec<VcdVar> = Vec::new();
    let mut by_code: HashMap<String, usize> = HashMap::new();
    let mut initials: Vec<Option<Value>> = Vec::new();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut time: Option<u64> = None;
    let mut end_time = 0u64;
    let err = |line: usize, message: String| AnalyzeError::Vcd { line, message };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line == "$end" || line == "$dumpvars" {
            continue;
        }
        if let Some(rest) = line.strip_prefix('$') {
            if rest.starts_with("var") {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                // $var wire <width> <code> <name> [range] $end
                if tokens.len() < 5 {
                    return Err(err(lineno, "malformed $var declaration".into()));
                }
                let width: u32 = tokens[2]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad $var width `{}`", tokens[2])))?;
                let code = tokens[3].to_string();
                if by_code.contains_key(&code) {
                    return Err(err(lineno, format!("duplicate identifier code `{code}`")));
                }
                by_code.insert(code.clone(), vars.len());
                vars.push(VcdVar {
                    name: tokens[4].to_string(),
                    width,
                    code,
                });
                initials.push(None);
            }
            // Other $-commands ($comment, $timescale, $scope, ...) carry
            // nothing the analyzer needs.
            continue;
        }
        if let Some(t) = line.strip_prefix('#') {
            let t: u64 = t
                .parse()
                .map_err(|_| err(lineno, format!("bad time marker `{line}`")))?;
            if t < end_time {
                return Err(err(
                    lineno,
                    format!("time runs backwards: #{t} after #{end_time}"),
                ));
            }
            time = Some(t);
            end_time = t;
            continue;
        }
        let (value, code) = if let Some(rest) = line.strip_prefix('b') {
            // Vector: b<MSB-first bits> <code>
            let (bits, code) = rest
                .split_once(' ')
                .ok_or_else(|| err(lineno, "vector change without identifier".into()))?;
            let value = Value::Bits(BitVec::from_bits_lsb_first(
                bits.chars().rev().map(|c| c == '1'),
            ));
            (value, code.trim())
        } else {
            // Scalar: <state><code>, state in 01xzXZ.
            let mut chars = line.chars();
            let state = chars.next().unwrap_or('0');
            if !matches!(state, '0' | '1' | 'x' | 'z' | 'X' | 'Z') {
                return Err(err(lineno, format!("unrecognised change `{line}`")));
            }
            (Value::Bit(state == '1'), chars.as_str())
        };
        let &index = by_code
            .get(code)
            .ok_or_else(|| err(lineno, format!("unknown identifier code `{code}`")))?;
        match time {
            // Before the first #time marker: this is the initial dump.
            None => initials[index] = Some(value),
            Some(t) => events.push(TraceEvent {
                time: t,
                signal: SignalId::new(index as u32),
                value,
            }),
        }
    }

    let initials = initials
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            v.map(Ok).unwrap_or_else(|| {
                // A well-formed dump initialises everything; default to
                // zero of the declared width for partial dumps.
                let var = &vars[i];
                Ok(if var.width == 1 {
                    Value::Bit(false)
                } else {
                    Value::Bits(BitVec::from_u64(0, var.width))
                })
            })
        })
        .collect::<Result<Vec<_>, AnalyzeError>>()?;

    Ok(ParsedVcd {
        vars,
        initials,
        events,
        end_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
$comment interface-synthesis simulation of t $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! REQ $end
$var wire 8 \" DATA [7:0] $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
b00000000 \"
$end
#1
b10100101 \"
#2
1!
#4
0!
";

    #[test]
    fn parses_vars_initials_and_events() {
        let vcd = parse_vcd(SAMPLE).unwrap();
        assert_eq!(vcd.vars.len(), 2);
        assert_eq!(vcd.vars[0].name, "REQ");
        assert_eq!(vcd.vars[1].width, 8);
        assert_eq!(vcd.initials[0], Value::Bit(false));
        assert_eq!(vcd.initials[1], Value::Bits(BitVec::from_u64(0, 8)));
        assert_eq!(vcd.events.len(), 3);
        assert_eq!(vcd.events[0].time, 1);
        assert_eq!(vcd.events[0].value, Value::Bits(BitVec::from_u64(0xa5, 8)));
        assert_eq!(
            vcd.events[1],
            TraceEvent {
                time: 2,
                signal: SignalId::new(0),
                value: Value::Bit(true),
            }
        );
        assert_eq!(vcd.end_time, 4);
        assert_eq!(vcd.signal("DATA"), Some(SignalId::new(1)));
        assert_eq!(vcd.signal("NOPE"), None);
    }

    #[test]
    fn rejects_backwards_time_and_unknown_codes() {
        assert!(matches!(
            parse_vcd("#5\n#3\n"),
            Err(AnalyzeError::Vcd { line: 2, .. })
        ));
        assert!(matches!(
            parse_vcd("$var wire 1 ! A $end\n#1\n1?\n"),
            Err(AnalyzeError::Vcd { line: 3, .. })
        ));
    }

    #[test]
    fn duplicate_codes_are_rejected() {
        let text = "$var wire 1 ! A $end\n$var wire 1 ! B $end\n";
        assert!(matches!(
            parse_vcd(text),
            Err(AnalyzeError::Vcd { line: 2, .. })
        ));
    }

    #[test]
    fn x_and_z_states_read_as_low() {
        let vcd = parse_vcd("$var wire 1 ! A $end\n#1\nx!\n#2\nz!\n").unwrap();
        assert!(vcd.events.iter().all(|e| e.value == Value::Bit(false)));
    }
}

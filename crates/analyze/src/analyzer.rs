//! The bus analyzer: traffic metrics from a recorded trace.
//!
//! Consumes either a live simulation report ([`analyze_report`]) or a
//! VCD file parsed back from disk ([`analyze_vcd`]), plus the
//! [`BusMeta`] sidecar describing the wires, and produces a
//! [`BusAnalysis`]: bus utilization and idle time, per-word
//! command-to-response and transfer-to-transfer latency histograms,
//! backpressure, and per-channel observed transfer rates — the measured
//! counterpart of the static estimates that drove width selection
//! (`ifsyn_estimate::ChannelRates`).

use std::fmt::Write as _;

use ifsyn_sim::analysis::{handshake_words, WordTx};
use ifsyn_sim::{SimReport, TraceEvent};
use ifsyn_spec::{SignalId, System};

use crate::error::AnalyzeError;
use crate::hist::Histogram;
use crate::meta::BusMeta;
use crate::vcd::parse_vcd;

/// Measured traffic of one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTraffic {
    /// Channel name.
    pub name: String,
    /// ID code the traffic was attributed by, if the bus has ID lines.
    pub id_code: Option<u64>,
    /// Bus words observed for this channel.
    pub words: u64,
    /// Complete messages (words / words-per-message).
    pub messages: u64,
    /// Message payload bits moved (messages × message bits).
    pub bits: u64,
    /// The lifetime the rate is computed over, in clocks: the accessor's
    /// finish time when known, else the channel's last bus activity.
    pub lifetime: u64,
    /// Observed average transfer rate, bits/clock — directly comparable
    /// to the paper's estimated average rate for this channel.
    pub observed_rate: f64,
    /// Maximal runs of consecutive words on this channel.
    pub runs: u64,
    /// Longest run, in words.
    pub max_run_words: u64,
    /// Command-to-response latency of this channel's words.
    pub response_latency: Histogram,
}

/// The full analysis of one bus over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct BusAnalysis {
    /// Bus name.
    pub bus: String,
    /// Protocol name.
    pub protocol: String,
    /// Bus width in data lines.
    pub width: u32,
    /// End of the analysed window (final simulation time).
    pub end_time: u64,
    /// Total words observed on the bus.
    pub words: u64,
    /// Cycles the bus spent inside a word transfer.
    pub busy_cycles: u64,
    /// Cycles the bus spent idle (`end_time - busy`).
    pub idle_cycles: u64,
    /// `busy / end_time` (0 for a zero-length run).
    pub utilization: f64,
    /// Cycles lost to responses slower than the protocol's nominal
    /// 1-cycle command-to-response, summed over all words.
    pub backpressure_cycles: u64,
    /// Command-to-response latency (`DONE`↑ − `START`↑) over all words.
    pub response_latency: Histogram,
    /// Transfer-to-transfer delay (consecutive `START`↑ spacing).
    pub transfer_gap: Histogram,
    /// Per-channel traffic, in metadata order.
    pub channels: Vec<ChannelTraffic>,
}

/// Analyzes a live simulation report against its bus metadata.
///
/// Signal names from the metadata are resolved in `system`; channel
/// lifetimes use the accessor behaviors' finish times, so observed rates
/// are computed over exactly the same lifetime the static estimator
/// uses.
///
/// # Errors
///
/// [`AnalyzeError::MissingSignal`] when the metadata names a signal the
/// system lacks; [`AnalyzeError::EmptyTrace`] when tracing was off.
pub fn analyze_report(
    system: &System,
    report: &SimReport,
    meta: &BusMeta,
) -> Result<BusAnalysis, AnalyzeError> {
    let lookup = |name: &str| {
        system
            .signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId::new(i as u32))
    };
    let resolved = ResolvedSignals::resolve(meta, lookup)?;
    let initial_id = resolved
        .id
        .map(|sig| system.signal(sig).initial_value().to_bits().to_u64());
    let lifetime_of = |accessor: &str| {
        system
            .behavior_by_name(accessor)
            .and_then(|b| report.finish_time(b))
    };
    analyze_events(
        meta,
        report.trace(),
        &resolved,
        initial_id,
        report.time(),
        &lifetime_of,
    )
}

/// Analyzes a VCD dump against its bus metadata sidecar.
///
/// Behavior finish times are not recorded in a VCD file, so channel
/// lifetimes fall back to each channel's last bus activity.
///
/// # Errors
///
/// VCD parse errors, [`AnalyzeError::MissingSignal`], or
/// [`AnalyzeError::EmptyTrace`] for a changeless dump.
pub fn analyze_vcd(text: &str, meta: &BusMeta) -> Result<BusAnalysis, AnalyzeError> {
    let vcd = parse_vcd(text)?;
    let resolved = ResolvedSignals::resolve(meta, |name| vcd.signal(name))?;
    let initial_id = resolved
        .id
        .map(|sig| vcd.initials[sig.index()].to_bits().to_u64());
    analyze_events(
        meta,
        &vcd.events,
        &resolved,
        initial_id,
        vcd.end_time,
        &|_| None,
    )
}

/// The metadata's signal names resolved to trace signal ids.
struct ResolvedSignals {
    start: SignalId,
    done: Option<SignalId>,
    id: Option<SignalId>,
}

impl ResolvedSignals {
    fn resolve(
        meta: &BusMeta,
        lookup: impl Fn(&str) -> Option<SignalId>,
    ) -> Result<Self, AnalyzeError> {
        let require = |name: &Option<String>| -> Result<Option<SignalId>, AnalyzeError> {
            match name {
                None => Ok(None),
                Some(n) => lookup(n)
                    .map(Some)
                    .ok_or_else(|| AnalyzeError::MissingSignal(n.clone())),
            }
        };
        let start = require(&meta.start)?
            .ok_or_else(|| AnalyzeError::Meta("bus has no START line to analyse".into()))?;
        Ok(Self {
            start,
            done: require(&meta.done)?,
            id: require(&meta.id)?,
        })
    }
}

fn analyze_events(
    meta: &BusMeta,
    events: &[TraceEvent],
    signals: &ResolvedSignals,
    initial_id: Option<u64>,
    end_time: u64,
    lifetime_of: &dyn Fn(&str) -> Option<u64>,
) -> Result<BusAnalysis, AnalyzeError> {
    if events.is_empty() {
        return Err(AnalyzeError::EmptyTrace);
    }
    let words = handshake_words(events, signals.start, signals.done, signals.id, initial_id);
    let nominal_word = u64::from(meta.cycles_per_word.max(1));

    let mut busy = 0u64;
    let mut backpressure = 0u64;
    let mut response = Histogram::new();
    let mut gap = Histogram::new();
    for (i, w) in words.iter().enumerate() {
        busy += w.occupancy().unwrap_or(nominal_word);
        if let Some(lat) = w.response_latency() {
            response.record(lat);
            backpressure += lat.saturating_sub(1);
        }
        if i > 0 {
            gap.record(w.start_rise - words[i - 1].start_rise);
        }
    }

    let channels = channel_traffic(meta, &words, lifetime_of);
    let busy = busy.min(end_time);
    Ok(BusAnalysis {
        bus: meta.bus.clone(),
        protocol: meta.protocol.clone(),
        width: meta.width,
        end_time,
        words: words.len() as u64,
        busy_cycles: busy,
        idle_cycles: end_time - busy,
        utilization: if end_time == 0 {
            0.0
        } else {
            busy as f64 / end_time as f64
        },
        backpressure_cycles: backpressure,
        response_latency: response,
        transfer_gap: gap,
        channels,
    })
}

fn channel_traffic(
    meta: &BusMeta,
    words: &[WordTx],
    lifetime_of: &dyn Fn(&str) -> Option<u64>,
) -> Vec<ChannelTraffic> {
    // Per-channel accumulators, indexed like meta.channels.
    struct Acc {
        words: u64,
        last_activity: u64,
        runs: u64,
        run_words: u64,
        max_run: u64,
        response: Histogram,
    }
    let mut accs: Vec<Acc> = meta
        .channels
        .iter()
        .map(|_| Acc {
            words: 0,
            last_activity: 0,
            runs: 0,
            run_words: 0,
            max_run: 0,
            response: Histogram::new(),
        })
        .collect();
    let index_for = |w: &WordTx| {
        meta.channel_for(w.id_code)
            .and_then(|ch| meta.channels.iter().position(|c| c.name == ch.name))
    };
    let mut current: Option<usize> = None;
    for w in words {
        let Some(i) = index_for(w) else {
            current = None;
            continue;
        };
        let acc = &mut accs[i];
        acc.words += 1;
        acc.last_activity = w.done_fall.unwrap_or(w.start_rise).max(acc.last_activity);
        if let Some(lat) = w.response_latency() {
            acc.response.record(lat);
        }
        if current == Some(i) {
            acc.run_words += 1;
        } else {
            acc.runs += 1;
            acc.run_words = 1;
            current = Some(i);
        }
        acc.max_run = acc.max_run.max(acc.run_words);
    }
    meta.channels
        .iter()
        .zip(accs)
        .map(|(ch, acc)| {
            let messages = if ch.words_per_message == 0 {
                0
            } else {
                acc.words / u64::from(ch.words_per_message)
            };
            let bits = messages * u64::from(ch.message_bits);
            let lifetime = lifetime_of(&ch.accessor).unwrap_or(acc.last_activity);
            ChannelTraffic {
                name: ch.name.clone(),
                id_code: ch.id_code,
                words: acc.words,
                messages,
                bits,
                lifetime,
                observed_rate: if lifetime == 0 {
                    0.0
                } else {
                    bits as f64 / lifetime as f64
                },
                runs: acc.runs,
                max_run_words: acc.max_run,
                response_latency: acc.response,
            }
        })
        .collect()
}

impl BusAnalysis {
    /// Observed rate of the channel named `name`, if analysed.
    pub fn observed_rate(&self, name: &str) -> Option<f64> {
        self.channels
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.observed_rate)
    }

    /// Renders the analysis as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bus {} ({}, width {}): {} words in {} clocks",
            self.bus, self.protocol, self.width, self.words, self.end_time
        );
        let _ = writeln!(
            out,
            "  utilization {:.1}%  (busy {} clk, idle {} clk, backpressure {} clk)",
            self.utilization * 100.0,
            self.busy_cycles,
            self.idle_cycles,
            self.backpressure_cycles
        );
        let _ = writeln!(
            out,
            "  command->response latency: {}",
            self.response_latency.summary()
        );
        let _ = writeln!(
            out,
            "  transfer->transfer delay:  {}",
            self.transfer_gap.summary()
        );
        for ch in &self.channels {
            let id = ch
                .id_code
                .map(|c| format!("id {c}"))
                .unwrap_or_else(|| "no id".to_string());
            let _ = writeln!(
                out,
                "  channel {} ({id}): {} words / {} messages, {} bits, \
                 observed rate {:.4} bits/clk over {} clk",
                ch.name, ch.words, ch.messages, ch.bits, ch.observed_rate, ch.lifetime
            );
            let _ = writeln!(
                out,
                "    handshake runs: {} (longest {} words), response {}",
                ch.runs,
                ch.max_run_words,
                ch.response_latency.summary()
            );
        }
        out
    }

    /// Renders the analysis as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"ifsyn-analyze-report-v1\",");
        let _ = writeln!(out, "  \"bus\": \"{}\",", self.bus);
        let _ = writeln!(out, "  \"protocol\": \"{}\",", self.protocol);
        let _ = writeln!(out, "  \"width\": {},", self.width);
        let _ = writeln!(out, "  \"end_time\": {},", self.end_time);
        let _ = writeln!(out, "  \"words\": {},", self.words);
        let _ = writeln!(out, "  \"busy_cycles\": {},", self.busy_cycles);
        let _ = writeln!(out, "  \"idle_cycles\": {},", self.idle_cycles);
        let _ = writeln!(out, "  \"utilization\": {:.6},", self.utilization);
        let _ = writeln!(
            out,
            "  \"backpressure_cycles\": {},",
            self.backpressure_cycles
        );
        let hist = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"min\": {}, \"mean\": {:.4}, \"p95\": {}, \"max\": {}}}",
                h.count(),
                h.min().unwrap_or(0),
                h.mean(),
                h.percentile(95).unwrap_or(0),
                h.max().unwrap_or(0)
            )
        };
        let _ = writeln!(
            out,
            "  \"response_latency\": {},",
            hist(&self.response_latency)
        );
        let _ = writeln!(out, "  \"transfer_gap\": {},", hist(&self.transfer_gap));
        let _ = writeln!(out, "  \"channels\": [");
        for (i, ch) in self.channels.iter().enumerate() {
            let comma = if i + 1 < self.channels.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"words\": {}, \"messages\": {}, \"bits\": {}, \
                 \"lifetime\": {}, \"observed_rate\": {:.6}, \"runs\": {}, \
                 \"max_run_words\": {}, \"response_latency\": {}}}{comma}",
                ch.name,
                ch.words,
                ch.messages,
                ch.bits,
                ch.lifetime,
                ch.observed_rate,
                ch.runs,
                ch.max_run_words,
                hist(&ch.response_latency)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

//! # ifsyn-analyze — trace analytics for generated buses
//!
//! The width-selection algorithm of the DAC'94 paper prices candidate
//! buses with *statically estimated* channel rates. This crate supplies
//! the measurement side: a post-simulation bus analyzer that turns a
//! recorded signal trace — live from the simulator or parsed back from
//! its VCD dump — into per-bus utilization, idle and backpressure
//! cycles, command-to-response and transfer-to-transfer latency
//! histograms, per-handshake-run word counts, and per-channel *observed*
//! transfer rates directly comparable to the estimates.
//!
//! On top of the analyzer sits the calibration loop
//! ([`calibrate::calibrate`]): measure the observed/estimated ratio per
//! channel, re-run width selection with the scaled rates
//! ([`ifsyn_estimate::RateModel::Calibrated`]), and iterate to a fixed
//! point — bus selection informed by the very traffic it generates.
//!
//! ## Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ifsyn_analyze::{analyze_report, BusMeta};
//! use ifsyn_core::{BusGenerator, ProtocolGenerator};
//! use ifsyn_sim::{SimConfig, Simulator};
//! use ifsyn_spec::dsl::*;
//! use ifsyn_spec::{Channel, ChannelDirection, System, Ty};
//!
//! // One writer process sending 8 messages over a generated bus.
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip");
//! let p = sys.add_behavior("P", m);
//! let owner = sys.add_behavior("MEMPROC", m);
//! let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 8), owner);
//! let i = sys.add_variable("i", Ty::Int(16), p);
//! let ch = sys.add_channel(Channel {
//!     name: "ch".into(),
//!     accessor: p,
//!     variable: mem,
//!     direction: ChannelDirection::Write,
//!     data_bits: 16,
//!     addr_bits: 3,
//!     accesses: 8,
//! });
//! sys.behavior_mut(p).body = vec![for_loop(
//!     var(i), int_const(0, 16), int_const(7, 16),
//!     vec![send_at(ch, load(var(i)), load(var(i)))],
//! )];
//!
//! let design = BusGenerator::new().generate(&sys, &[ch])?;
//! let refined = ProtocolGenerator::new().refine(&sys, &design)?;
//! let report = Simulator::with_config(&refined.system, SimConfig::new().with_trace())?
//!     .run_to_quiescence()?;
//! let meta = BusMeta::from_refined(&refined);
//! let analysis = analyze_report(&refined.system, &report, &meta)?;
//! assert_eq!(analysis.channels[0].messages, 8);
//! assert!(analysis.utilization > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod error;
mod hist;
mod meta;

pub mod calibrate;
pub mod json;
pub mod vcd;

pub use analyzer::{analyze_report, analyze_vcd, BusAnalysis, ChannelTraffic};
pub use calibrate::{
    calibrate, simulate_and_analyze, CalibrationOptions, CalibrationReport, CalibrationStep,
    ChannelCalibration,
};
pub use error::AnalyzeError;
pub use hist::Histogram;
pub use meta::{BusMeta, ChannelMeta, META_SCHEMA};

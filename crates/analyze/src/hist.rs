//! Exact latency histograms.
//!
//! Bus latencies take few distinct values (the nominal handshake plus a
//! handful of contention-stretched variants), so the histogram stores
//! exact value counts rather than lossy buckets — percentiles and means
//! are then exact, which matters when the calibration loop compares runs
//! whose latencies differ by single cycles.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An exact histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
        self.sum += u128::from(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile (nearest-rank; `p` in `0..=100`), if any
    /// samples were recorded.
    pub fn percentile(&self, p: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((u128::from(p.min(100)) * u128::from(self.total)).div_ceil(100)).max(1);
        let mut seen = 0u128;
        for (&value, &count) in &self.counts {
            seen += u128::from(count);
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// One-line summary: `n=.. min=.. mean=.. p95=.. max=..`.
    pub fn summary(&self) -> String {
        if self.total == 0 {
            return "n=0".to_string();
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "n={} min={} mean={:.2} p95={} max={}",
            self.total,
            self.min().unwrap(),
            self.mean(),
            self.percentile(95).unwrap(),
            self.max().unwrap()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new();
        for v in [1, 1, 1, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.percentile(50), Some(1));
        assert_eq!(h.percentile(100), Some(10));
        assert_eq!(
            h.iter().collect::<Vec<_>>(),
            vec![(1, 3), (2, 1), (3, 1), (10, 1)]
        );
        assert!(h.summary().starts_with("n=6 min=1"));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(95), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(1), Some(1));
        assert_eq!(h.percentile(95), Some(95));
        assert_eq!(h.percentile(0), Some(1), "p0 clamps to the first sample");
    }
}

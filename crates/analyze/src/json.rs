//! A minimal JSON reader for the analyzer's sidecar files.
//!
//! The workspace is dependency-free, so the bus-metadata sidecar
//! ([`crate::BusMeta`]) is parsed with this hand-rolled recursive-descent
//! reader instead of serde. It accepts standard JSON (objects, arrays,
//! strings with the common escapes, numbers, booleans, null) — enough to
//! round-trip everything the toolchain itself emits.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as f64).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are unique; insertion order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", char::from(ch)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Copy the full UTF-8 sequence starting at this byte.
                let len = if b < 0x80 {
                    1
                } else if b < 0xe0 {
                    2
                } else if b < 0xf0 {
                    3
                } else {
                    4
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_convert_exactly_or_not_at_all() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn unicode_escapes_and_raw_utf8_round_trip() {
        assert_eq!(
            parse("\"\\u00e9 caf\u{e9}\"").unwrap().as_str(),
            Some("\u{e9} caf\u{e9}")
        );
    }
}

//! Bus metadata: the sidecar that tells the analyzer what the wires mean.
//!
//! A VCD file records raw signal changes; turning those into per-channel
//! traffic requires knowing which signal is the START line, which values
//! of the ID lines address which channel, and how many bus words one
//! message occupies. [`BusMeta`] carries exactly that, either built
//! in-process from a refined system ([`BusMeta::from_refined`]) or read
//! back from the JSON sidecar the CLI writes next to the VCD
//! ([`BusMeta::from_json`], the parse of `ifsyn_vhdl::bus_metadata_json`).

use std::fmt::Write as _;

use ifsyn_core::RefinedSystem;

use crate::error::AnalyzeError;
use crate::json::{self, Json};

/// Schema tag of the metadata sidecar.
pub const META_SCHEMA: &str = "ifsyn-bus-meta-v1";

/// Everything the analyzer needs to know about one generated bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusMeta {
    /// Bus name prefix (e.g. `B`).
    pub bus: String,
    /// Protocol name (e.g. `full-handshake`).
    pub protocol: String,
    /// Data-line count the bus was generated with.
    pub width: u32,
    /// Nominal word time of the protocol, in clocks.
    pub cycles_per_word: u32,
    /// Name of the START control line, if the protocol has one.
    pub start: Option<String>,
    /// Name of the DONE control line (full handshake only).
    pub done: Option<String>,
    /// Name of the ID (mode) lines, absent for single-channel buses.
    pub id: Option<String>,
    /// Name of the shared data lines.
    pub data: Option<String>,
    /// The channels multiplexed onto the bus.
    pub channels: Vec<ChannelMeta>,
}

/// One channel's share of the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMeta {
    /// Channel name from the specification.
    pub name: String,
    /// Value of the ID lines that addresses this channel, if any.
    pub id_code: Option<u64>,
    /// Bits per message (data + address).
    pub message_bits: u32,
    /// Bus words one message occupies at the generated width.
    pub words_per_message: u32,
    /// Name of the accessing behavior (for lifetime lookup).
    pub accessor: String,
}

impl BusMeta {
    /// Extracts the metadata from a refined system.
    pub fn from_refined(refined: &RefinedSystem) -> Self {
        let sys = &refined.system;
        let bus = &refined.bus;
        let design = &bus.design;
        let timing = design.protocol.timing(design.width);
        let name_of = |sig: Option<ifsyn_spec::SignalId>| sig.map(|s| sys.signal(s).name.clone());
        let channels = design
            .channels
            .iter()
            .map(|&ch| {
                let c = sys.channel(ch);
                ChannelMeta {
                    name: c.name.clone(),
                    id_code: bus.id_code(ch),
                    message_bits: c.message_bits(),
                    words_per_message: timing.words(c.message_bits()),
                    accessor: sys.behavior(c.accessor).name.clone(),
                }
            })
            .collect();
        Self {
            bus: bus.name.clone(),
            protocol: design.protocol.name().to_string(),
            width: design.width,
            cycles_per_word: design.protocol.cycles_per_word(),
            start: name_of(bus.start),
            done: name_of(bus.done),
            id: name_of(bus.id),
            data: name_of(bus.data),
            channels,
        }
    }

    /// The channel addressed by `id_code`, or the only channel when the
    /// bus carries no ID lines.
    pub fn channel_for(&self, id_code: Option<u64>) -> Option<&ChannelMeta> {
        if self.channels.len() == 1 && self.id.is_none() {
            return self.channels.first();
        }
        let code = id_code?;
        self.channels.iter().find(|c| c.id_code == Some(code))
    }

    /// Renders the metadata as its JSON sidecar format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{META_SCHEMA}\",");
        let _ = writeln!(out, "  \"bus\": {},", json_str(&self.bus));
        let _ = writeln!(out, "  \"protocol\": {},", json_str(&self.protocol));
        let _ = writeln!(out, "  \"width\": {},", self.width);
        let _ = writeln!(out, "  \"cycles_per_word\": {},", self.cycles_per_word);
        let opt = |v: &Option<String>| match v {
            Some(s) => json_str(s),
            None => "null".to_string(),
        };
        let _ = writeln!(out, "  \"signals\": {{");
        let _ = writeln!(out, "    \"start\": {},", opt(&self.start));
        let _ = writeln!(out, "    \"done\": {},", opt(&self.done));
        let _ = writeln!(out, "    \"id\": {},", opt(&self.id));
        let _ = writeln!(out, "    \"data\": {}", opt(&self.data));
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"channels\": [");
        for (i, ch) in self.channels.iter().enumerate() {
            let comma = if i + 1 < self.channels.len() { "," } else { "" };
            let code = ch
                .id_code
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"id_code\": {}, \"message_bits\": {}, \
                 \"words_per_message\": {}, \"accessor\": {}}}{comma}",
                json_str(&ch.name),
                code,
                ch.message_bits,
                ch.words_per_message,
                json_str(&ch.accessor)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Parses the JSON sidecar format.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Meta`] on malformed JSON, a wrong schema
    /// tag, or a missing required field.
    pub fn from_json(text: &str) -> Result<Self, AnalyzeError> {
        let doc = json::parse(text).map_err(AnalyzeError::Meta)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != META_SCHEMA {
            return Err(AnalyzeError::Meta(format!(
                "unsupported schema `{schema}` (expected `{META_SCHEMA}`)"
            )));
        }
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| AnalyzeError::Meta(format!("missing string field `{key}`")))
        };
        let num_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| AnalyzeError::Meta(format!("missing numeric field `{key}`")))
        };
        let signals = doc.get("signals");
        let sig = |key: &str| {
            signals
                .and_then(|s| s.get(key))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        let channel_items = doc
            .get("channels")
            .and_then(Json::as_array)
            .ok_or_else(|| AnalyzeError::Meta("missing `channels` array".into()))?;
        let mut channels = Vec::with_capacity(channel_items.len());
        for (i, item) in channel_items.iter().enumerate() {
            let ch_str = |key: &str| {
                item.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        AnalyzeError::Meta(format!("channel {i}: missing string field `{key}`"))
                    })
            };
            let ch_num = |key: &str| {
                item.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    AnalyzeError::Meta(format!("channel {i}: missing numeric field `{key}`"))
                })
            };
            channels.push(ChannelMeta {
                name: ch_str("name")?,
                id_code: item.get("id_code").and_then(Json::as_u64),
                message_bits: ch_num("message_bits")? as u32,
                words_per_message: ch_num("words_per_message")? as u32,
                accessor: ch_str("accessor")?,
            });
        }
        if channels.is_empty() {
            return Err(AnalyzeError::Meta("`channels` must not be empty".into()));
        }
        Ok(Self {
            bus: str_field("bus")?,
            protocol: str_field("protocol")?,
            width: num_field("width")? as u32,
            cycles_per_word: num_field("cycles_per_word")? as u32,
            start: sig("start"),
            done: sig("done"),
            id: sig("id"),
            data: sig("data"),
            channels,
        })
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BusMeta {
        BusMeta {
            bus: "B".into(),
            protocol: "full-handshake".into(),
            width: 8,
            cycles_per_word: 2,
            start: Some("B_START".into()),
            done: Some("B_DONE".into()),
            id: Some("B_ID".into()),
            data: Some("B_DATA".into()),
            channels: vec![
                ChannelMeta {
                    name: "ch1".into(),
                    id_code: Some(0),
                    message_bits: 23,
                    words_per_message: 3,
                    accessor: "EVAL_R3".into(),
                },
                ChannelMeta {
                    name: "ch2".into(),
                    id_code: Some(1),
                    message_bits: 23,
                    words_per_message: 3,
                    accessor: "CONV_R2".into(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let meta = sample();
        assert_eq!(BusMeta::from_json(&meta.to_json()).unwrap(), meta);
    }

    #[test]
    fn optional_signals_round_trip_as_null() {
        let mut meta = sample();
        meta.done = None;
        meta.id = None;
        let text = meta.to_json();
        assert!(text.contains("\"done\": null"), "{text}");
        assert_eq!(BusMeta::from_json(&text).unwrap(), meta);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample().to_json().replace(META_SCHEMA, "something-else");
        assert!(matches!(
            BusMeta::from_json(&text),
            Err(AnalyzeError::Meta(_))
        ));
    }

    #[test]
    fn channel_lookup_by_id_code() {
        let meta = sample();
        assert_eq!(meta.channel_for(Some(1)).unwrap().name, "ch2");
        assert_eq!(meta.channel_for(Some(7)), None);
        assert_eq!(meta.channel_for(None), None, "multi-channel needs a code");
    }

    #[test]
    fn single_channel_bus_needs_no_id() {
        let mut meta = sample();
        meta.id = None;
        meta.channels.truncate(1);
        meta.channels[0].id_code = None;
        assert_eq!(meta.channel_for(None).unwrap().name, "ch1");
    }
}

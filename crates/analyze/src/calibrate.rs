//! Measured-rate calibration: closing the loop between estimation and
//! simulation.
//!
//! The paper's width selection (§3) prices every candidate width with
//! *statically estimated* channel rates. Those estimates are exact for a
//! process alone on its bus (the Fig. 7 cross-check) but ignore
//! contention: when several channels share the bus, each accessor
//! stretches and its achieved rate drops below the estimate. The
//! calibration loop measures that gap and feeds it back:
//!
//! 1. select a width with static rates (the paper's algorithm);
//! 2. refine, simulate with tracing, and run the bus analyzer;
//! 3. for each channel compute `κ = observed_rate / estimated_rate`
//!    at the simulated width;
//! 4. re-run width selection with every per-width static estimate
//!    scaled by `κ` ([`ifsyn_estimate::RateModel::Calibrated`]);
//! 5. repeat from 2 until the selected width repeats (a fixed point)
//!    or the iteration bound is hit.
//!
//! The loop is bounded and reports convergence explicitly: a width that
//! re-selects itself is a fixed point; revisiting an earlier width is an
//! oscillation and is reported as non-converged.

use std::collections::HashMap;
use std::fmt::Write as _;

use ifsyn_core::{BusDesign, BusGenerator, ProtocolGenerator};
use ifsyn_estimate::{ChannelTimings, RateModel};
use ifsyn_sim::{SimConfig, Simulator};
use ifsyn_spec::{ChannelId, System};

use crate::analyzer::{analyze_report, BusAnalysis};
use crate::error::AnalyzeError;
use crate::meta::BusMeta;

/// Knobs of the calibration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationOptions {
    /// Maximum simulate-and-reselect iterations before giving up.
    pub max_iterations: u32,
    /// Trace-event bound for the instrumented simulations (narrow widths
    /// of a long sweep far exceed the simulator's default bound).
    pub max_trace_events: usize,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        Self {
            max_iterations: 8,
            max_trace_events: 2_000_000,
        }
    }
}

/// One channel's estimated-vs-observed comparison at one width.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelCalibration {
    /// Channel name.
    pub name: String,
    /// Static average-rate estimate at the simulated width (bits/clock).
    pub estimated_rate: f64,
    /// Rate measured by the bus analyzer (bits/clock).
    pub observed_rate: f64,
    /// Correction factor `observed / estimated` (1 when either is 0).
    pub scale: f64,
}

impl ChannelCalibration {
    /// Relative estimation error `|observed - estimated| / estimated`
    /// (0 when the estimate is 0).
    pub fn relative_error(&self) -> f64 {
        if self.estimated_rate == 0.0 {
            0.0
        } else {
            (self.observed_rate - self.estimated_rate).abs() / self.estimated_rate
        }
    }
}

/// One iteration of the loop: simulate at `width`, re-select.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationStep {
    /// 1-based iteration number.
    pub iteration: u32,
    /// The width simulated this step.
    pub width: u32,
    /// Per-channel measurements at this width.
    pub channels: Vec<ChannelCalibration>,
    /// The width selection chose with the calibrated rates.
    pub next_width: u32,
}

/// The outcome of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Width the static (uncalibrated) algorithm selected.
    pub initial_width: u32,
    /// Width the loop ended on.
    pub final_width: u32,
    /// Whether the loop reached a fixed point (a width re-selecting
    /// itself) within the iteration bound.
    pub converged: bool,
    /// Every simulate-and-reselect step, in order.
    pub steps: Vec<CalibrationStep>,
    /// Bus analysis of the last simulated width.
    pub final_analysis: BusAnalysis,
}

impl CalibrationReport {
    /// Worst per-channel relative estimation error in the first step —
    /// the gap the static model had before any correction.
    pub fn initial_error(&self) -> f64 {
        self.steps
            .first()
            .map(|s| {
                s.channels
                    .iter()
                    .map(ChannelCalibration::relative_error)
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0)
    }

    /// Renders the run as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "calibration: static width {} -> final width {} in {} iteration(s), {}",
            self.initial_width,
            self.final_width,
            self.steps.len(),
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            }
        );
        for step in &self.steps {
            let _ = writeln!(
                out,
                "  iter {}: simulated width {}, re-selected width {}",
                step.iteration, step.width, step.next_width
            );
            for ch in &step.channels {
                let _ = writeln!(
                    out,
                    "    {}: est {:.4} obs {:.4} bits/clk  (x{:.3}, err {:.1}%)",
                    ch.name,
                    ch.estimated_rate,
                    ch.observed_rate,
                    ch.scale,
                    ch.relative_error() * 100.0
                );
            }
        }
        out
    }
}

/// Runs the calibration loop for `channels` of `system`.
///
/// `generator` supplies the protocol, constraints and base rate
/// estimator; any rate model already installed on it is replaced by the
/// measured one from iteration to iteration.
///
/// # Errors
///
/// [`AnalyzeError::Calibration`] when width selection, refinement or
/// simulation fails, and any analyzer error.
pub fn calibrate(
    system: &System,
    channels: &[ChannelId],
    generator: &BusGenerator,
    options: CalibrationOptions,
) -> Result<CalibrationReport, AnalyzeError> {
    let cal_err =
        |what: &str, e: &dyn std::fmt::Display| AnalyzeError::Calibration(format!("{what}: {e}"));
    let base = generator.rate_model().base().clone();
    let mut design = generator
        .generate(system, channels)
        .map_err(|e| cal_err("initial width selection", &e))?;
    let initial_width = design.width;
    let mut visited = vec![initial_width];
    let mut steps = Vec::new();
    let mut converged = false;
    let mut final_analysis = None;

    for iteration in 1..=options.max_iterations.max(1) {
        let width = design.width;
        let analysis = simulate_and_analyze(system, &design, options.max_trace_events)?;

        // Static per-channel estimates at the simulated width, from the
        // same base estimator the selection used.
        let timings = ChannelTimings::uniform(channels, design.protocol.timing(width));
        let mut measured = Vec::with_capacity(channels.len());
        let mut scale = HashMap::with_capacity(channels.len());
        for &ch in channels {
            let name = system.channel(ch).name.clone();
            let estimated = base
                .average_rate(system, ch, &timings)
                .map_err(|e| cal_err("rate estimation", &e))?;
            let observed = analysis.observed_rate(&name).unwrap_or(0.0);
            let factor = if estimated > 0.0 && observed > 0.0 {
                observed / estimated
            } else {
                1.0
            };
            scale.insert(ch, factor);
            measured.push(ChannelCalibration {
                name,
                estimated_rate: estimated,
                observed_rate: observed,
                scale: factor,
            });
        }

        let model = RateModel::calibrated(base.clone(), scale);
        let next = generator
            .clone()
            .with_rate_model(model)
            .generate(system, channels)
            .map_err(|e| cal_err("calibrated width selection", &e))?;
        steps.push(CalibrationStep {
            iteration,
            width,
            channels: measured,
            next_width: next.width,
        });
        final_analysis = Some(analysis);

        if next.width == width {
            converged = true;
            design = next;
            break;
        }
        if visited.contains(&next.width) {
            // Oscillation between widths: bounded, but not a fixed point.
            design = next;
            break;
        }
        visited.push(next.width);
        design = next;
    }

    Ok(CalibrationReport {
        initial_width,
        final_width: design.width,
        converged,
        steps,
        final_analysis: final_analysis.expect("at least one iteration ran"),
    })
}

/// Refines `design`, simulates it with tracing, and runs the analyzer.
pub fn simulate_and_analyze(
    system: &System,
    design: &BusDesign,
    max_trace_events: usize,
) -> Result<BusAnalysis, AnalyzeError> {
    let cal_err =
        |what: &str, e: &dyn std::fmt::Display| AnalyzeError::Calibration(format!("{what}: {e}"));
    let refined = ProtocolGenerator::new()
        .refine(system, design)
        .map_err(|e| cal_err("refinement", &e))?;
    let config = SimConfig::new()
        .with_trace()
        .with_max_trace_events(max_trace_events);
    let report = Simulator::with_config(&refined.system, config)
        .map_err(|e| cal_err("simulation setup", &e))?
        .run_to_quiescence()
        .map_err(|e| cal_err("simulation", &e))?;
    let meta = BusMeta::from_refined(&refined);
    analyze_report(&refined.system, &report, &meta)
}

//! Error type of the analytics subsystem.

use std::fmt;

/// Errors from VCD ingestion, metadata parsing or trace analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The VCD text violated the subset of IEEE 1364 we read.
    Vcd {
        /// 1-based line of the offending text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The bus metadata JSON was malformed or missing a required field.
    Meta(String),
    /// A signal named in the metadata does not exist in the trace.
    MissingSignal(String),
    /// The trace carries no recorded events (tracing was off).
    EmptyTrace,
    /// A step of the calibration loop failed (generation, refinement or
    /// simulation).
    Calibration(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Vcd { line, message } => write!(f, "VCD parse error at line {line}: {message}"),
            Self::Meta(msg) => write!(f, "bus metadata error: {msg}"),
            Self::MissingSignal(name) => {
                write!(f, "signal `{name}` from bus metadata not found in trace")
            }
            Self::EmptyTrace => write!(
                f,
                "trace contains no events; run the simulation with tracing enabled"
            ),
            Self::Calibration(msg) => write!(f, "calibration error: {msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

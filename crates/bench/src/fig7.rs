//! Figure 7: FLC process execution time vs bus width.
//!
//! For every width 1..=30 we report, for `EVAL_R3` and `CONV_R2`:
//!
//! * the **analytic** execution time (the paper's methodology — each
//!   process priced independently with the estimator of their ref \[10\]);
//! * the **measured** execution time of the process running alone on the
//!   bus (cross-check: equals the analytic value exactly);
//! * the **measured** execution time with both channels sharing the
//!   arbitrated bus — contention data the paper defers to future work.
//!
//! Both curves fall with width and flatten past 23 pins (16 data + 7
//! address bits); the paper's example constraint — CONV_R2 within 2000
//! clocks — excludes widths of 4 pins and below.

use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
use ifsyn_estimate::BusTiming;
use ifsyn_sim::Simulator;
use ifsyn_systems::flc::{self, CONV_COMPUTE_CYCLES, EVAL_COMPUTE_CYCLES, FLC_ACCESSES};

use crate::sweep::parallel_sweep;
use crate::table::Table;

pub use crate::sweep::sweep_threads;

/// One width's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Row {
    /// Bus width in pins.
    pub width: u32,
    /// Analytic EVAL_R3 time (clocks).
    pub eval_analytic: u64,
    /// Analytic CONV_R2 time (clocks).
    pub conv_analytic: u64,
    /// Measured EVAL_R3 alone on the bus.
    pub eval_alone: u64,
    /// Measured CONV_R2 alone on the bus.
    pub conv_alone: u64,
    /// Measured EVAL_R3 sharing the bus with CONV_R2.
    pub eval_shared: u64,
    /// Measured CONV_R2 sharing the bus with EVAL_R3.
    pub conv_shared: u64,
}

/// The Fig. 7 sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig7Data {
    /// One row per width.
    pub rows: Vec<Fig7Row>,
    /// Smallest width meeting the paper's example constraint
    /// (CONV_R2 <= 2000 clocks).
    pub min_width_for_2000_clocks: u32,
    /// Kernel instructions executed over all simulations of the sweep
    /// (throughput accounting for `BENCH_sim.json`).
    pub total_instrs: u64,
}

fn analytic(width: u32, compute: u64) -> u64 {
    FLC_ACCESSES * (compute + BusTiming::new(width, 2).cycles_per_access(23))
}

/// Measured finish time plus kernel instructions executed.
fn measure_alone(channel_is_eval: bool, width: u32) -> (u64, u64) {
    let f = flc::flc();
    let ch = if channel_is_eval { f.ch1 } else { f.ch2 };
    let behavior = if channel_is_eval {
        f.eval_r3
    } else {
        f.conv_r2
    };
    let design = BusDesign::with_width(vec![ch], width, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&f.system, &design)
        .expect("fig7 refinement");
    let report = Simulator::new(&refined.system)
        .expect("fig7 sim setup")
        .run_to_quiescence()
        .expect("fig7 sim");
    (
        report.finish_time(behavior).expect("process finished"),
        report.total_instrs(),
    )
}

fn measure_shared(width: u32) -> (u64, u64, u64) {
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&f.system, &design)
        .expect("fig7 shared refinement");
    let report = Simulator::new(&refined.system)
        .expect("fig7 shared sim setup")
        .run_to_quiescence()
        .expect("fig7 shared sim");
    (
        report.finish_time(f.eval_r3).expect("eval finished"),
        report.finish_time(f.conv_r2).expect("conv finished"),
        report.total_instrs(),
    )
}

/// Runs the sweep over widths `1..=max_width`.
///
/// The widths are independent refine-and-simulate jobs, so they fan out
/// over all available cores via [`parallel_sweep`]; results come back in
/// width order regardless of scheduling.
pub fn run_to(max_width: u32) -> Fig7Data {
    let widths: Vec<u32> = (1..=max_width).collect();
    let measured = parallel_sweep(&widths, |&width| {
        let (eval_shared, conv_shared, shared_instrs) = measure_shared(width);
        let (eval_alone, eval_instrs) = measure_alone(true, width);
        let (conv_alone, conv_instrs) = measure_alone(false, width);
        (
            Fig7Row {
                width,
                eval_analytic: analytic(width, EVAL_COMPUTE_CYCLES),
                conv_analytic: analytic(width, CONV_COMPUTE_CYCLES),
                eval_alone,
                conv_alone,
                eval_shared,
                conv_shared,
            },
            shared_instrs + eval_instrs + conv_instrs,
        )
    });
    let total_instrs = measured.iter().map(|(_, i)| i).sum();
    let rows: Vec<Fig7Row> = measured.into_iter().map(|(r, _)| r).collect();
    let min_width_for_2000_clocks = rows
        .iter()
        .find(|r| r.conv_analytic <= 2000)
        .map(|r| r.width)
        .unwrap_or(max_width);
    Fig7Data {
        rows,
        min_width_for_2000_clocks,
        total_instrs,
    }
}

/// Runs the paper's full sweep (widths 1..=30).
pub fn run() -> Fig7Data {
    run_to(30)
}

/// [`run_to`], but with every simulation routed through the lockstep
/// convoy engine ([`ifsyn_sim::LockstepSim`]).
///
/// The three configurations per width all compile to distinct programs
/// (the types carry the width), so the engine groups what it can and
/// runs the rest scalar — either way the reports, and therefore the
/// rendered figure, are identical to [`run_to`]'s byte for byte.
pub fn run_to_lockstep(max_width: u32) -> Fig7Data {
    use ifsyn_sim::{LockstepSim, SimConfig};

    let f = flc::flc();
    let mut systems = Vec::with_capacity(3 * max_width as usize);
    for width in 1..=max_width {
        // Same order as the scalar path: shared, eval alone, conv alone.
        let shared = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
        systems.push(
            ProtocolGenerator::new()
                .refine(&f.system, &shared)
                .expect("fig7 shared refinement")
                .system,
        );
        for &ch in &[f.ch1, f.ch2] {
            let alone = BusDesign::with_width(vec![ch], width, ProtocolKind::FullHandshake);
            systems.push(
                ProtocolGenerator::new()
                    .refine(&f.system, &alone)
                    .expect("fig7 refinement")
                    .system,
            );
        }
    }
    let reports = LockstepSim::run(&systems, &SimConfig::new());
    let mut rows = Vec::with_capacity(max_width as usize);
    let mut total_instrs = 0u64;
    for (i, width) in (1..=max_width).enumerate() {
        let shared = reports[3 * i].as_ref().expect("fig7 shared sim");
        let eval = reports[3 * i + 1].as_ref().expect("fig7 eval sim");
        let conv = reports[3 * i + 2].as_ref().expect("fig7 conv sim");
        total_instrs += shared.total_instrs() + eval.total_instrs() + conv.total_instrs();
        rows.push(Fig7Row {
            width,
            eval_analytic: analytic(width, EVAL_COMPUTE_CYCLES),
            conv_analytic: analytic(width, CONV_COMPUTE_CYCLES),
            eval_alone: eval.finish_time(f.eval_r3).expect("eval finished"),
            conv_alone: conv.finish_time(f.conv_r2).expect("conv finished"),
            eval_shared: shared.finish_time(f.eval_r3).expect("eval finished"),
            conv_shared: shared.finish_time(f.conv_r2).expect("conv finished"),
        });
    }
    let min_width_for_2000_clocks = rows
        .iter()
        .find(|r| r.conv_analytic <= 2000)
        .map(|r| r.width)
        .unwrap_or(max_width);
    Fig7Data {
        rows,
        min_width_for_2000_clocks,
        total_instrs,
    }
}

/// [`run`] through the lockstep engine (widths 1..=30).
pub fn run_lockstep() -> Fig7Data {
    run_to_lockstep(30)
}

/// Renders the sweep as text.
pub fn render(data: &Fig7Data) -> String {
    let mut out = String::new();
    out.push_str("Figure 7 — FLC performance vs bus width (clocks)\n\n");
    let mut t = Table::new([
        "width",
        "EVAL_R3 est",
        "EVAL_R3 sim",
        "CONV_R2 est",
        "CONV_R2 sim",
        "EVAL shared",
        "CONV shared",
    ]);
    for r in &data.rows {
        t.row([
            r.width.to_string(),
            r.eval_analytic.to_string(),
            r.eval_alone.to_string(),
            r.conv_analytic.to_string(),
            r.conv_alone.to_string(),
            r.eval_shared.to_string(),
            r.conv_shared.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nCONV_R2 <= 2000 clocks requires width >= {} pins \
         (paper: \"only buswidths greater than 4 bits\")\n",
        data.min_width_for_2000_clocks
    ));
    out.push_str(
        "curves flatten past 23 pins: the 23-bit message (16 data + 7 addr) \
         cannot be parallelised further\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_equals_analytic_for_isolated_processes() {
        let data = run_to(10);
        for r in &data.rows {
            assert_eq!(r.eval_alone, r.eval_analytic, "width {}", r.width);
            assert_eq!(r.conv_alone, r.conv_analytic, "width {}", r.width);
        }
    }

    #[test]
    fn execution_time_is_monotone_decreasing() {
        let data = run_to(24);
        for pair in data.rows.windows(2) {
            assert!(pair[1].eval_analytic <= pair[0].eval_analytic);
            assert!(pair[1].conv_analytic <= pair[0].conv_analytic);
        }
    }

    #[test]
    fn constraint_threshold_matches_paper() {
        // "if process CONV_R2 has a maximum execution time constraint of
        // 2000 clocks, then only buswidths greater than 4 bits will be
        // considered".
        let data = run_to(8);
        assert_eq!(data.min_width_for_2000_clocks, 5);
        let w4 = &data.rows[3];
        assert!(w4.conv_analytic > 2000);
    }

    #[test]
    fn lockstep_route_is_output_identical() {
        let scalar = run_to(6);
        let lockstep = run_to_lockstep(6);
        assert_eq!(scalar, lockstep);
        assert_eq!(render(&scalar), render(&lockstep));
    }

    #[test]
    fn sharing_never_speeds_a_process_up() {
        let data = run_to(8);
        for r in &data.rows {
            assert!(r.eval_shared >= r.eval_alone, "width {}", r.width);
            assert!(r.conv_shared >= r.conv_alone, "width {}", r.width);
        }
    }
}

//! Refinement overhead: what protocol generation *costs*.
//!
//! The paper trades interconnect (wires) against performance; this
//! experiment adds the third axis its reference \[10\] estimates — area.
//! Protocol generation inserts controller states (handshake sequencing
//! in the send/receive/serve procedures) and registers (message
//! buffers, the ID/DATA wires' drivers); merging channels saves wires.
//! The table quantifies all three for the Fig. 3 example and the FLC.

use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind, RefinedSystem};
use ifsyn_estimate::{AreaEstimate, AreaEstimator};
use ifsyn_spec::System;

use crate::table::{f2, Table};

/// Before/after area of one refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// System name.
    pub name: String,
    /// Bus width used.
    pub width: u32,
    /// Area of the abstract (pre-refinement) system, zero bus wires.
    pub before: AreaEstimate,
    /// Area of the refined system including bus wires.
    pub after: AreaEstimate,
    /// Dedicated wires the merge avoided.
    pub dedicated_wires: u32,
    /// Bus wires actually spent.
    pub bus_wires: u32,
}

impl OverheadRow {
    /// Controller states added by refinement.
    pub fn added_states(&self) -> u64 {
        self.after.states.saturating_sub(self.before.states)
    }

    /// Register bits added by refinement.
    pub fn added_register_bits(&self) -> u64 {
        self.after
            .register_bits
            .saturating_sub(self.before.register_bits)
    }
}

fn measure(name: &str, sys: &System, refined: &RefinedSystem, width: u32) -> OverheadRow {
    let estimator = AreaEstimator::new();
    let before = estimator.estimate_system(sys, 0).expect("area before");
    let bus_wires = refined.bus.design.total_wires();
    let after = estimator
        .estimate_system(&refined.system, bus_wires)
        .expect("area after");
    OverheadRow {
        name: name.to_string(),
        width,
        before,
        after,
        dedicated_wires: refined.bus.design.dedicated_wires(&refined.system),
        bus_wires,
    }
}

/// Runs the overhead measurements.
pub fn run() -> Vec<OverheadRow> {
    let mut rows = Vec::new();

    let f3 = ifsyn_systems::fig3::fig3();
    let design = BusDesign::with_width(f3.channels(), 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&f3.system, &design)
        .expect("fig3 refinement");
    rows.push(measure("fig3 (8-bit bus)", &f3.system, &refined, 8));

    let flc = ifsyn_systems::flc::flc();
    let design = BusDesign::with_width(flc.bus_channels(), 16, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(&flc.system, &design)
        .expect("flc refinement");
    rows.push(measure(
        "flc ch1+ch2 (16-bit bus)",
        &flc.system,
        &refined,
        16,
    ));

    rows
}

/// Renders the overhead table.
pub fn render(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Refinement overhead — what protocol generation costs (FSMD area model)\n\n");
    let mut t = Table::new([
        "system",
        "width",
        "states +",
        "reg bits +",
        "gates before",
        "gates after",
        "wires saved",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            r.width.to_string(),
            r.added_states().to_string(),
            r.added_register_bits().to_string(),
            f2(r.before.gates),
            f2(r.after.gates),
            format!("{} -> {}", r.dedicated_wires, r.bus_wires),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nmerging buys wires at the price of handshake controller states\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_adds_states_and_saves_wires() {
        for row in run() {
            assert!(row.added_states() > 0, "{}", row.name);
            assert!(
                row.bus_wires < row.dedicated_wires,
                "{}: {} !< {}",
                row.name,
                row.bus_wires,
                row.dedicated_wires
            );
        }
    }

    #[test]
    fn area_never_shrinks_under_refinement() {
        for row in run() {
            assert!(row.after.gates >= row.before.gates);
            assert!(row.after.register_bits >= row.before.register_bits);
        }
    }
}

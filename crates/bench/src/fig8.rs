//! Figure 8: three constrained bus designs for the FLC's ch1+ch2 group.
//!
//! The published table gives, against 46 total channel pins:
//!
//! | design | headline constraint                    | width | reduction |
//! |--------|----------------------------------------|-------|-----------|
//! | A      | MinPeakRate(ch2) = 10 b/clk (w 10)     | 20    | 56%       |
//! | B      | + width band, light weights            | 18    | 61%       |
//! | C      | + tighter width band, heavy weights    | 16    | 66%       |
//!
//! The OCR of the paper lost some of B's and C's numeric bounds; the
//! bands used here ([14, 18] w 1/2 for B, [14, 16] w 5/5 for C) are
//! reconstructed to reproduce the published selections — see
//! EXPERIMENTS.md for the derivation.

use ifsyn_core::{BusGenerator, Constraint};
use ifsyn_systems::flc;

use crate::table::{f2, pct, Table};

/// One design row of the Fig. 8 table.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRow {
    /// Design label (A, B, C).
    pub name: String,
    /// Human-readable constraint set.
    pub constraints: Vec<String>,
    /// Selected width in pins.
    pub width: u32,
    /// Bus rate at the selected width (bits/clock).
    pub bus_rate: f64,
    /// Interconnect reduction vs dedicated channel wires.
    pub reduction: f64,
}

/// The Fig. 8 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Data {
    /// The three designs.
    pub designs: Vec<DesignRow>,
    /// Total dedicated channel pins (the baseline): 46.
    pub total_channel_pins: u32,
}

/// Runs the three constrained generations.
pub fn run() -> Fig8Data {
    let f = flc::flc();
    let chans = f.bus_channels();
    let ch2 = f.ch2;

    let cases: Vec<(&str, Vec<(Constraint, String)>)> = vec![
        (
            "A",
            vec![(
                Constraint::min_peak_rate(ch2, 10.0, 10.0),
                "MinPeakRate(ch2) = 10 b/clk (w 10)".to_string(),
            )],
        ),
        (
            "B",
            vec![
                (
                    Constraint::min_peak_rate(ch2, 10.0, 2.0),
                    "MinPeakRate(ch2) = 10 b/clk (w 2)".to_string(),
                ),
                (
                    Constraint::min_bus_width(14, 1.0),
                    "MinBusWidth = 14 (w 1)".to_string(),
                ),
                (
                    Constraint::max_bus_width(18, 2.0),
                    "MaxBusWidth = 18 (w 2)".to_string(),
                ),
            ],
        ),
        (
            "C",
            vec![
                (
                    Constraint::min_peak_rate(ch2, 10.0, 1.0),
                    "MinPeakRate(ch2) = 10 b/clk (w 1)".to_string(),
                ),
                (
                    Constraint::min_bus_width(14, 5.0),
                    "MinBusWidth = 14 (w 5)".to_string(),
                ),
                (
                    Constraint::max_bus_width(16, 5.0),
                    "MaxBusWidth = 16 (w 5)".to_string(),
                ),
            ],
        ),
    ];

    let designs = cases
        .into_iter()
        .map(|(name, constraints)| {
            let texts: Vec<String> = constraints.iter().map(|(_, t)| t.clone()).collect();
            let design = BusGenerator::new()
                .constraints(constraints.into_iter().map(|(c, _)| c))
                .generate(&f.system, &chans)
                .expect("fig8 generation feasible");
            DesignRow {
                name: name.to_string(),
                constraints: texts,
                width: design.width,
                bus_rate: design.bus_rate,
                reduction: design.interconnect_reduction(&f.system),
            }
        })
        .collect();

    Fig8Data {
        designs,
        total_channel_pins: f.dedicated_wires(),
    }
}

/// Renders the table as text.
pub fn render(data: &Fig8Data) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — constrained bus designs for the FLC ch1+ch2 group\n");
    out.push_str(&format!(
        "total bitwidth of the channels: {} pins\n\n",
        data.total_channel_pins
    ));
    let mut t = Table::new(["design", "selected width", "bus rate (b/clk)", "reduction"]);
    for d in &data.designs {
        t.row([
            d.name.clone(),
            d.width.to_string(),
            f2(d.bus_rate),
            pct(d.reduction),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    for d in &data.designs {
        out.push_str(&format!("design {}:\n", d.name));
        for c in &d.constraints {
            out.push_str(&format!("  - {c}\n"));
        }
    }
    out.push_str("\npaper's row: widths 20 / 18 / 16, reductions 56% / 61% / 66%\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_widths_match_the_published_table() {
        let data = run();
        let widths: Vec<u32> = data.designs.iter().map(|d| d.width).collect();
        assert_eq!(widths, vec![20, 18, 16]);
    }

    #[test]
    fn reductions_match_the_published_percentages() {
        let data = run();
        assert_eq!(data.total_channel_pins, 46);
        let reductions: Vec<f64> = data.designs.iter().map(|d| d.reduction).collect();
        // Paper: 56%, 61%, 66% (rounded); exact: 56.5, 60.9, 65.2.
        assert!((reductions[0] - (1.0 - 20.0 / 46.0)).abs() < 1e-9);
        assert!((reductions[1] - (1.0 - 18.0 / 46.0)).abs() < 1e-9);
        assert!((reductions[2] - (1.0 - 16.0 / 46.0)).abs() < 1e-9);
    }

    #[test]
    fn bus_rates_follow_eq2() {
        for d in run().designs {
            assert_eq!(d.bus_rate, f64::from(d.width) / 2.0);
        }
    }

    #[test]
    fn no_performance_sacrificed() {
        // "In all the three examples, this reduction has been achieved
        // without sacrificing any performance of the processes": every
        // selected width is feasible (bus rate >= sum of average rates),
        // which the generator guarantees by construction.
        let f = flc::flc();
        for d in run().designs {
            let design = ifsyn_core::BusGenerator::new()
                .with_width_range(d.width, d.width)
                .generate(&f.system, &f.bus_channels())
                .expect("selected width is feasible");
            assert!(design.bus_rate >= design.sum_ave_rates);
        }
    }
}

//! Parallel batch simulation front-end.
//!
//! Sweeps and design-space exploration simulate many refined systems
//! that share most of their generated protocol code (the same handshake
//! procedures at every width, the same server loops). [`BatchRunner`]
//! fans the runs out over worker threads and routes every compilation
//! through one shared [`CodeCache`], so each distinct behavior or
//! procedure body is lowered to register bytecode exactly once per
//! batch instead of once per run.
//!
//! ```
//! use ifsyn_bench::batch::BatchRunner;
//! # use ifsyn_spec::{System, Ty, dsl::*};
//! # let mut sys = System::new("b");
//! # let m = sys.add_module("chip");
//! # let b = sys.add_behavior("P", m);
//! # let x = sys.add_variable("x", Ty::Int(8), b);
//! # sys.behavior_mut(b).body = vec![assign(var(x), int_const(1, 8))];
//! let systems = vec![sys.clone(), sys];
//! let reports = BatchRunner::new().with_jobs(2).run(&systems);
//! assert!(reports.iter().all(|r| r.is_ok()));
//! ```

use ifsyn_analyze::{analyze_report, BusAnalysis, BusMeta};
use ifsyn_sim::{CodeCache, LockstepSim, LockstepStats, SimConfig, SimError, SimReport, Simulator};
use ifsyn_spec::System;

use crate::sweep::{parallel_sweep_with, sweep_threads};

/// Runs batches of simulations in parallel with shared compiled code.
#[derive(Debug, Default)]
pub struct BatchRunner {
    jobs: usize,
    config: SimConfig,
    cache: CodeCache,
    lockstep: bool,
}

impl BatchRunner {
    /// Creates a runner with the default configuration and automatic
    /// worker count (the sweep driver's resolution: `--jobs` override,
    /// `IFSYN_SWEEP_THREADS`, then one per core).
    #[must_use]
    pub fn new() -> Self {
        Self {
            jobs: 0,
            config: SimConfig::new(),
            cache: CodeCache::new(),
            lockstep: false,
        }
    }

    /// Sets the worker thread count; 0 means automatic.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the simulator configuration used for every run.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the per-simulation thread count ([`SimConfig::sim_threads`])
    /// used for every run. Composes with the batch fan-out through a
    /// shared thread budget: unless [`BatchRunner::with_jobs`] pins an
    /// explicit worker count, the automatic job count shrinks so that
    /// `jobs × sim_threads` stays within the sweep driver's budget —
    /// batch parallelism across systems and shard parallelism within
    /// each simulation never oversubscribe the machine together.
    #[must_use]
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.config.sim_threads = threads.max(1);
        self
    }

    /// Enables lockstep convoy execution: each worker's share of the
    /// batch goes through [`LockstepSim`], which runs groups of systems
    /// with identical compiled programs through one dispatch stream.
    /// Composes with the thread fan-out — threads split the batch into
    /// contiguous chunks, lockstep convoys form within each chunk.
    #[must_use]
    pub fn with_lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = lockstep;
        self
    }

    /// The worker count the next [`BatchRunner::run`] call will use.
    ///
    /// An explicit [`BatchRunner::with_jobs`] setting is honored as-is;
    /// the automatic count divides the sweep driver's thread budget by
    /// [`BatchRunner::sim_threads`] so the total stays bounded.
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            (sweep_threads() / self.sim_threads()).max(1)
        }
    }

    /// Threads each individual simulation runs on.
    #[must_use]
    pub fn sim_threads(&self) -> usize {
        self.config.sim_threads.max(1)
    }

    /// Total threads a batch may keep busy: `jobs() × sim_threads()`.
    /// This is the number throughput reports should quote.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.jobs() * self.sim_threads()
    }

    /// Distinct code blocks compiled so far (shared across all runs).
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Simulates every system to quiescence, fanning out over the
    /// configured worker count, and returns the reports in input order.
    ///
    /// Each failure is reported in place rather than aborting the batch:
    /// one deadlocked configuration in a width sweep must not cost the
    /// other 29 results.
    pub fn run(&self, systems: &[System]) -> Vec<Result<SimReport, SimError>> {
        if self.lockstep {
            return self.run_lockstep(systems).0;
        }
        parallel_sweep_with(self.jobs(), systems, |sys| {
            Simulator::with_config_cached(sys, self.config.clone(), Some(&self.cache))?
                .run_to_quiescence()
        })
    }

    /// Simulates every `(refined system, bus metadata)` pair with
    /// tracing forced on and runs the bus analyzer over each in-memory
    /// trace, fanning out like [`BatchRunner::run`].
    ///
    /// The trace never touches disk: the simulator records events in
    /// memory and [`ifsyn_analyze::analyze_report`] consumes them
    /// directly — the same events the VCD writer would serialize, minus
    /// the round-trip through text. Tracing is enabled on top of the
    /// configured [`SimConfig`], so callers only need
    /// [`SimConfig::with_max_trace_events`] when the default event cap
    /// is too small for their workload.
    pub fn run_analyzed(&self, jobs: &[(System, BusMeta)]) -> Vec<Result<BusAnalysis, String>> {
        parallel_sweep_with(self.jobs(), jobs, |(sys, meta)| {
            let config = self.config.clone().with_trace();
            let report = Simulator::with_config_cached(sys, config, Some(&self.cache))
                .map_err(|e| e.to_string())?
                .run_to_quiescence()
                .map_err(|e| e.to_string())?;
            analyze_report(sys, &report, meta).map_err(|e| e.to_string())
        })
    }

    /// The lockstep path of [`BatchRunner::run`], also returning the
    /// merged convoy statistics across all worker chunks.
    pub fn run_lockstep(
        &self,
        systems: &[System],
    ) -> (Vec<Result<SimReport, SimError>>, LockstepStats) {
        if systems.is_empty() {
            return (Vec::new(), LockstepStats::default());
        }
        let jobs = self.jobs().max(1);
        let chunk = systems.len().div_ceil(jobs);
        let chunks: Vec<&[System]> = systems.chunks(chunk).collect();
        let per_chunk = parallel_sweep_with(jobs, &chunks, |c| {
            LockstepSim::run_with_stats(c, &self.config, Some(&self.cache))
        });
        let mut out = Vec::with_capacity(systems.len());
        let mut stats = LockstepStats::default();
        for (reports, s) in per_chunk {
            out.extend(reports);
            stats.convoys += s.convoys;
            stats.max_lanes = stats.max_lanes.max(s.max_lanes);
            stats.lockstep_lanes += s.lockstep_lanes;
            stats.peeled_lanes += s.peeled_lanes;
            stats.scalar_lanes += s.scalar_lanes;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
    use ifsyn_systems::flc;

    fn refined_flc(width: u32) -> System {
        let f = flc::flc();
        let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
        ProtocolGenerator::new()
            .refine(&f.system, &design)
            .expect("flc refinement")
            .system
    }

    #[test]
    fn batch_matches_individual_runs() {
        let systems: Vec<System> = [4u32, 8, 16].iter().map(|&w| refined_flc(w)).collect();
        let batch = BatchRunner::new().with_jobs(2).run(&systems);
        for (sys, got) in systems.iter().zip(&batch) {
            let alone = Simulator::new(sys)
                .expect("setup")
                .run_to_quiescence()
                .expect("sim");
            let got = got.as_ref().expect("batch sim");
            assert_eq!(got.time(), alone.time());
            assert_eq!(got.total_instrs(), alone.total_instrs());
            assert_eq!(got.total_deltas(), alone.total_deltas());
        }
    }

    #[test]
    fn cache_is_shared_across_runs() {
        let systems: Vec<System> = vec![refined_flc(8), refined_flc(8)];
        let runner = BatchRunner::new().with_jobs(1);
        let first = runner.run(&systems[..1]);
        assert!(first[0].is_ok());
        let after_one = runner.cached_blocks();
        assert!(after_one > 0, "first run must populate the cache");
        let second = runner.run(&systems[1..]);
        assert!(second[0].is_ok());
        // An identical system compiles no new blocks.
        assert_eq!(runner.cached_blocks(), after_one);
    }

    #[test]
    fn cache_shares_width_independent_blocks_across_widths() {
        // The per-block cache key hashes only the types a block
        // references, so the application behaviors (which never name the
        // bus signals) compile once for the whole width sweep.
        let runner = BatchRunner::new().with_jobs(1);
        runner.run(&[refined_flc(4)]).remove(0).expect("width 4");
        let one_width = runner.cached_blocks();
        runner.run(&[refined_flc(8)]).remove(0).expect("width 8");
        let two_widths = runner.cached_blocks();
        assert!(
            two_widths < 2 * one_width,
            "expected cross-width sharing: {one_width} blocks for one \
             width, {two_widths} after two"
        );
    }

    #[test]
    fn jobs_zero_resolves_to_at_least_one() {
        assert!(BatchRunner::new().jobs() >= 1);
        assert_eq!(BatchRunner::new().with_jobs(3).jobs(), 3);
    }

    #[test]
    fn jobs_and_sim_threads_share_one_budget() {
        // Explicit jobs are honored verbatim and the total multiplies.
        let pinned = BatchRunner::new().with_jobs(2).with_sim_threads(3);
        assert_eq!(pinned.jobs(), 2);
        assert_eq!(pinned.sim_threads(), 3);
        assert_eq!(pinned.total_threads(), 6);
        // Automatic jobs divide the sweep budget: a per-sim thread count
        // at least the whole budget leaves exactly one batch worker.
        let budget = crate::sweep::sweep_threads();
        let auto = BatchRunner::new().with_sim_threads(budget * 2);
        assert_eq!(auto.jobs(), 1);
        assert_eq!(auto.total_threads(), budget * 2);
    }

    #[test]
    fn batch_with_sim_threads_matches_scalar_batch() {
        let systems: Vec<System> = [4u32, 8, 16].iter().map(|&w| refined_flc(w)).collect();
        let scalar = BatchRunner::new().with_jobs(1).run(&systems);
        let parallel = BatchRunner::new()
            .with_jobs(1)
            .with_sim_threads(4)
            .run(&systems);
        for (a, b) in scalar.iter().zip(&parallel) {
            assert_eq!(
                a.as_ref().expect("scalar"),
                b.as_ref().expect("parallel"),
                "sharded simulation diverged inside the batch runner"
            );
        }
    }

    #[test]
    fn lockstep_batch_matches_scalar_batch() {
        let mut systems: Vec<System> = Vec::new();
        for &w in &[4u32, 8] {
            for _ in 0..4 {
                systems.push(refined_flc(w));
            }
        }
        let scalar = BatchRunner::new().with_jobs(1).run(&systems);
        let (lockstep, stats) = BatchRunner::new()
            .with_jobs(1)
            .with_lockstep(true)
            .run_lockstep(&systems);
        // Repeated widths of the refined FLC system compile to identical
        // programs, so they must actually convoy — this is the workload
        // the lockstep engine exists for.
        assert_eq!(stats.convoys, 2, "per-width convoys: {stats:?}");
        assert_eq!(stats.lockstep_lanes, 8, "no peels expected: {stats:?}");
        for (a, b) in scalar.iter().zip(&lockstep) {
            assert_eq!(a.as_ref().expect("scalar"), b.as_ref().expect("lockstep"));
        }
    }

    #[test]
    fn lockstep_run_respects_flag_and_order() {
        let systems: Vec<System> = vec![refined_flc(4), refined_flc(8), refined_flc(4)];
        let runner = BatchRunner::new().with_jobs(1).with_lockstep(true);
        let via_run = runner.run(&systems);
        for (sys, got) in systems.iter().zip(&via_run) {
            let alone = Simulator::new(sys)
                .expect("setup")
                .run_to_quiescence()
                .expect("sim");
            assert_eq!(got.as_ref().expect("lockstep run"), &alone);
        }
    }

    #[test]
    fn run_analyzed_analyzes_in_memory_without_vcd() {
        let f = flc::flc();
        let widths = [4u32, 8];
        let jobs: Vec<(System, BusMeta)> = widths
            .iter()
            .map(|&w| {
                let design =
                    BusDesign::with_width(f.bus_channels(), w, ProtocolKind::FullHandshake);
                let refined = ProtocolGenerator::new()
                    .refine(&f.system, &design)
                    .expect("flc refinement");
                let meta = BusMeta::from_refined(&refined);
                (refined.system, meta)
            })
            .collect();
        let runner = BatchRunner::new()
            .with_jobs(2)
            .with_config(SimConfig::new().with_max_trace_events(2_000_000));
        let results = runner.run_analyzed(&jobs);
        for (r, &width) in results.iter().zip(&widths) {
            let a = r.as_ref().expect("analysis");
            assert_eq!(a.width, width);
            assert_eq!(a.channels.len(), 2);
            assert!(a.words > 0);
            assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        }
    }

    #[test]
    fn failures_stay_in_place() {
        use ifsyn_spec::{dsl::*, Ty};
        let mut bad = System::new("bad");
        let m = bad.add_module("chip");
        let b = bad.add_behavior("P", m);
        let x = bad.add_variable(
            "x",
            Ty::Array {
                elem: Box::new(Ty::Int(8)),
                len: 4,
            },
            b,
        );
        // Out-of-bounds element write: fails at runtime, not at setup.
        bad.behavior_mut(b).body = vec![assign(index(var(x), int_const(9, 8)), int_const(1, 8))];
        let good = refined_flc(4);
        let results = BatchRunner::new().with_jobs(2).run(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}

//! A dependency-free parallel sweep driver.
//!
//! The evaluation sweeps (Fig. 7 widths, ablation configurations) run
//! many completely independent refine-and-simulate jobs; this module
//! fans them out over `std::thread::scope` workers. Each worker builds
//! its own [`ifsyn_sim::Simulator`] inside the thread, so the only
//! shared state is the read-only input slice and one atomic work index.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 means "not set".
static SWEEP_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the sweep worker count for this process.
///
/// The CLI's `--jobs` flag lands here. Passing 0 restores the default
/// resolution order (`IFSYN_SWEEP_THREADS`, then one per core).
pub fn set_sweep_threads(n: usize) {
    SWEEP_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker threads the sweep driver will use.
///
/// Resolution order: [`set_sweep_threads`] override, the
/// `IFSYN_SWEEP_THREADS` environment variable, then one per available
/// core. The resolved count is what `BENCH_sim.json` records as
/// `sweep_threads`, so the file always reflects the actual fan-out.
pub fn sweep_threads() -> usize {
    let forced = SWEEP_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("IFSYN_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, fanning out over all available cores, and
/// returns the results in input order.
///
/// Falls back to a plain serial map for single-core machines or
/// single-item sweeps, so results (and panics) are identical either way.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_sweep<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_sweep_with(sweep_threads(), items, f)
}

/// [`parallel_sweep`] with an explicit worker count, for callers (the
/// batch runner) that manage their own `--jobs` setting.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_sweep_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut acc = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        acc.push((i, f(item)));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<U>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, v) in chunks.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let squares = parallel_sweep(&items, |&x| x * x);
        assert_eq!(squares, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_sweep(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_sweep(&[7], |&x| x + 1), vec![8]);
    }

    /// The kernel must stay `Send` (shared code blocks are `Arc`, not
    /// `Rc`) or the sweep driver cannot build simulators inside workers.
    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ifsyn_sim::Simulator<'static>>();
    }

    #[test]
    fn simulators_run_inside_worker_threads() {
        use ifsyn_sim::Simulator;
        use ifsyn_spec::{dsl::*, System, Ty};
        let widths: Vec<u32> = (1..=8).collect();
        let times = parallel_sweep(&widths, |&w| {
            let mut sys = System::new("t");
            let m = sys.add_module("chip");
            let b = sys.add_behavior("P", m);
            let x = sys.add_variable("x", Ty::Int(16), b);
            sys.behavior_mut(b).body = vec![
                assign(var(x), int_const(i64::from(w), 16)),
                ifsyn_spec::Stmt::compute(u64::from(w), "w"),
            ];
            Simulator::new(&sys)
                .expect("setup")
                .run_to_quiescence()
                .expect("sim")
                .finish_time(b)
                .expect("finished")
        });
        let expected: Vec<u64> = widths.iter().map(|&w| 1 + u64::from(w)).collect();
        assert_eq!(times, expected);
    }
}

//! Ablations: the paper's §6 future-work items, measured.
//!
//! 1. **Protocol choice** — full handshake vs half handshake vs fixed
//!    delay on the same channel ("incorporating protocols other than a
//!    full handshake needs to be studied").
//! 2. **Arbitration delay** — grant latency swept over the shared FLC
//!    bus ("further work is needed to examine the effect of bus
//!    arbitration delays on the performance of processes").
//! 3. **Bus splitting** — an overloaded channel group implemented by
//!    more than one bus ("split the group of channels further").

use ifsyn_core::{
    Arbitration, ArbitrationPolicy, BusDesign, BusGenerator, ProtocolGenerator, ProtocolKind,
};
use ifsyn_sim::Simulator;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{Channel, ChannelDirection, ChannelId, System, Ty};
use ifsyn_systems::flc;

use crate::sweep::parallel_sweep;
use crate::table::Table;

/// Measured time of one protocol variant on the FLC write channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRow {
    /// Protocol name.
    pub protocol: String,
    /// Control lines used.
    pub control_lines: u32,
    /// Measured EVAL_R3 execution time (clocks).
    pub eval_cycles: u64,
}

/// Measured times under one arbitration configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitrationRow {
    /// Policy name.
    pub policy: String,
    /// Grant latency in cycles.
    pub grant_cycles: u32,
    /// Measured EVAL_R3 time on the shared bus.
    pub eval_cycles: u64,
    /// Measured CONV_R2 time on the shared bus.
    pub conv_cycles: u64,
}

/// Splitting outcome for the overloaded group.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitRow {
    /// Number of saturating channels in the group.
    pub channels: usize,
    /// Buses needed after splitting.
    pub buses: usize,
    /// Total wires over all buses.
    pub total_wires: u32,
    /// Widths of the individual buses.
    pub widths: Vec<u32>,
}

/// All ablation results.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationData {
    /// Protocol comparison at width 8.
    pub protocols: Vec<ProtocolRow>,
    /// Arbitration sweep at width 8.
    pub arbitration: Vec<ArbitrationRow>,
    /// Splitting results for 2..=4 saturating channels.
    pub splits: Vec<SplitRow>,
}

/// Measures EVAL_R3 alone on its channel under `protocol` at width 8.
fn measure_protocol(protocol: ProtocolKind) -> u64 {
    let f = flc::flc();
    let design = BusDesign::with_width(vec![f.ch1], 8, protocol);
    let refined = ProtocolGenerator::new()
        .refine(&f.system, &design)
        .expect("protocol ablation refinement");
    Simulator::new(&refined.system)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("sim")
        .finish_time(f.eval_r3)
        .expect("finished")
}

/// Measures the shared FLC bus under an arbitration configuration.
fn measure_arbitration(config: Arbitration) -> (u64, u64) {
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), 8, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .with_arbitration(config)
        .refine(&f.system, &design)
        .expect("arbitration ablation refinement");
    let report = Simulator::new(&refined.system)
        .expect("sim setup")
        .run_to_quiescence()
        .expect("sim");
    (
        report.finish_time(f.eval_r3).expect("eval finished"),
        report.finish_time(f.conv_r2).expect("conv finished"),
    )
}

/// Builds `n` saturating writers whose combined rates exceed any single
/// bus (zero compute padding between accesses).
fn hot_system(n: usize) -> (System, Vec<ChannelId>) {
    let mut sys = System::new("hot");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    for k in 0..n {
        let b = sys.add_behavior(format!("P{k}"), m1);
        let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 16), store);
        let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("hot{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 4,
            accesses: 16,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(15, 16),
            vec![send_at(ch, load(var(i)), load(var(i)))],
        )];
        chans.push(ch);
    }
    (sys, chans)
}

/// Runs all three ablations, fanning each sweep out over all cores.
pub fn run() -> AblationData {
    let protocol_kinds = [
        ProtocolKind::FullHandshake,
        ProtocolKind::HalfHandshake,
        ProtocolKind::FixedDelay { cycles: 2 },
        ProtocolKind::FixedDelay { cycles: 4 },
    ];
    let protocols = parallel_sweep(&protocol_kinds, |&p| ProtocolRow {
        protocol: p.to_string(),
        control_lines: p.control_lines(),
        eval_cycles: measure_protocol(p),
    });

    let mut configs = Vec::new();
    for policy in [
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::FixedPriority,
    ] {
        for grant in [0u32, 1, 2, 4, 8] {
            configs.push(Arbitration {
                policy,
                grant_cycles: grant,
            });
        }
    }
    let arbitration = parallel_sweep(&configs, |&config| {
        let (eval_cycles, conv_cycles) = measure_arbitration(config);
        ArbitrationRow {
            policy: match config.policy {
                ArbitrationPolicy::RoundRobin => "round-robin".to_string(),
                ArbitrationPolicy::FixedPriority => "fixed-priority".to_string(),
            },
            grant_cycles: config.grant_cycles,
            eval_cycles,
            conv_cycles,
        }
    });

    let group_sizes: Vec<usize> = (2..=4).collect();
    let splits = parallel_sweep(&group_sizes, |&n| {
        let (sys, chans) = hot_system(n);
        let outcome = BusGenerator::new()
            .generate_with_split(&sys, &chans)
            .expect("splitting succeeds");
        SplitRow {
            channels: n,
            buses: outcome.bus_count(),
            total_wires: outcome.total_wires(),
            widths: outcome.buses.iter().map(|b| b.width).collect(),
        }
    });

    AblationData {
        protocols,
        arbitration,
        splits,
    }
}

/// Renders the ablations as text.
pub fn render(data: &AblationData) -> String {
    let mut out = String::new();
    out.push_str("Ablation 1 — protocol choice (EVAL_R3 alone, width 8)\n\n");
    let mut t = Table::new(["protocol", "control lines", "EVAL_R3 (clk)"]);
    for r in &data.protocols {
        t.row([
            r.protocol.clone(),
            r.control_lines.to_string(),
            r.eval_cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 2 — arbitration grant delay (shared FLC bus, width 8)\n\n");
    let mut t = Table::new(["policy", "grant (clk)", "EVAL_R3 (clk)", "CONV_R2 (clk)"]);
    for r in &data.arbitration {
        t.row([
            r.policy.clone(),
            r.grant_cycles.to_string(),
            r.eval_cycles.to_string(),
            r.conv_cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 3 — bus splitting for overloaded channel groups\n\n");
    let mut t = Table::new(["channels", "buses", "widths", "total wires"]);
    for r in &data.splits {
        t.row([
            r.channels.to_string(),
            r.buses.to_string(),
            format!("{:?}", r.widths),
            r.total_wires.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_protocols_are_measurably_faster() {
        let data = run();
        let by_name = |n: &str| {
            data.protocols
                .iter()
                .find(|r| r.protocol.starts_with(n))
                .unwrap()
                .eval_cycles
        };
        // half-handshake (1 clk/word) beats full handshake (2 clk/word);
        // fixed-delay(4) is slower than full handshake.
        assert!(by_name("half-handshake") < by_name("full-handshake"));
        assert!(by_name("fixed-delay(4)") > by_name("full-handshake"));
        assert_eq!(by_name("fixed-delay(2)"), by_name("full-handshake"));
    }

    #[test]
    fn grant_delay_slows_processes_monotonically() {
        let data = run();
        let rr: Vec<&ArbitrationRow> = data
            .arbitration
            .iter()
            .filter(|r| r.policy == "round-robin")
            .collect();
        for pair in rr.windows(2) {
            assert!(pair[1].eval_cycles >= pair[0].eval_cycles);
            assert!(pair[1].conv_cycles >= pair[0].conv_cycles);
        }
    }

    #[test]
    fn splitting_scales_with_group_size() {
        let data = run();
        for r in &data.splits {
            assert!(r.buses >= 2, "{} channels stayed on one bus", r.channels);
            assert_eq!(r.widths.len(), r.buses);
        }
    }
}

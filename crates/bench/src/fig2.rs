//! Figure 2: merging channels A and B into bus AB.
//!
//! The paper's illustration: over a representative 4-second window,
//! channel A moves two 8-bit items (4 bits/s average) and channel B
//! three 16-bit items (12 bits/s). A merged bus must sustain at least
//! the *sum* of the average rates (Eq. 1) — here 16 bits/s — and then
//! every item still arrives within the same window, merely shifted by
//! bus-access conflicts.

use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
use ifsyn_sim::{SimConfig, Simulator};
use ifsyn_spec::dsl::*;
use ifsyn_spec::{Channel, ChannelDirection, ChannelId, System, Ty};

use crate::table::{f2, Table};

/// Clock cycles per modelled "second".
pub const CLOCKS_PER_SECOND: u64 = 16;
/// The representative window, in seconds.
pub const WINDOW_SECONDS: u64 = 4;

/// One channel's rate bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct RateRow {
    /// Channel name.
    pub name: String,
    /// Messages in the window.
    pub messages: u64,
    /// Bits per message.
    pub bits_per_message: u32,
    /// Average rate in bits per second.
    pub rate_bits_per_second: f64,
}

/// One candidate width of the merged bus.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthRowF2 {
    /// Bus width in pins.
    pub width: u32,
    /// Bus rate in bits per second (full handshake).
    pub bus_rate_bits_per_second: f64,
    /// Eq. 1 satisfied.
    pub feasible: bool,
}

/// The Fig. 2 experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Data {
    /// Per-channel average rates.
    pub rates: Vec<RateRow>,
    /// Sum of the average rates (bits/second).
    pub sum_rate: f64,
    /// Candidate widths of the merged bus.
    pub widths: Vec<WidthRowF2>,
    /// Smallest feasible width.
    pub min_feasible_width: u32,
    /// Simulated completion time of each sender on the merged bus, in
    /// seconds.
    pub sim_finish_seconds: Vec<(String, f64)>,
    /// Measured utilization of the merged bus over the active window
    /// (the paper's §2 goal is 100%).
    pub measured_utilization: f64,
}

/// Builds the Fig. 2 system: A releases 2 x 8-bit items (t = 0 s, 2 s),
/// B releases 3 x 16-bit items (t = 0 s, 1 s, 3 s). The inter-item waits
/// are shortened by the transfer time on a `width`-pin full-handshake
/// bus so the *release schedule* matches the figure (the bus in the
/// figure is occupied back-to-back; items only shift by access
/// conflicts).
fn build(width: u32) -> (System, ChannelId, ChannelId) {
    use ifsyn_estimate::BusTiming;
    let timing = BusTiming::new(width, 2);
    let t_a = timing.cycles_per_access(8);
    let t_b = timing.cycles_per_access(16);
    let s = CLOCKS_PER_SECOND;
    let mut sys = System::new("fig2");
    let left = sys.add_module("left");
    let right = sys.add_module("right");
    let a = sys.add_behavior("A", left);
    let b = sys.add_behavior("Bsender", left);
    let store = sys.add_behavior("store", right);
    let reg_a = sys.add_variable("REG_A", Ty::Bits(8), store);
    let reg_b = sys.add_variable("REG_B", Ty::Bits(16), store);
    let ch_a = sys.add_channel(Channel {
        name: "A".into(),
        accessor: a,
        variable: reg_a,
        direction: ChannelDirection::Write,
        data_bits: 8,
        addr_bits: 0,
        accesses: 2,
    });
    let ch_b = sys.add_channel(Channel {
        name: "B".into(),
        accessor: b,
        variable: reg_b,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 0,
        accesses: 3,
    });
    // A: items released at t = 0 s and t = 2 s.
    sys.behavior_mut(a).body = vec![
        send(ch_a, bits_const(0xA1, 8)),
        wait_cycles((2 * s).saturating_sub(t_a)),
        send(ch_a, bits_const(0xA2, 8)),
    ];
    // B: items released at t = 0 s, 1 s and 3 s.
    sys.behavior_mut(b).body = vec![
        send(ch_b, bits_const(0xB001, 16)),
        wait_cycles(s.saturating_sub(t_b)),
        send(ch_b, bits_const(0xB002, 16)),
        wait_cycles((2 * s).saturating_sub(t_b)),
        send(ch_b, bits_const(0xB003, 16)),
    ];
    (sys, ch_a, ch_b)
}

/// Runs the experiment.
pub fn run() -> Fig2Data {
    // Channel metadata (and hence the rates) is width-independent; the
    // provisional build only supplies it.
    let (sys, ch_a, ch_b) = build(1);
    let window_clocks = (WINDOW_SECONDS * CLOCKS_PER_SECOND) as f64;
    let rates: Vec<RateRow> = [ch_a, ch_b]
        .iter()
        .map(|&c| {
            let ch = sys.channel(c);
            let rate_per_clock = ch.total_bits() as f64 / window_clocks;
            RateRow {
                name: ch.name.clone(),
                messages: ch.accesses,
                bits_per_message: ch.message_bits(),
                rate_bits_per_second: rate_per_clock * CLOCKS_PER_SECOND as f64,
            }
        })
        .collect();
    let sum_rate: f64 = rates.iter().map(|r| r.rate_bits_per_second).sum();

    let widths: Vec<WidthRowF2> = (1..=16)
        .map(|width| {
            // Eq. 2 with the full handshake: w/2 bits per clock.
            let per_clock = f64::from(width) / 2.0;
            let per_second = per_clock * CLOCKS_PER_SECOND as f64;
            WidthRowF2 {
                width,
                bus_rate_bits_per_second: per_second,
                feasible: per_second >= sum_rate,
            }
        })
        .collect();
    let min_feasible_width = widths
        .iter()
        .find(|w| w.feasible)
        .map(|w| w.width)
        .expect("some width is feasible");

    // Simulate the merged bus at the minimum feasible width, with the
    // release schedule paced for that width.
    let (sys, ch_a, ch_b) = build(min_feasible_width);
    let design = BusDesign::with_width(
        vec![ch_a, ch_b],
        min_feasible_width,
        ProtocolKind::FullHandshake,
    );
    let refined = ProtocolGenerator::new()
        .refine(&sys, &design)
        .expect("fig2 refinement");
    let report = Simulator::with_config(&refined.system, SimConfig::new().with_trace())
        .expect("fig2 simulation setup")
        .run_to_quiescence()
        .expect("fig2 simulation");
    let measured_utilization = ifsyn_sim::analysis::handshake_bus_utilization(
        &report,
        &refined.system,
        refined.bus.start.expect("full handshake has START"),
        2,
    );
    let sim_finish_seconds = ["A", "Bsender"]
        .iter()
        .map(|name| {
            let b = refined.system.behavior_by_name(name).expect("behavior");
            let t = report.finish_time(b).expect("sender finished") as f64;
            (name.to_string(), t / CLOCKS_PER_SECOND as f64)
        })
        .collect();

    Fig2Data {
        rates,
        sum_rate,
        widths,
        min_feasible_width,
        sim_finish_seconds,
        measured_utilization,
    }
}

/// Renders the experiment as text.
pub fn render(data: &Fig2Data) -> String {
    let mut out = String::new();
    out.push_str("Figure 2 — merging channels A and B into bus AB\n");
    out.push_str(&format!(
        "(1 second = {CLOCKS_PER_SECOND} clocks; window = {WINDOW_SECONDS} s)\n\n"
    ));
    let mut t = Table::new(["channel", "items", "bits/item", "AveRate (b/s)"]);
    for r in &data.rates {
        t.row([
            r.name.clone(),
            r.messages.to_string(),
            r.bits_per_message.to_string(),
            f2(r.rate_bits_per_second),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEq. 1: merged bus AB must sustain >= {} b/s\n\n",
        f2(data.sum_rate)
    ));
    let mut t = Table::new(["width (pins)", "BusRate (b/s)", "feasible"]);
    for w in data.widths.iter().take(6) {
        t.row([
            w.width.to_string(),
            f2(w.bus_rate_bits_per_second),
            if w.feasible { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nminimum feasible width: {} pins\n\nsimulated on the {}-pin bus:\n",
        data.min_feasible_width, data.min_feasible_width
    ));
    for (name, secs) in &data.sim_finish_seconds {
        out.push_str(&format!(
            "  {name} delivered all items by t = {} s\n",
            f2(*secs)
        ));
    }
    out.push_str("  (items shifted by bus-access conflicts, same bits in ~the same window)\n");
    out.push_str(&format!(
        "  measured bus utilization over the run: {} (goal: ~100%)\n",
        crate::table::pct(data.measured_utilization)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_rates_match_paper() {
        let data = run();
        assert_eq!(data.rates[0].rate_bits_per_second, 4.0);
        assert_eq!(data.rates[1].rate_bits_per_second, 12.0);
        assert_eq!(data.sum_rate, 16.0);
    }

    #[test]
    fn minimum_feasible_width_sustains_sixteen_bps() {
        let data = run();
        let row = data
            .widths
            .iter()
            .find(|w| w.width == data.min_feasible_width)
            .unwrap();
        assert!(row.bus_rate_bits_per_second >= 16.0);
        // Width 2 at 16 clocks/s and 2 clk/word = exactly 16 b/s.
        assert_eq!(data.min_feasible_width, 2);
    }

    #[test]
    fn merged_bus_delivers_within_the_window_plus_conflicts() {
        let data = run();
        for (name, secs) in &data.sim_finish_seconds {
            // The last item enters the bus at t=3s (B) / t=2s (A); with
            // transfer and contention everything lands well inside 5 s.
            assert!(*secs < 5.0, "{name} took {secs}");
        }
    }

    #[test]
    fn exactly_sufficient_bus_is_nearly_fully_utilised() {
        // At the minimum feasible width the bus rate equals the sum of
        // the channel rates: near-100% utilization is the whole point
        // of merging (paper §2).
        let data = run();
        assert!(
            data.measured_utilization > 0.85,
            "expected a busy bus, got {}",
            data.measured_utilization
        );
    }

    #[test]
    fn render_mentions_key_numbers() {
        let text = render(&run());
        assert!(text.contains("16.00"));
        assert!(text.contains("minimum feasible width: 2"));
    }
}

//! # ifsyn-bench — experiment harness
//!
//! Regenerates every table and figure of the DAC'94 evaluation:
//!
//! * [`fig2`] — channel merging: average rates add, the shared bus needs
//!   `BusRate >= Σ AveRate` (Eq. 1);
//! * [`fig7`] — FLC process execution time vs bus width, analytic and
//!   measured;
//! * [`fig8`] — three constraint sets and the widths they select, with
//!   interconnect reductions;
//! * [`extra`] — the answering machine and Ethernet coprocessor runs
//!   mentioned in §5;
//! * [`overhead`] — the area cost of protocol generation (states,
//!   registers) against the wires it saves;
//! * [`ablation`] — the future-work extensions measured: alternative
//!   protocols, arbitration grant delay, bus splitting;
//! * [`faults`] — the robustness campaign: plain vs timeout-hardened
//!   handshakes under a deterministic fault matrix;
//! * [`calibrate`] — the trace-analytics campaign: estimated vs
//!   observed channel rates across the Fig. 7 sweep, plus the
//!   measured-rate calibration loop run to its fixed point.
//!
//! Run everything with `cargo run -p ifsyn-bench --bin experiments -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod batch;
pub mod calibrate;
pub mod check;
pub mod emit;
pub mod extra;
pub mod faults;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod overhead;
pub mod perf;
pub mod sweep;
pub mod table;

//! The §5 case studies beyond the FLC: the answering machine and the
//! Ethernet network coprocessor, run through the complete pipeline
//! (partition → bus generation → protocol generation → simulation).

use ifsyn_core::{BusGenerator, ProtocolGenerator};
use ifsyn_sim::Simulator;
use ifsyn_spec::System;

use crate::table::{pct, Table};

/// Pipeline results for one case study.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// System name.
    pub name: String,
    /// Channels derived by partitioning.
    pub channel_count: usize,
    /// Sum of dedicated channel pins (merge baseline).
    pub dedicated_pins: u32,
    /// Selected bus width.
    pub width: u32,
    /// Total bus wires (data + control + ID).
    pub total_wires: u32,
    /// Interconnect reduction of the data lines.
    pub reduction: f64,
    /// Simulated finish time of the slowest client process (clocks).
    pub slowest_finish: u64,
    /// Every non-server behavior finished.
    pub all_clients_finished: bool,
}

/// Runs one partitioned system through busgen + protogen + simulation.
fn run_case(name: &str, system: &System, channels: &[ifsyn_spec::ChannelId]) -> CaseStudy {
    let design = BusGenerator::new()
        .generate(system, channels)
        .expect("case-study group is feasible");
    let refined = ProtocolGenerator::new()
        .refine(system, &design)
        .expect("case-study refinement");
    let report = Simulator::new(&refined.system)
        .expect("case-study sim setup")
        .run_to_quiescence()
        .expect("case-study sim");

    // Client processes = original behaviors that are not repeating
    // servers; in these models every original behavior terminates.
    let client_count = system.behaviors.len();
    let mut slowest = 0;
    let mut all_finished = true;
    for i in 0..client_count {
        let b = ifsyn_spec::BehaviorId::new(i as u32);
        if refined.system.behavior(b).repeats {
            continue;
        }
        match report.finish_time(b) {
            Some(t) => slowest = slowest.max(t),
            None => all_finished = false,
        }
    }
    CaseStudy {
        name: name.to_string(),
        channel_count: channels.len(),
        dedicated_pins: design.dedicated_wires(system),
        width: design.width,
        total_wires: design.total_wires(),
        reduction: design.interconnect_reduction(system),
        slowest_finish: slowest,
        all_clients_finished: all_finished,
    }
}

/// Runs both case studies.
pub fn run() -> Vec<CaseStudy> {
    let am = ifsyn_systems::answering_machine();
    let eth = ifsyn_systems::ethernet_coprocessor();
    vec![
        run_case("answering machine", &am.system, &am.groups[0]),
        run_case("ethernet coprocessor", &eth.system, &eth.groups[0]),
    ]
}

/// Renders the case studies as text.
pub fn render(cases: &[CaseStudy]) -> String {
    let mut out = String::new();
    out.push_str("§5 case studies — full pipeline (partition → busgen → protogen → sim)\n\n");
    let mut t = Table::new([
        "system",
        "channels",
        "dedicated pins",
        "bus width",
        "total wires",
        "reduction",
        "slowest client (clk)",
    ]);
    for c in cases {
        t.row([
            c.name.clone(),
            c.channel_count.to_string(),
            c.dedicated_pins.to_string(),
            c.width.to_string(),
            c.total_wires.to_string(),
            pct(c.reduction),
            c.slowest_finish.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_case_studies_complete() {
        for case in run() {
            assert!(case.all_clients_finished, "{} blocked", case.name);
            assert!(case.slowest_finish > 0);
        }
    }

    #[test]
    fn merging_reduces_interconnect() {
        for case in run() {
            assert!(
                case.width < case.dedicated_pins,
                "{}: width {} !< dedicated {}",
                case.name,
                case.width,
                case.dedicated_pins
            );
            assert!(case.reduction > 0.0);
        }
    }

    #[test]
    fn channel_counts_match_models() {
        let cases = run();
        assert_eq!(cases[0].channel_count, 2); // answering machine
        assert_eq!(cases[1].channel_count, 4); // ethernet
    }
}

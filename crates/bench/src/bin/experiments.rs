//! Regenerates every table and figure of the DAC'94 evaluation.
//!
//! ```text
//! cargo run -p ifsyn-bench --bin experiments -- all
//! cargo run -p ifsyn-bench --bin experiments -- fig7 [--lockstep]
//! cargo run -p ifsyn-bench --bin experiments -- bench   # writes BENCH_sim.json
//! cargo run -p ifsyn-bench --bin experiments -- faults  # writes BENCH_faults.json
//! cargo run -p ifsyn-bench --bin experiments -- calibrate
//!     # trace-analytics campaign: estimated vs observed rates over the
//!     # Fig. 7 sweep plus the calibration fixed point; writes
//!     # BENCH_analyze.json and exits nonzero when a pinned invariant
//!     # (alone-run exactness, shortfall tolerance, convergence) fails.
//!     # Options:
//!     #   --out PATH        output file (default BENCH_analyze.json)
//!     #   --tolerance R     worst allowed shared-rate shortfall
//!     #                     (default 0.5)
//! cargo run -p ifsyn-bench --bin experiments -- check
//!     # model-checking campaign over the refined-protocol catalog plus
//!     # the big-system scale run; writes BENCH_check.json and exits
//!     # nonzero on any verdict deviation or scale loss. Options:
//!     #   --out PATH        output file (default BENCH_check.json)
//!     #   --threads N       checker worker threads (reports are
//!     #                     byte-identical at any count; default 1)
//!     #   --min-rate R      fail when the measured exploration rate
//!     #                     drops below R states/second
//!     #   --no-big          skip the big-system scale run
//! cargo run -p ifsyn-bench --bin experiments -- perf --check
//!     # measure and compare against the committed BENCH_sim.json;
//!     # exits nonzero on a throughput regression. Options:
//!     #   --baseline PATH   baseline file (default BENCH_sim.json)
//!     #   --tolerance R     allowed fractional drop (default 0.5 — wide,
//!     #                     because CI machines differ from the machine
//!     #                     that wrote the baseline)
//! ```

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "fig2" => print_fig2(),
        "fig7" => print_fig7_args(&args[1..]),
        "fig8" => print_fig8(),
        "extra" => print_extra(),
        "ablation" => print_ablation(),
        "overhead" => print_overhead(),
        "bench" => {
            if let Err(e) = run_bench(args.get(1).map(String::as_str)) {
                eprintln!("bench failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "faults" => {
            if let Err(e) = run_faults(args.get(1).map(String::as_str)) {
                eprintln!("faults failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "calibrate" => {
            if let Err(e) = run_calibrate(&args[1..]) {
                eprintln!("calibrate failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "check" => {
            if let Err(e) = run_check(&args[1..]) {
                eprintln!("check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "perf" => {
            if let Err(e) = run_perf(&args[1..]) {
                eprintln!("perf: {e}");
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            print_fig2();
            print_fig7();
            print_fig8();
            print_extra();
            print_overhead();
            print_ablation();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected fig2 | fig7 | fig8 | extra | overhead | ablation | bench | faults | check | calibrate | perf | all"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Measures kernel throughput and writes `BENCH_sim.json` (default) or
/// the given output path.
fn run_bench(out_path: Option<&str>) -> std::io::Result<()> {
    rule();
    let data = ifsyn_bench::perf::run();
    print!("{}", ifsyn_bench::perf::render(&data));
    let path = out_path.unwrap_or("BENCH_sim.json");
    std::fs::write(path, ifsyn_bench::perf::to_json(&data))?;
    println!("\nwrote {path}");
    Ok(())
}

/// Measures throughput and, with `--check`, compares against a committed
/// baseline instead of overwriting it.
fn run_perf(args: &[String]) -> Result<(), String> {
    let mut check = false;
    let mut tolerance = 0.5f64;
    let mut baseline_path = "BENCH_sim.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance requires a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".to_string());
                }
            }
            "--baseline" => {
                baseline_path = it.next().ok_or("--baseline requires a value")?.clone();
            }
            other => return Err(format!("unknown perf option `{other}`")),
        }
    }
    rule();
    let data = ifsyn_bench::perf::run();
    print!("{}", ifsyn_bench::perf::render(&data));
    if check {
        let json = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
        let baseline = ifsyn_bench::perf::parse_baseline(&json);
        if baseline.is_empty() {
            return Err(format!("no scenarios found in `{baseline_path}`"));
        }
        println!(
            "\nregression check vs {baseline_path} (tolerance {:.0}%):",
            tolerance * 100.0
        );
        match ifsyn_bench::perf::check(&data, &baseline, tolerance) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                print!("{report}");
                return Err("throughput regression detected".to_string());
            }
        }
    }
    Ok(())
}

/// Runs the fault campaign and writes `BENCH_faults.json` (default) or
/// the given output path. Exits with an error when any protected run
/// corrupted data without raising a flag (an integrity regression).
fn run_faults(out_path: Option<&str>) -> Result<(), String> {
    rule();
    let data = ifsyn_bench::faults::run();
    print!("{}", ifsyn_bench::faults::render(&data));
    let path = out_path.unwrap_or("BENCH_faults.json");
    std::fs::write(path, ifsyn_bench::faults::to_json(&data)).map_err(|e| e.to_string())?;
    println!("\nwrote {path}");
    let silent = data.silent_corruptions();
    if !silent.is_empty() {
        return Err(format!(
            "{} protected run(s) completed corrupt with no status flag raised",
            silent.len()
        ));
    }
    Ok(())
}

/// Runs the trace-analytics campaign and writes `BENCH_analyze.json`
/// (default). Exits with an error when a pinned invariant fails:
/// alone-on-the-bus rates deviating from the static estimates, a shared
/// rate beating its analytic ceiling, the worst shared shortfall
/// exceeding the tolerance, or the calibration loop failing to converge.
fn run_calibrate(args: &[String]) -> Result<(), String> {
    let mut tolerance = ifsyn_bench::calibrate::DEFAULT_TOLERANCE;
    let mut out_path = "BENCH_analyze.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().ok_or("--out requires a value")?.clone(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance requires a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".to_string());
                }
            }
            other => return Err(format!("unknown calibrate option `{other}`")),
        }
    }
    rule();
    let data = ifsyn_bench::calibrate::run();
    print!("{}", ifsyn_bench::calibrate::render(&data));
    std::fs::write(&out_path, ifsyn_bench::calibrate::to_json(&data)).map_err(|e| e.to_string())?;
    println!("\nwrote {out_path}");
    match ifsyn_bench::calibrate::check(&data, tolerance) {
        Ok(summary) => {
            print!("\n{summary}");
            Ok(())
        }
        Err(report) => {
            print!("\npinned checks FAILED:\n{report}");
            Err("trace-analytics regression detected".to_string())
        }
    }
}

/// Runs the model-checking campaign and writes `BENCH_check.json`
/// (default) or the path given with `--out`. Exits with an error when a
/// property that must hold is violated (or a known-broken baseline
/// unexpectedly passes), when the big-system run falls below the
/// million-state scale floor, or when `--min-rate` is given and the
/// measured exploration throughput drops below it.
fn run_check(args: &[String]) -> Result<(), String> {
    let mut out_path = "BENCH_check.json".to_string();
    let mut threads = 1usize;
    let mut min_rate: Option<f64> = None;
    let mut big = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().ok_or("--out requires a value")?.clone(),
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads requires a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--min-rate" => {
                let r = it
                    .next()
                    .ok_or("--min-rate requires a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --min-rate: {e}"))?;
                if r <= 0.0 {
                    return Err("--min-rate must be positive".to_string());
                }
                min_rate = Some(r);
            }
            "--no-big" => big = false,
            // Back-compat: a bare path is the output file, as before.
            other if !other.starts_with('-') => out_path = other.to_string(),
            other => return Err(format!("unknown check option `{other}`")),
        }
    }
    rule();
    let data = ifsyn_bench::check::run_with(&ifsyn_bench::check::CheckOptions { threads, big });
    print!("{}", ifsyn_bench::check::render(&data));
    std::fs::write(&out_path, ifsyn_bench::check::to_json(&data)).map_err(|e| e.to_string())?;
    println!("\nwrote {out_path}");
    let bad = data.unexpected();
    if !bad.is_empty() {
        return Err(format!(
            "{} property result(s) deviate from expectation",
            bad.len()
        ));
    }
    if data.big_failed() {
        return Err("big-system exploration failed or fell below the 1M-state floor".to_string());
    }
    if let Some(floor) = min_rate {
        match data.check_rate(floor) {
            Ok(line) => println!("{line}"),
            Err(line) => {
                println!("{line}");
                return Err("checker throughput regression detected".to_string());
            }
        }
    }
    Ok(())
}

fn rule() {
    println!("\n{}\n", "=".repeat(72));
}

fn print_fig2() {
    rule();
    print!("{}", ifsyn_bench::fig2::render(&ifsyn_bench::fig2::run()));
}

fn print_fig7() {
    print_fig7_args(&[]);
}

/// `fig7 [--lockstep]`: the lockstep flag routes every simulation
/// through the convoy engine; the rendered output is byte-identical.
fn print_fig7_args(args: &[String]) {
    rule();
    let data = if args.iter().any(|a| a == "--lockstep") {
        ifsyn_bench::fig7::run_lockstep()
    } else {
        ifsyn_bench::fig7::run()
    };
    print!("{}", ifsyn_bench::fig7::render(&data));
}

fn print_fig8() {
    rule();
    print!("{}", ifsyn_bench::fig8::render(&ifsyn_bench::fig8::run()));
}

fn print_extra() {
    rule();
    print!("{}", ifsyn_bench::extra::render(&ifsyn_bench::extra::run()));
}

fn print_overhead() {
    rule();
    print!(
        "{}",
        ifsyn_bench::overhead::render(&ifsyn_bench::overhead::run())
    );
}

fn print_ablation() {
    rule();
    print!(
        "{}",
        ifsyn_bench::ablation::render(&ifsyn_bench::ablation::run())
    );
}

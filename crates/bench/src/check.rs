//! Model-checking campaign: exhaustive verification of refined protocols.
//!
//! The fault campaign (`faults.rs`) runs one deterministic schedule per
//! scenario; this campaign runs the explicit-state checker
//! ([`ifsyn_sim::Checker`]) over the *whole* schedule space of the same
//! refined systems, under a nondeterministic fault environment that may
//! strike at any instant. Systems: the Fig. 3 worked example at width 8
//! (every variant) and a reduced two-access FLC at width 16 (plain vs
//! protected) — the full 128-access FLC is far beyond exhaustive reach,
//! but the reduced build generates the identical protocol shape.
//!
//! Properties per exploration:
//!
//! * `gnt_mutex` — **safety invariant**: at most one arbiter grant line
//!   is high in every reachable state (bus mutual exclusion);
//! * `delivers_or_flags` — **terminal safety**: every quiescent state
//!   either has all clients finished with intact data or has a sticky
//!   `*_STAT_*` flag raised. The plain protocol is *expected to fail*
//!   this under faults — the checker produces the known deadlock and
//!   silent-corruption counterexamples — while the protected variant
//!   must pass on every schedule and strike timing;
//! * `eventual_grant` — **liveness** (fault-free runs): from every state
//!   with a request pending and not granted, some continuation grants
//!   it (`AG(REQ ∧ ¬GNT → EF GNT)`). The formulation is
//!   fairness-constrained: a violation means the goal is unreachable on
//!   every continuation, not merely missed by one unfair schedule.
//!
//! Each exploration also records the reachable-state count and the
//! worst-case cycle cost to quiescence — PR 2's analytic completion
//! bound, now measured over *all* schedules instead of one.
//!
//! Every row carries its expected verdict; [`CheckData::unexpected`]
//! reports deviations and `experiments check` exits nonzero on any.
//! Output is hand-rolled JSON (offline build, no serde) written to
//! `BENCH_check.json`.

use ifsyn_core::{BusDesign, ProtocolKind, RefinedSystem};
use ifsyn_sim::{CheckConfig, Checker, EnvFault, StateView};
use ifsyn_spec::Value;
use ifsyn_systems::{fig3, flc};

use crate::emit::{json_opt, json_str};
use crate::faults::{generator, Variant};
use crate::table::Table;

/// Maximum characters of counterexample detail kept per row.
const DETAIL_CAP: usize = 600;

/// One (system, scenario, variant, property) verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRow {
    /// Which system: `"fig3@8"` or `"flcr2@16"`.
    pub system: String,
    /// Fault-environment scenario (`"none"`, `"done_stuck_low"`,
    /// `"data_flip"`).
    pub scenario: String,
    /// Protocol variant of this exploration.
    pub variant: Variant,
    /// Property name.
    pub property: String,
    /// Whether the property held over the explored space.
    pub holds: bool,
    /// The verdict this campaign expects (plain is *expected* to fail
    /// under faults; protected must not).
    pub expected: bool,
    /// Reachable states the check examined.
    pub states: usize,
    /// Counterexample trace/diagnosis for failed properties (capped).
    pub detail: Option<String>,
}

/// Exploration statistics for one (system, scenario, variant).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRow {
    /// Which system.
    pub system: String,
    /// Fault-environment scenario.
    pub scenario: String,
    /// Protocol variant.
    pub variant: Variant,
    /// Distinct reachable states.
    pub states: usize,
    /// Explored transitions.
    pub transitions: usize,
    /// Terminal (quiescent) states.
    pub terminals: usize,
    /// Worst-case cycle cost to quiescence over all schedules
    /// (`None` when a reachable cycle makes it unbounded).
    pub worst_cost: Option<u64>,
}

/// The whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckData {
    /// One row per property verdict.
    pub rows: Vec<CheckRow>,
    /// One row per exploration.
    pub spaces: Vec<SpaceRow>,
}

impl CheckData {
    /// Rows whose verdict deviates from expectation: a required property
    /// violated, or a known-broken baseline unexpectedly passing (which
    /// would mean the checker lost the counterexample). `experiments
    /// check` exits nonzero when this is nonempty.
    pub fn unexpected(&self) -> Vec<&CheckRow> {
        self.rows.iter().filter(|r| r.holds != r.expected).collect()
    }

    /// Failing rows that are expected to fail: the checker's deadlock and
    /// corruption counterexamples against the plain/hardened baselines.
    pub fn known_counterexamples(&self) -> Vec<&CheckRow> {
        self.rows
            .iter()
            .filter(|r| !r.holds && !r.expected)
            .collect()
    }
}

/// The nondeterministic fault environments, over the shared bus `B`'s
/// wires (the checker may strike at *any* instant, unlike the fault
/// campaign's fixed injection times).
fn scenarios() -> Vec<(&'static str, Vec<EnvFault>)> {
    vec![
        ("none", vec![]),
        (
            "done_stuck_low",
            vec![EnvFault::StuckLow {
                signal: "B_DONE".to_string(),
            }],
        ),
        (
            "data_flip",
            vec![EnvFault::FlipBit {
                signal: "B_DATA".to_string(),
                bit: 2,
                budget: 1,
            }],
        ),
    ]
}

/// The expected verdict for a property under a scenario and variant.
fn expected(property: &str, scenario: &str, variant: Variant) -> bool {
    match (property, scenario) {
        // Bus mutual exclusion must survive everything the environment
        // does, on every variant.
        ("gnt_mutex", _) => true,
        // Fault-free liveness must hold on every variant.
        ("eventual_grant", _) => true,
        // Fault-free runs deliver intact data on every variant.
        ("delivers_or_flags", "none") => true,
        // A stuck DONE deadlocks the plain protocol (the known
        // counterexample); hardened/protected abort with their flag.
        ("delivers_or_flags", "done_stuck_low") => variant != Variant::Plain,
        // A data flip silently corrupts plain and hardened transfers;
        // only the protected variant detects and retransmits.
        ("delivers_or_flags", "data_flip") => variant == Variant::Protected,
        _ => true,
    }
}

fn array_elem_i64(v: &Value, i: usize) -> Option<i64> {
    match v {
        Value::Array(items) => items.get(i)?.as_i64().ok(),
        _ => None,
    }
}

fn array_sum_i64(v: &Value) -> i64 {
    match v {
        Value::Array(items) => items.iter().filter_map(|x| x.as_i64().ok()).sum(),
        other => other.as_i64().unwrap_or(0),
    }
}

/// Explores one refined system under one fault environment and checks
/// the property set, appending verdicts and exploration stats.
#[allow(clippy::too_many_arguments)] // one call site per campaign cell; a context struct would just rename the arguments
fn check_one(
    system: &str,
    scenario: &str,
    faults: &[EnvFault],
    variant: Variant,
    refined: &RefinedSystem,
    data_ok: &dyn Fn(&StateView<'_>) -> bool,
    rows: &mut Vec<CheckRow>,
    spaces: &mut Vec<SpaceRow>,
) {
    let mut config = CheckConfig::new();
    for f in faults {
        config = config.with_fault(f.clone());
    }
    // Exploration failures (state cap, runtime error) are recorded as an
    // unexpected row so the gate trips.
    let exploration_failed = |e: ifsyn_sim::SimError, rows: &mut Vec<CheckRow>| {
        rows.push(CheckRow {
            system: system.to_string(),
            scenario: scenario.to_string(),
            variant,
            property: "exploration".to_string(),
            holds: false,
            expected: true,
            states: 0,
            detail: Some(e.to_string()),
        });
    };
    let ck = match Checker::with_config(&refined.system, config) {
        Ok(ck) => ck,
        Err(e) => return exploration_failed(e, rows),
    };
    let ss = match ck.explore() {
        Ok(ss) => ss,
        Err(e) => return exploration_failed(e, rows),
    };
    let (states, transitions, terminals, worst) = (
        ss.state_count(),
        ss.transition_count(),
        ss.terminal_count(),
        ss.worst_cost_to_quiescence(),
    );
    spaces.push(SpaceRow {
        system: system.to_string(),
        scenario: scenario.to_string(),
        variant,
        states,
        transitions,
        terminals,
        worst_cost: worst,
    });
    let mut push = |property: &str, holds: bool, detail: Option<String>| {
        rows.push(CheckRow {
            system: system.to_string(),
            scenario: scenario.to_string(),
            variant,
            property: property.to_string(),
            holds,
            expected: expected(property, scenario, variant),
            states,
            detail: detail.map(|d| {
                if d.len() > DETAIL_CAP {
                    let cut = d
                        .char_indices()
                        .take_while(|&(i, _)| i < DETAIL_CAP)
                        .last()
                        .map_or(0, |(i, c)| i + c.len_utf8());
                    format!("{}…", &d[..cut])
                } else {
                    d
                }
            }),
        });
    };

    // gnt_mutex: at most one arbiter grant high, in every state.
    if let Some(arb) = &refined.bus.arbiter {
        let gnt_names: Vec<String> = arb
            .gnt
            .iter()
            .map(|&g| refined.system.signal(g).name.clone())
            .collect();
        let rep = ss.check_invariant("gnt_mutex", |v| {
            gnt_names.iter().filter(|n| v.signal_high(n)).count() <= 1
        });
        push(
            "gnt_mutex",
            rep.holds,
            rep.counterexample.map(|c| c.to_string()),
        );
    }

    // delivers_or_flags: every quiescent state delivered intact data or
    // raised a sticky abort flag.
    let flag_names: Vec<String> = refined
        .bus
        .status_flags
        .iter()
        .map(|&(_, sig)| refined.system.signal(sig).name.clone())
        .collect();
    let rep = ss.check_terminal("delivers_or_flags", |v| {
        (v.all_done() && data_ok(v)) || flag_names.iter().any(|n| v.signal_high(n))
    });
    push(
        "delivers_or_flags",
        rep.holds,
        rep.counterexample.map(|c| c.to_string()),
    );

    // eventual_grant (fault-free only): every pending request is
    // eventually granted, per arbiter client.
    if scenario == "none" {
        if let Some(arb) = &refined.bus.arbiter {
            let mut holds = true;
            let mut detail = None;
            for (&rq, &gn) in arb.req.iter().zip(&arb.gnt) {
                let rq_name = refined.system.signal(rq).name.clone();
                let gn_name = refined.system.signal(gn).name.clone();
                let rep = ss.check_leads_to(
                    "eventual_grant",
                    |v| v.signal_high(&rq_name) && !v.signal_high(&gn_name),
                    |v| v.signal_high(&gn_name),
                );
                if !rep.holds {
                    holds = false;
                    detail = rep
                        .counterexample
                        .map(|c| format!("request `{rq_name}`:\n{c}"));
                    break;
                }
            }
            push("eventual_grant", holds, detail);
        }
    }
}

/// Runs the campaign: scenarios × variants over fig3@8 and the reduced
/// FLC at width 16.
pub fn run() -> CheckData {
    let mut rows = Vec::new();
    let mut spaces = Vec::new();
    for (scenario, faults) in scenarios() {
        for variant in Variant::ALL {
            let f = fig3::fig3();
            let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
            let refined = generator(variant)
                .refine(&f.system, &design)
                .expect("fig3 check refinement");
            let x = f.x;
            let mem = f.mem;
            let data_ok = |v: &StateView<'_>| {
                let x_ok = v
                    .variable(&name_of_var(&refined, x))
                    .and_then(|val| val.as_i64().ok())
                    == Some(32);
                let mem_ok = v
                    .variable(&name_of_var(&refined, mem))
                    .map(|val| {
                        array_elem_i64(val, 17) == Some(39) && array_elem_i64(val, 60) == Some(1234)
                    })
                    .unwrap_or(false);
                x_ok && mem_ok
            };
            check_one(
                "fig3@8",
                scenario,
                &faults,
                variant,
                &refined,
                &data_ok,
                &mut rows,
                &mut spaces,
            );
        }
        // Reduced FLC: plain (the unhardened baseline) vs protected (the
        // full defense); hardened adds little beyond the fig3 matrix and
        // exhaustive exploration is expensive.
        for variant in [Variant::Plain, Variant::Protected] {
            let f = flc::flc_reduced(2);
            let design = BusDesign::with_width(f.channels(), 16, ProtocolKind::FullHandshake);
            let refined = generator(variant)
                .refine(&f.system, &design)
                .expect("flc_reduced check refinement");
            let trru0 = f.trru0;
            let conv_acc = f.conv_acc;
            let trru0_sum = f.expected_trru0_sum();
            let checksum = f.expected_checksum();
            let data_ok = |v: &StateView<'_>| {
                let acc_ok = v
                    .variable(&name_of_var(&refined, conv_acc))
                    .and_then(|val| val.as_i64().ok())
                    == Some(checksum);
                let mem_ok = v
                    .variable(&name_of_var(&refined, trru0))
                    .map(|val| array_sum_i64(val) == trru0_sum)
                    .unwrap_or(false);
                acc_ok && mem_ok
            };
            check_one(
                "flcr2@16",
                scenario,
                &faults,
                variant,
                &refined,
                &data_ok,
                &mut rows,
                &mut spaces,
            );
        }
    }
    CheckData { rows, spaces }
}

fn name_of_var(refined: &RefinedSystem, id: ifsyn_spec::VarId) -> String {
    refined.system.variable(id).name.clone()
}

/// Renders the campaign as text.
pub fn render(data: &CheckData) -> String {
    let mut out = String::new();
    out.push_str("Model-checking campaign — exhaustive exploration of refined protocols\n\n");
    let mut t = Table::new([
        "system", "scenario", "protocol", "property", "result", "expected", "states",
    ]);
    for r in &data.rows {
        t.row([
            r.system.clone(),
            r.scenario.clone(),
            r.variant.as_str().to_string(),
            r.property.clone(),
            if r.holds { "PASS" } else { "FAIL" }.to_string(),
            if r.expected { "PASS" } else { "FAIL" }.to_string(),
            r.states.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexploration sizes:\n");
    let mut s = Table::new([
        "system",
        "scenario",
        "protocol",
        "states",
        "transitions",
        "terminals",
        "worst cost",
    ]);
    for r in &data.spaces {
        s.row([
            r.system.clone(),
            r.scenario.clone(),
            r.variant.as_str().to_string(),
            r.states.to_string(),
            r.transitions.to_string(),
            r.terminals.to_string(),
            r.worst_cost
                .map_or("unbounded".to_string(), |c| c.to_string()),
        ]);
    }
    out.push_str(&s.render());
    let known = data.known_counterexamples();
    out.push_str(&format!(
        "\n{} expected counterexample(s) against unprotected baselines:\n",
        known.len()
    ));
    for r in known {
        out.push_str(&format!(
            "\n{} / {} ({}) violates {}:\n",
            r.system,
            r.scenario,
            r.variant.as_str(),
            r.property
        ));
        if let Some(d) = &r.detail {
            out.push_str(d);
            out.push('\n');
        }
    }
    let bad = data.unexpected();
    if bad.is_empty() {
        out.push_str("\nall verdicts match expectation\n");
    } else {
        out.push_str(&format!(
            "\nCHECK REGRESSION: {} verdict(s) deviate from expectation\n",
            bad.len()
        ));
        for r in bad {
            out.push_str(&format!(
                "  {} / {} ({}) {}: got {}, expected {}\n",
                r.system,
                r.scenario,
                r.variant.as_str(),
                r.property,
                if r.holds { "PASS" } else { "FAIL" },
                if r.expected { "PASS" } else { "FAIL" },
            ));
            if let Some(d) = &r.detail {
                out.push_str(&format!("    {}\n", d.replace('\n', "\n    ")));
            }
        }
    }
    out
}

/// Serializes the campaign as the `BENCH_check.json` document.
pub fn to_json(data: &CheckData) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ifsyn-bench-check-v1\",\n");
    out.push_str(&format!("  \"unexpected\": {},\n", data.unexpected().len()));
    out.push_str(&format!(
        "  \"known_counterexamples\": {},\n",
        data.known_counterexamples().len()
    ));
    out.push_str("  \"properties\": [\n");
    crate::emit::array_rows(&mut out, &data.rows, |r| {
        format!(
            "    {{\"system\": {}, \"scenario\": {}, \"protocol\": {}, \
             \"property\": {}, \"holds\": {}, \"expected\": {}, \"states\": {}, \
             \"detail\": {}}}",
            json_str(&r.system),
            json_str(&r.scenario),
            json_str(r.variant.as_str()),
            json_str(&r.property),
            r.holds,
            r.expected,
            r.states,
            crate::emit::json_opt_str(r.detail.as_deref()),
        )
    });
    out.push_str("  ],\n");
    out.push_str("  \"explorations\": [\n");
    crate::emit::array_rows(&mut out, &data.spaces, |r| {
        format!(
            "    {{\"system\": {}, \"scenario\": {}, \"protocol\": {}, \
             \"states\": {}, \"transitions\": {}, \"terminals\": {}, \
             \"worst_cost\": {}}}",
            json_str(&r.system),
            json_str(&r.scenario),
            json_str(r.variant.as_str()),
            r.states,
            r.transitions,
            r.terminals,
            json_opt(r.worst_cost),
        )
    });
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_matrix_is_sound() {
        // Plain must be expected to fail under both fault scenarios.
        assert!(!expected(
            "delivers_or_flags",
            "done_stuck_low",
            Variant::Plain
        ));
        assert!(!expected("delivers_or_flags", "data_flip", Variant::Plain));
        assert!(!expected(
            "delivers_or_flags",
            "data_flip",
            Variant::Hardened
        ));
        // Protected must be expected to pass everywhere.
        for scenario in ["none", "done_stuck_low", "data_flip"] {
            assert!(expected("delivers_or_flags", scenario, Variant::Protected));
            assert!(expected("gnt_mutex", scenario, Variant::Protected));
        }
    }

    #[test]
    fn unexpected_gates_on_mismatch() {
        let row = |holds, expected| CheckRow {
            system: "fig3@8".into(),
            scenario: "none".into(),
            variant: Variant::Plain,
            property: "gnt_mutex".into(),
            holds,
            expected,
            states: 10,
            detail: None,
        };
        let data = CheckData {
            rows: vec![row(true, true), row(false, false)],
            spaces: vec![],
        };
        assert!(data.unexpected().is_empty());
        assert_eq!(data.known_counterexamples().len(), 1);
        let data = CheckData {
            rows: vec![row(false, true)],
            spaces: vec![],
        };
        assert_eq!(data.unexpected().len(), 1);
    }

    #[test]
    fn json_is_balanced() {
        let data = CheckData {
            rows: vec![CheckRow {
                system: "fig3@8".into(),
                scenario: "data_flip".into(),
                variant: Variant::Protected,
                property: "delivers_or_flags".into(),
                holds: true,
                expected: true,
                states: 1234,
                detail: None,
            }],
            spaces: vec![SpaceRow {
                system: "fig3@8".into(),
                scenario: "data_flip".into(),
                variant: Variant::Protected,
                states: 1234,
                transitions: 4321,
                terminals: 3,
                worst_cost: Some(99),
            }],
        };
        let json = to_json(&data);
        assert!(json.contains("\"schema\": \"ifsyn-bench-check-v1\""));
        assert!(json.contains("\"worst_cost\": 99"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

#[cfg(test)]
mod exploration_tests {
    use super::*;

    /// Fault-free fig3 at width 8, plain protocol: every schedule the
    /// checker can produce completes with intact data. This is the
    /// regression fence for the eager-release semantics — without
    /// kernel-faithful waiter wake-up, interleaving invents a spurious
    /// missed-pulse deadlock (a server sleeping through the brief START
    /// low phase between two back-to-back bus words).
    #[test]
    fn fig3_plain_fault_free_completes_on_every_schedule() {
        let f = fig3::fig3();
        let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
        let refined = generator(Variant::Plain)
            .refine(&f.system, &design)
            .expect("fig3 refinement");
        let ck = Checker::with_config(&refined.system, CheckConfig::new()).expect("checker");
        let ss = ck.explore().expect("explore");
        assert_eq!(ss.error_count(), 0);
        let rep = ss.check_terminal("all terminals finish", |v| v.all_done());
        assert!(rep.holds, "{:?}", rep.counterexample.map(|c| c.to_string()));
    }

    /// Reduced FLC, protected variant, DONE stuck at 0 at any instant:
    /// no schedule crashes (the bound guard keeps false-accepted
    /// addresses out of the arrays) and every quiescent state either
    /// delivered intact data or raised a sticky status flag. This is
    /// the regression fence for the position-weighted checksum — the
    /// salted-XOR scheme it replaced false-accepted a retry-desynced
    /// word stream here and committed a corrupt address.
    #[test]
    fn flcr2_protected_stuck_done_never_corrupts() {
        let f = flc::flc_reduced(2);
        let design = BusDesign::with_width(f.channels(), 16, ProtocolKind::FullHandshake);
        let refined = generator(Variant::Protected)
            .refine(&f.system, &design)
            .expect("flc_reduced refinement");
        let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
            signal: "B_DONE".to_string(),
        });
        let ck = Checker::with_config(&refined.system, config).expect("checker");
        let ss = ck.explore().expect("explore");
        assert_eq!(ss.error_count(), 0, "no schedule may crash the servers");
        let trru0 = name_of_var(&refined, f.trru0);
        let conv_acc = name_of_var(&refined, f.conv_acc);
        let trru0_sum = f.expected_trru0_sum();
        let checksum = f.expected_checksum();
        let flag_names: Vec<String> = refined
            .bus
            .status_flags
            .iter()
            .map(|&(_, sig)| refined.system.signal(sig).name.clone())
            .collect();
        let rep = ss.check_terminal("delivers_or_flags", |v| {
            let acc_ok = v.variable(&conv_acc).and_then(|x| x.as_i64().ok()) == Some(checksum);
            let mem_ok = v
                .variable(&trru0)
                .map(|x| array_sum_i64(x) == trru0_sum)
                .unwrap_or(false);
            (v.all_done() && acc_ok && mem_ok) || flag_names.iter().any(|n| v.signal_high(n))
        });
        assert!(rep.holds, "{:?}", rep.counterexample.map(|c| c.to_string()));
    }
}

//! Model-checking campaign: exhaustive verification of refined protocols.
//!
//! The fault campaign (`faults.rs`) runs one deterministic schedule per
//! scenario; this campaign runs the explicit-state checker
//! ([`ifsyn_sim::Checker`]) over the *whole* schedule space of the same
//! refined systems, under a nondeterministic fault environment that may
//! strike at any instant. Systems: the Fig. 3 worked example at width 8
//! (every variant) and a reduced two-access FLC at width 16 (plain vs
//! protected) — the full 128-access FLC is far beyond exhaustive reach,
//! but the reduced build generates the identical protocol shape.
//!
//! Properties per exploration:
//!
//! * `gnt_mutex` — **safety invariant**: at most one arbiter grant line
//!   is high in every reachable state (bus mutual exclusion);
//! * `delivers_or_flags` — **terminal safety**: every quiescent state
//!   either has all clients finished with intact data or has a sticky
//!   `*_STAT_*` flag raised. The plain protocol is *expected to fail*
//!   this under faults — the checker produces the known deadlock and
//!   silent-corruption counterexamples — while the protected variant
//!   must pass on every schedule and strike timing;
//! * `eventual_grant` — **liveness** (fault-free runs): from every state
//!   with a request pending and not granted, some continuation grants
//!   it (`AG(REQ ∧ ¬GNT → EF GNT)`). The formulation is
//!   fairness-constrained: a violation means the goal is unreachable on
//!   every continuation, not merely missed by one unfair schedule.
//!
//! Each exploration also records the reachable-state count and the
//! worst-case cycle cost to quiescence — PR 2's analytic completion
//! bound, now measured over *all* schedules instead of one.
//!
//! Every row carries its expected verdict; [`CheckData::unexpected`]
//! reports deviations and `experiments check` exits nonzero on any.
//! Output is hand-rolled JSON (offline build, no serde) written to
//! `BENCH_check.json`.
//!
//! Since the checker-scaling rework every exploration also reports its
//! throughput (states/second), dedup hits, partial-order-reduction split
//! (ample vs fully expanded states) and peak frontier, and the campaign
//! ends with a **big-system** exploration: a synthetic producer/consumer
//! field ([`ifsyn_systems::synth`]) whose compute loops carry cycle
//! costs, pushing the reachable space past a million distinct states —
//! the scale demonstration for the interned-state explorer. `experiments
//! check --min-rate` turns the measured big-system throughput into a
//! regression gate.

use std::time::Instant;

use ifsyn_core::{BusDesign, ProtocolKind, RefinedSystem};
use ifsyn_sim::{CheckConfig, Checker, EnvFault, StateView};
use ifsyn_spec::Value;
use ifsyn_systems::synth::{synth_system, SynthConfig};
use ifsyn_systems::{fig3, flc};

use crate::emit::{json_opt, json_str};
use crate::faults::{generator, Variant};
use crate::table::Table;

/// Maximum characters of counterexample detail kept per row.
const DETAIL_CAP: usize = 600;

/// One (system, scenario, variant, property) verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRow {
    /// Which system: `"fig3@8"` or `"flcr2@16"`.
    pub system: String,
    /// Fault-environment scenario (`"none"`, `"done_stuck_low"`,
    /// `"data_flip"`).
    pub scenario: String,
    /// Protocol variant of this exploration.
    pub variant: Variant,
    /// Property name.
    pub property: String,
    /// Whether the property held over the explored space.
    pub holds: bool,
    /// The verdict this campaign expects (plain is *expected* to fail
    /// under faults; protected must not).
    pub expected: bool,
    /// Reachable states the check examined.
    pub states: usize,
    /// Counterexample trace/diagnosis for failed properties (capped).
    pub detail: Option<String>,
}

/// Exploration statistics for one (system, scenario, variant).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRow {
    /// Which system.
    pub system: String,
    /// Fault-environment scenario.
    pub scenario: String,
    /// Protocol variant.
    pub variant: Variant,
    /// Distinct reachable states.
    pub states: usize,
    /// Explored transitions.
    pub transitions: usize,
    /// Terminal (quiescent) states.
    pub terminals: usize,
    /// Worst-case cycle cost to quiescence over all schedules
    /// (`None` when a reachable cycle makes it unbounded).
    pub worst_cost: Option<u64>,
    /// Wall-clock milliseconds the exploration took.
    pub elapsed_ms: f64,
    /// Exploration throughput in distinct states per second.
    pub states_per_sec: f64,
    /// Successor insertions that hit an already-known state.
    pub dedup_hits: u64,
    /// States expanded through a partial-order-reduced (singleton ample)
    /// successor set.
    pub ample_states: u64,
    /// States expanded with the full successor set.
    pub full_states: u64,
    /// Largest BFS level encountered.
    pub peak_frontier: usize,
    /// Worker threads the exploration ran with.
    pub threads: usize,
}

/// The big-system scale demonstration: one exploration of the synthetic
/// producer/consumer field, sized past a million distinct states.
#[derive(Debug, Clone, PartialEq)]
pub struct BigRow {
    /// Distinct reachable states (the ≥ 1M scale witness).
    pub states: usize,
    /// Explored transitions.
    pub transitions: usize,
    /// Wall-clock milliseconds.
    pub elapsed_ms: f64,
    /// Throughput in distinct states per second.
    pub states_per_sec: f64,
    /// Dedup hits, ample/full split, peak frontier, threads — the same
    /// counters as [`SpaceRow`].
    pub dedup_hits: u64,
    /// States expanded through a singleton ample set.
    pub ample_states: u64,
    /// States expanded fully.
    pub full_states: u64,
    /// Largest BFS level.
    pub peak_frontier: usize,
    /// Worker threads.
    pub threads: usize,
    /// Whether the terminal delivery property held (every quiescent
    /// state has all processes done with consumer sums matching the
    /// simulator's reference run).
    pub holds: bool,
    /// Exploration error, when the run failed outright.
    pub error: Option<String>,
}

/// Options of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Worker threads for every exploration (reports are byte-identical
    /// at any count).
    pub threads: usize,
    /// Run the big-system scale demonstration after the catalog.
    pub big: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            big: false,
        }
    }
}

/// The whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckData {
    /// One row per property verdict.
    pub rows: Vec<CheckRow>,
    /// One row per exploration.
    pub spaces: Vec<SpaceRow>,
    /// The big-system scale run, when requested.
    pub big: Option<BigRow>,
}

impl CheckData {
    /// Rows whose verdict deviates from expectation: a required property
    /// violated, or a known-broken baseline unexpectedly passing (which
    /// would mean the checker lost the counterexample). `experiments
    /// check` exits nonzero when this is nonempty.
    pub fn unexpected(&self) -> Vec<&CheckRow> {
        self.rows.iter().filter(|r| r.holds != r.expected).collect()
    }

    /// Failing rows that are expected to fail: the checker's deadlock and
    /// corruption counterexamples against the plain/hardened baselines.
    pub fn known_counterexamples(&self) -> Vec<&CheckRow> {
        self.rows
            .iter()
            .filter(|r| !r.holds && !r.expected)
            .collect()
    }

    /// Whether the big-system run failed (property violated, exploration
    /// error, or below the million-state scale floor).
    pub fn big_failed(&self) -> bool {
        self.big
            .as_ref()
            .is_some_and(|b| !b.holds || b.error.is_some() || b.states < BIG_MIN_STATES)
    }

    /// Aggregate catalog throughput: total distinct states over total
    /// exploration wall-clock, in states per second.
    pub fn campaign_rate(&self) -> f64 {
        let states: usize = self.spaces.iter().map(|s| s.states).sum();
        let ms: f64 = self.spaces.iter().map(|s| s.elapsed_ms).sum();
        if ms <= 0.0 {
            0.0
        } else {
            states as f64 * 1000.0 / ms
        }
    }

    /// Throughput-floor gate for `experiments check --min-rate`: the
    /// big-system rate (preferred — it is the steady-state measurement)
    /// or, without a big run, the catalog aggregate must reach
    /// `min_rate` states/second. Returns a one-line summary either way.
    pub fn check_rate(&self, min_rate: f64) -> Result<String, String> {
        let (what, rate) = match &self.big {
            Some(b) => ("big-system", b.states_per_sec),
            None => ("campaign", self.campaign_rate()),
        };
        let line = format!("{what} exploration rate: {rate:.0} states/s (floor {min_rate:.0})");
        if rate >= min_rate {
            Ok(line)
        } else {
            Err(line)
        }
    }
}

/// Scale floor of the big-system run: the exploration must cover at
/// least this many distinct states or the campaign fails.
pub const BIG_MIN_STATES: usize = 1_000_000;

/// The nondeterministic fault environments, over the shared bus `B`'s
/// wires (the checker may strike at *any* instant, unlike the fault
/// campaign's fixed injection times).
fn scenarios() -> Vec<(&'static str, Vec<EnvFault>)> {
    vec![
        ("none", vec![]),
        (
            "done_stuck_low",
            vec![EnvFault::StuckLow {
                signal: "B_DONE".to_string(),
            }],
        ),
        (
            "data_flip",
            vec![EnvFault::FlipBit {
                signal: "B_DATA".to_string(),
                bit: 2,
                budget: 1,
            }],
        ),
    ]
}

/// The expected verdict for a property under a scenario and variant.
fn expected(property: &str, scenario: &str, variant: Variant) -> bool {
    match (property, scenario) {
        // Bus mutual exclusion must survive everything the environment
        // does, on every variant.
        ("gnt_mutex", _) => true,
        // Fault-free liveness must hold on every variant.
        ("eventual_grant", _) => true,
        // Fault-free runs deliver intact data on every variant.
        ("delivers_or_flags", "none") => true,
        // A stuck DONE deadlocks the plain protocol (the known
        // counterexample); hardened/protected abort with their flag.
        ("delivers_or_flags", "done_stuck_low") => variant != Variant::Plain,
        // A data flip silently corrupts plain and hardened transfers;
        // only the protected variant detects and retransmits.
        ("delivers_or_flags", "data_flip") => variant == Variant::Protected,
        _ => true,
    }
}

fn array_elem_i64(v: &Value, i: usize) -> Option<i64> {
    match v {
        Value::Array(items) => items.get(i)?.as_i64().ok(),
        _ => None,
    }
}

fn array_sum_i64(v: &Value) -> i64 {
    match v {
        Value::Array(items) => items.iter().filter_map(|x| x.as_i64().ok()).sum(),
        other => other.as_i64().unwrap_or(0),
    }
}

/// Explores one refined system under one fault environment and checks
/// the property set, appending verdicts and exploration stats.
#[allow(clippy::too_many_arguments)] // one call site per campaign cell; a context struct would just rename the arguments
fn check_one(
    system: &str,
    scenario: &str,
    faults: &[EnvFault],
    variant: Variant,
    refined: &RefinedSystem,
    data_ok: &dyn Fn(&StateView<'_>) -> bool,
    threads: usize,
    rows: &mut Vec<CheckRow>,
    spaces: &mut Vec<SpaceRow>,
) {
    let mut config = CheckConfig::new().with_check_threads(threads.max(1));
    for f in faults {
        config = config.with_fault(f.clone());
    }
    // Exploration failures (state cap, runtime error) are recorded as an
    // unexpected row so the gate trips.
    let exploration_failed = |e: ifsyn_sim::SimError, rows: &mut Vec<CheckRow>| {
        rows.push(CheckRow {
            system: system.to_string(),
            scenario: scenario.to_string(),
            variant,
            property: "exploration".to_string(),
            holds: false,
            expected: true,
            states: 0,
            detail: Some(e.to_string()),
        });
    };
    let ck = match Checker::with_config(&refined.system, config) {
        Ok(ck) => ck,
        Err(e) => return exploration_failed(e, rows),
    };
    let t0 = Instant::now();
    let ss = match ck.explore() {
        Ok(ss) => ss,
        Err(e) => return exploration_failed(e, rows),
    };
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let (states, transitions, terminals, worst) = (
        ss.state_count(),
        ss.transition_count(),
        ss.terminal_count(),
        ss.worst_cost_to_quiescence(),
    );
    let st = ss.stats();
    spaces.push(SpaceRow {
        system: system.to_string(),
        scenario: scenario.to_string(),
        variant,
        states,
        transitions,
        terminals,
        worst_cost: worst,
        elapsed_ms,
        states_per_sec: if elapsed_ms > 0.0 {
            states as f64 * 1000.0 / elapsed_ms
        } else {
            0.0
        },
        dedup_hits: st.dedup_hits,
        ample_states: st.ample_states,
        full_states: st.full_states,
        peak_frontier: st.peak_frontier,
        threads: st.threads,
    });
    let mut push = |property: &str, holds: bool, detail: Option<String>| {
        rows.push(CheckRow {
            system: system.to_string(),
            scenario: scenario.to_string(),
            variant,
            property: property.to_string(),
            holds,
            expected: expected(property, scenario, variant),
            states,
            detail: detail.map(|d| {
                if d.len() > DETAIL_CAP {
                    let cut = d
                        .char_indices()
                        .take_while(|&(i, _)| i < DETAIL_CAP)
                        .last()
                        .map_or(0, |(i, c)| i + c.len_utf8());
                    format!("{}…", &d[..cut])
                } else {
                    d
                }
            }),
        });
    };

    // gnt_mutex: at most one arbiter grant high, in every state.
    if let Some(arb) = &refined.bus.arbiter {
        let gnt_names: Vec<String> = arb
            .gnt
            .iter()
            .map(|&g| refined.system.signal(g).name.clone())
            .collect();
        let rep = ss.check_invariant("gnt_mutex", |v| {
            gnt_names.iter().filter(|n| v.signal_high(n)).count() <= 1
        });
        push(
            "gnt_mutex",
            rep.holds,
            rep.counterexample.map(|c| c.to_string()),
        );
    }

    // delivers_or_flags: every quiescent state delivered intact data or
    // raised a sticky abort flag.
    let flag_names: Vec<String> = refined
        .bus
        .status_flags
        .iter()
        .map(|&(_, sig)| refined.system.signal(sig).name.clone())
        .collect();
    let rep = ss.check_terminal("delivers_or_flags", |v| {
        (v.all_done() && data_ok(v)) || flag_names.iter().any(|n| v.signal_high(n))
    });
    push(
        "delivers_or_flags",
        rep.holds,
        rep.counterexample.map(|c| c.to_string()),
    );

    // eventual_grant (fault-free only): every pending request is
    // eventually granted, per arbiter client.
    if scenario == "none" {
        if let Some(arb) = &refined.bus.arbiter {
            let mut holds = true;
            let mut detail = None;
            for (&rq, &gn) in arb.req.iter().zip(&arb.gnt) {
                let rq_name = refined.system.signal(rq).name.clone();
                let gn_name = refined.system.signal(gn).name.clone();
                let rep = ss.check_leads_to(
                    "eventual_grant",
                    |v| v.signal_high(&rq_name) && !v.signal_high(&gn_name),
                    |v| v.signal_high(&gn_name),
                );
                if !rep.holds {
                    holds = false;
                    detail = rep
                        .counterexample
                        .map(|c| format!("request `{rq_name}`:\n{c}"));
                    break;
                }
            }
            push("eventual_grant", holds, detail);
        }
    }
}

/// Runs the catalog campaign with default options (one thread, no
/// big-system run).
pub fn run() -> CheckData {
    run_with(&CheckOptions::default())
}

/// Runs the campaign: scenarios × variants over fig3@8 and the reduced
/// FLC at width 16, plus (with [`CheckOptions::big`]) the big-system
/// scale demonstration.
pub fn run_with(opts: &CheckOptions) -> CheckData {
    let threads = opts.threads.max(1);
    let mut rows = Vec::new();
    let mut spaces = Vec::new();
    for (scenario, faults) in scenarios() {
        for variant in Variant::ALL {
            let f = fig3::fig3();
            let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
            let refined = generator(variant)
                .refine(&f.system, &design)
                .expect("fig3 check refinement");
            let x = f.x;
            let mem = f.mem;
            let data_ok = |v: &StateView<'_>| {
                let x_ok = v
                    .variable(&name_of_var(&refined, x))
                    .and_then(|val| val.as_i64().ok())
                    == Some(32);
                let mem_ok = v
                    .variable(&name_of_var(&refined, mem))
                    .map(|val| {
                        array_elem_i64(val, 17) == Some(39) && array_elem_i64(val, 60) == Some(1234)
                    })
                    .unwrap_or(false);
                x_ok && mem_ok
            };
            check_one(
                "fig3@8",
                scenario,
                &faults,
                variant,
                &refined,
                &data_ok,
                threads,
                &mut rows,
                &mut spaces,
            );
        }
        // Reduced FLC: plain (the unhardened baseline) vs protected (the
        // full defense); hardened adds little beyond the fig3 matrix and
        // exhaustive exploration is expensive.
        for variant in [Variant::Plain, Variant::Protected] {
            let f = flc::flc_reduced(2);
            let design = BusDesign::with_width(f.channels(), 16, ProtocolKind::FullHandshake);
            let refined = generator(variant)
                .refine(&f.system, &design)
                .expect("flc_reduced check refinement");
            let trru0 = f.trru0;
            let conv_acc = f.conv_acc;
            let trru0_sum = f.expected_trru0_sum();
            let checksum = f.expected_checksum();
            let data_ok = |v: &StateView<'_>| {
                let acc_ok = v
                    .variable(&name_of_var(&refined, conv_acc))
                    .and_then(|val| val.as_i64().ok())
                    == Some(checksum);
                let mem_ok = v
                    .variable(&name_of_var(&refined, trru0))
                    .map(|val| array_sum_i64(val) == trru0_sum)
                    .unwrap_or(false);
                acc_ok && mem_ok
            };
            check_one(
                "flcr2@16",
                scenario,
                &faults,
                variant,
                &refined,
                &data_ok,
                threads,
                &mut rows,
                &mut spaces,
            );
        }
    }
    let big = opts.big.then(|| big_system(threads));
    CheckData { rows, spaces, big }
}

/// Configuration of the big-system run: a two-couple producer/consumer
/// field whose compute loops carry a 1-cycle cost, making every
/// iteration a distinct time-abstracted checker state. Under
/// partial-order reduction this explores ~1.26M distinct states (the
/// full interleaving graph is far larger); the compute variables are
/// declared unobserved so the reducer may treat them as private.
fn big_config() -> SynthConfig {
    SynthConfig::new()
        .with_couples(2)
        .with_rounds(16)
        .with_compute(64)
        .with_compute_cost(1)
        .without_conflicts()
}

/// Explores the big synthetic system and checks terminal delivery
/// against sums computed by the reference simulator.
fn big_system(threads: usize) -> BigRow {
    let failed = |e: String| BigRow {
        states: 0,
        transitions: 0,
        elapsed_ms: 0.0,
        states_per_sec: 0.0,
        dedup_hits: 0,
        ample_states: 0,
        full_states: 0,
        peak_frontier: 0,
        threads,
        holds: false,
        error: Some(e),
    };
    let s = synth_system(&big_config());
    // Reference run: the per-couple dataflow is schedule-independent, so
    // one simulated schedule yields the sums every terminal must show.
    let reference = match ifsyn_sim::Simulator::new(&s.system).and_then(|s| s.run_to_quiescence()) {
        Ok(r) => r,
        Err(e) => return failed(format!("reference simulation failed: {e}")),
    };
    let sums: Vec<(String, i64)> = (0..s.consumers.len())
        .map(|i| {
            let name = format!("c{i}_sum");
            let v = reference
                .final_variable_by_name(&name)
                .and_then(|v| v.as_i64().ok())
                .unwrap_or(0);
            (name, v)
        })
        .collect();
    let config = CheckConfig::new()
        .with_check_threads(threads.max(1))
        .with_max_states(1 << 21)
        .with_observed_variables(vec![]);
    let ck = match Checker::with_config(&s.system, config) {
        Ok(ck) => ck,
        Err(e) => return failed(e.to_string()),
    };
    let t0 = Instant::now();
    let ss = match ck.explore() {
        Ok(ss) => ss,
        Err(e) => return failed(e.to_string()),
    };
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let rep = ss.check_terminal("delivers_all_sums", |v| {
        v.all_done()
            && sums
                .iter()
                .all(|(name, want)| v.variable(name).and_then(|x| x.as_i64().ok()) == Some(*want))
    });
    let st = ss.stats();
    BigRow {
        states: ss.state_count(),
        transitions: ss.transition_count(),
        elapsed_ms,
        states_per_sec: if elapsed_ms > 0.0 {
            ss.state_count() as f64 * 1000.0 / elapsed_ms
        } else {
            0.0
        },
        dedup_hits: st.dedup_hits,
        ample_states: st.ample_states,
        full_states: st.full_states,
        peak_frontier: st.peak_frontier,
        threads: st.threads,
        holds: rep.holds,
        error: None,
    }
}

fn name_of_var(refined: &RefinedSystem, id: ifsyn_spec::VarId) -> String {
    refined.system.variable(id).name.clone()
}

/// Percentage of expanded states that took the reduced (ample) path.
fn ample_pct(ample: u64, full: u64) -> f64 {
    let total = ample + full;
    if total == 0 {
        0.0
    } else {
        ample as f64 * 100.0 / total as f64
    }
}

/// Renders the campaign as text.
pub fn render(data: &CheckData) -> String {
    let mut out = String::new();
    out.push_str("Model-checking campaign — exhaustive exploration of refined protocols\n\n");
    let mut t = Table::new([
        "system", "scenario", "protocol", "property", "result", "expected", "states",
    ]);
    for r in &data.rows {
        t.row([
            r.system.clone(),
            r.scenario.clone(),
            r.variant.as_str().to_string(),
            r.property.clone(),
            if r.holds { "PASS" } else { "FAIL" }.to_string(),
            if r.expected { "PASS" } else { "FAIL" }.to_string(),
            r.states.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nexploration sizes:\n");
    let mut s = Table::new([
        "system",
        "scenario",
        "protocol",
        "states",
        "transitions",
        "terminals",
        "worst cost",
        "states/s",
        "ample%",
        "threads",
    ]);
    for r in &data.spaces {
        s.row([
            r.system.clone(),
            r.scenario.clone(),
            r.variant.as_str().to_string(),
            r.states.to_string(),
            r.transitions.to_string(),
            r.terminals.to_string(),
            r.worst_cost
                .map_or("unbounded".to_string(), |c| c.to_string()),
            format!("{:.0}", r.states_per_sec),
            format!("{:.1}", ample_pct(r.ample_states, r.full_states)),
            r.threads.to_string(),
        ]);
    }
    out.push_str(&s.render());
    out.push_str(&format!(
        "\ncatalog throughput: {:.0} states/s aggregate\n",
        data.campaign_rate()
    ));
    if let Some(b) = &data.big {
        match &b.error {
            Some(e) => out.push_str(&format!("\nbig-system exploration FAILED: {e}\n")),
            None => out.push_str(&format!(
                "\nbig-system exploration ({} thread(s)): {} states, {} transitions \
                 in {:.1}s — {:.0} states/s, {:.1}% ample, {} dedup hit(s), \
                 peak frontier {}; delivery property {}\n",
                b.threads,
                b.states,
                b.transitions,
                b.elapsed_ms / 1000.0,
                b.states_per_sec,
                ample_pct(b.ample_states, b.full_states),
                b.dedup_hits,
                b.peak_frontier,
                if b.holds { "PASS" } else { "FAIL" },
            )),
        }
    }
    let known = data.known_counterexamples();
    out.push_str(&format!(
        "\n{} expected counterexample(s) against unprotected baselines:\n",
        known.len()
    ));
    for r in known {
        out.push_str(&format!(
            "\n{} / {} ({}) violates {}:\n",
            r.system,
            r.scenario,
            r.variant.as_str(),
            r.property
        ));
        if let Some(d) = &r.detail {
            out.push_str(d);
            out.push('\n');
        }
    }
    let bad = data.unexpected();
    if bad.is_empty() {
        out.push_str("\nall verdicts match expectation\n");
    } else {
        out.push_str(&format!(
            "\nCHECK REGRESSION: {} verdict(s) deviate from expectation\n",
            bad.len()
        ));
        for r in bad {
            out.push_str(&format!(
                "  {} / {} ({}) {}: got {}, expected {}\n",
                r.system,
                r.scenario,
                r.variant.as_str(),
                r.property,
                if r.holds { "PASS" } else { "FAIL" },
                if r.expected { "PASS" } else { "FAIL" },
            ));
            if let Some(d) = &r.detail {
                out.push_str(&format!("    {}\n", d.replace('\n', "\n    ")));
            }
        }
    }
    out
}

/// Serializes the campaign as the `BENCH_check.json` document. Schema
/// v2 is a superset of v1: every v1 field keeps its name and meaning;
/// v2 adds per-exploration throughput/reduction counters, a campaign
/// `throughput` block and the optional `big_system` block.
pub fn to_json(data: &CheckData) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ifsyn-bench-check-v2\",\n");
    out.push_str(&format!("  \"unexpected\": {},\n", data.unexpected().len()));
    out.push_str(&format!(
        "  \"known_counterexamples\": {},\n",
        data.known_counterexamples().len()
    ));
    out.push_str("  \"properties\": [\n");
    crate::emit::array_rows(&mut out, &data.rows, |r| {
        format!(
            "    {{\"system\": {}, \"scenario\": {}, \"protocol\": {}, \
             \"property\": {}, \"holds\": {}, \"expected\": {}, \"states\": {}, \
             \"detail\": {}}}",
            json_str(&r.system),
            json_str(&r.scenario),
            json_str(r.variant.as_str()),
            json_str(&r.property),
            r.holds,
            r.expected,
            r.states,
            crate::emit::json_opt_str(r.detail.as_deref()),
        )
    });
    out.push_str("  ],\n");
    out.push_str("  \"explorations\": [\n");
    crate::emit::array_rows(&mut out, &data.spaces, |r| {
        format!(
            "    {{\"system\": {}, \"scenario\": {}, \"protocol\": {}, \
             \"states\": {}, \"transitions\": {}, \"terminals\": {}, \
             \"worst_cost\": {}, \"elapsed_ms\": {:.3}, \
             \"states_per_sec\": {:.1}, \"dedup_hits\": {}, \
             \"ample_states\": {}, \"full_states\": {}, \
             \"ample_ratio\": {:.4}, \"peak_frontier\": {}, \"threads\": {}}}",
            json_str(&r.system),
            json_str(&r.scenario),
            json_str(r.variant.as_str()),
            r.states,
            r.transitions,
            r.terminals,
            json_opt(r.worst_cost),
            r.elapsed_ms,
            r.states_per_sec,
            r.dedup_hits,
            r.ample_states,
            r.full_states,
            ample_pct(r.ample_states, r.full_states) / 100.0,
            r.peak_frontier,
            r.threads,
        )
    });
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"throughput\": {{\"campaign_states_per_sec\": {:.1}}},\n",
        data.campaign_rate()
    ));
    match &data.big {
        None => out.push_str("  \"big_system\": null\n"),
        Some(b) => out.push_str(&format!(
            "  \"big_system\": {{\"states\": {}, \"transitions\": {}, \
             \"elapsed_ms\": {:.3}, \"states_per_sec\": {:.1}, \
             \"dedup_hits\": {}, \"ample_states\": {}, \"full_states\": {}, \
             \"ample_ratio\": {:.4}, \"peak_frontier\": {}, \"threads\": {}, \
             \"holds\": {}, \"error\": {}}}\n",
            b.states,
            b.transitions,
            b.elapsed_ms,
            b.states_per_sec,
            b.dedup_hits,
            b.ample_states,
            b.full_states,
            ample_pct(b.ample_states, b.full_states) / 100.0,
            b.peak_frontier,
            b.threads,
            b.holds,
            crate::emit::json_opt_str(b.error.as_deref()),
        )),
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_matrix_is_sound() {
        // Plain must be expected to fail under both fault scenarios.
        assert!(!expected(
            "delivers_or_flags",
            "done_stuck_low",
            Variant::Plain
        ));
        assert!(!expected("delivers_or_flags", "data_flip", Variant::Plain));
        assert!(!expected(
            "delivers_or_flags",
            "data_flip",
            Variant::Hardened
        ));
        // Protected must be expected to pass everywhere.
        for scenario in ["none", "done_stuck_low", "data_flip"] {
            assert!(expected("delivers_or_flags", scenario, Variant::Protected));
            assert!(expected("gnt_mutex", scenario, Variant::Protected));
        }
    }

    #[test]
    fn unexpected_gates_on_mismatch() {
        let row = |holds, expected| CheckRow {
            system: "fig3@8".into(),
            scenario: "none".into(),
            variant: Variant::Plain,
            property: "gnt_mutex".into(),
            holds,
            expected,
            states: 10,
            detail: None,
        };
        let data = CheckData {
            rows: vec![row(true, true), row(false, false)],
            spaces: vec![],
            big: None,
        };
        assert!(data.unexpected().is_empty());
        assert_eq!(data.known_counterexamples().len(), 1);
        let data = CheckData {
            rows: vec![row(false, true)],
            spaces: vec![],
            big: None,
        };
        assert_eq!(data.unexpected().len(), 1);
    }

    fn big_row() -> BigRow {
        BigRow {
            states: 1_256_402,
            transitions: 2_391_381,
            elapsed_ms: 8_000.0,
            states_per_sec: 157_050.2,
            dedup_hits: 1_134_980,
            ample_states: 119_920,
            full_states: 1_136_482,
            peak_frontier: 822,
            threads: 1,
            holds: true,
            error: None,
        }
    }

    #[test]
    fn big_gate_trips_on_failure_or_scale_loss() {
        let ok = CheckData {
            rows: vec![],
            spaces: vec![],
            big: Some(big_row()),
        };
        assert!(!ok.big_failed());
        let mut small = ok.clone();
        small.big.as_mut().unwrap().states = BIG_MIN_STATES - 1;
        assert!(small.big_failed());
        let mut violated = ok.clone();
        violated.big.as_mut().unwrap().holds = false;
        assert!(violated.big_failed());
        let mut errored = ok.clone();
        errored.big.as_mut().unwrap().error = Some("boom".into());
        assert!(errored.big_failed());
        // No big run: nothing to gate on.
        assert!(!CheckData {
            rows: vec![],
            spaces: vec![],
            big: None
        }
        .big_failed());
    }

    #[test]
    fn rate_gate_uses_big_system_throughput() {
        let data = CheckData {
            rows: vec![],
            spaces: vec![],
            big: Some(big_row()),
        };
        assert!(data.check_rate(55_000.0).is_ok());
        assert!(data.check_rate(1_000_000.0).is_err());
        // Without a big run the catalog aggregate is the measurement.
        let data = CheckData {
            rows: vec![],
            spaces: vec![SpaceRow {
                system: "fig3@8".into(),
                scenario: "none".into(),
                variant: Variant::Plain,
                states: 1000,
                transitions: 2000,
                terminals: 1,
                worst_cost: Some(9),
                elapsed_ms: 100.0,
                states_per_sec: 10_000.0,
                dedup_hits: 0,
                ample_states: 0,
                full_states: 1000,
                peak_frontier: 10,
                threads: 1,
            }],
            big: None,
        };
        assert!(data.check_rate(9_000.0).is_ok());
        assert!(data.check_rate(11_000.0).is_err());
    }

    #[test]
    fn json_is_balanced() {
        let data = CheckData {
            rows: vec![CheckRow {
                system: "fig3@8".into(),
                scenario: "data_flip".into(),
                variant: Variant::Protected,
                property: "delivers_or_flags".into(),
                holds: true,
                expected: true,
                states: 1234,
                detail: None,
            }],
            spaces: vec![SpaceRow {
                system: "fig3@8".into(),
                scenario: "data_flip".into(),
                variant: Variant::Protected,
                states: 1234,
                transitions: 4321,
                terminals: 3,
                worst_cost: Some(99),
                elapsed_ms: 12.5,
                states_per_sec: 98_720.0,
                dedup_hits: 55,
                ample_states: 400,
                full_states: 834,
                peak_frontier: 17,
                threads: 2,
            }],
            big: Some(big_row()),
        };
        let json = to_json(&data);
        assert!(json.contains("\"schema\": \"ifsyn-bench-check-v2\""));
        // Every v1 field survives under its v1 name.
        for field in [
            "\"system\"",
            "\"scenario\"",
            "\"protocol\"",
            "\"property\"",
            "\"holds\"",
            "\"expected\"",
            "\"states\"",
            "\"detail\"",
            "\"transitions\"",
            "\"terminals\"",
            "\"worst_cost\": 99",
        ] {
            assert!(json.contains(field), "missing v1 field {field}");
        }
        // And the v2 additions are present.
        for field in [
            "\"states_per_sec\"",
            "\"dedup_hits\"",
            "\"ample_ratio\"",
            "\"peak_frontier\"",
            "\"threads\"",
            "\"throughput\"",
            "\"big_system\"",
        ] {
            assert!(json.contains(field), "missing v2 field {field}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Without a big run the block is an explicit null.
        let none = CheckData {
            rows: vec![],
            spaces: vec![],
            big: None,
        };
        assert!(to_json(&none).contains("\"big_system\": null"));
    }
}

#[cfg(test)]
mod exploration_tests {
    use super::*;

    /// Fault-free fig3 at width 8, plain protocol: every schedule the
    /// checker can produce completes with intact data. This is the
    /// regression fence for the eager-release semantics — without
    /// kernel-faithful waiter wake-up, interleaving invents a spurious
    /// missed-pulse deadlock (a server sleeping through the brief START
    /// low phase between two back-to-back bus words).
    #[test]
    fn fig3_plain_fault_free_completes_on_every_schedule() {
        let f = fig3::fig3();
        let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
        let refined = generator(Variant::Plain)
            .refine(&f.system, &design)
            .expect("fig3 refinement");
        let ck = Checker::with_config(&refined.system, CheckConfig::new()).expect("checker");
        let ss = ck.explore().expect("explore");
        assert_eq!(ss.error_count(), 0);
        let rep = ss.check_terminal("all terminals finish", |v| v.all_done());
        assert!(rep.holds, "{:?}", rep.counterexample.map(|c| c.to_string()));
    }

    /// Reduced FLC, protected variant, DONE stuck at 0 at any instant:
    /// no schedule crashes (the bound guard keeps false-accepted
    /// addresses out of the arrays) and every quiescent state either
    /// delivered intact data or raised a sticky status flag. This is
    /// the regression fence for the position-weighted checksum — the
    /// salted-XOR scheme it replaced false-accepted a retry-desynced
    /// word stream here and committed a corrupt address.
    #[test]
    fn flcr2_protected_stuck_done_never_corrupts() {
        let f = flc::flc_reduced(2);
        let design = BusDesign::with_width(f.channels(), 16, ProtocolKind::FullHandshake);
        let refined = generator(Variant::Protected)
            .refine(&f.system, &design)
            .expect("flc_reduced refinement");
        let config = CheckConfig::new().with_fault(EnvFault::StuckLow {
            signal: "B_DONE".to_string(),
        });
        let ck = Checker::with_config(&refined.system, config).expect("checker");
        let ss = ck.explore().expect("explore");
        assert_eq!(ss.error_count(), 0, "no schedule may crash the servers");
        let trru0 = name_of_var(&refined, f.trru0);
        let conv_acc = name_of_var(&refined, f.conv_acc);
        let trru0_sum = f.expected_trru0_sum();
        let checksum = f.expected_checksum();
        let flag_names: Vec<String> = refined
            .bus
            .status_flags
            .iter()
            .map(|&(_, sig)| refined.system.signal(sig).name.clone())
            .collect();
        let rep = ss.check_terminal("delivers_or_flags", |v| {
            let acc_ok = v.variable(&conv_acc).and_then(|x| x.as_i64().ok()) == Some(checksum);
            let mem_ok = v
                .variable(&trru0)
                .map(|x| array_sum_i64(x) == trru0_sum)
                .unwrap_or(false);
            (v.all_done() && acc_ok && mem_ok) || flag_names.iter().any(|n| v.signal_high(n))
        });
        assert!(rep.holds, "{:?}", rep.counterexample.map(|c| c.to_string()));
    }
}

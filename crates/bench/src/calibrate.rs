//! Measured-rate calibration campaign and the `BENCH_analyze.json`
//! emitter.
//!
//! Closes the loop between the static rate estimator (Section 3's
//! inputs) and the simulator: across the Fig. 7 sweep the FLC system is
//! traced and analyzed at every width, once per channel alone on the
//! bus and once shared, and the analyzer's observed transfer rates are
//! compared against the static estimates the width-selection loop
//! consumes.
//!
//! Two results are pinned:
//!
//! * **alone-on-the-bus rates are exact** — a process that never
//!   arbitrates runs at the analytic rate, so the observed rate must
//!   match the static estimate to floating-point noise (the same
//!   invariant Fig. 7's `measured == analytic` columns rest on);
//! * **shared-bus rates never exceed the estimates** — arbitration can
//!   only stretch an accessor, and the worst relative shortfall across
//!   the sweep must stay inside a pinned tolerance.
//!
//! The campaign then runs the fixed-point calibration loop
//! ([`ifsyn_analyze::calibrate`]) on the shared FLC: measured rates
//! replace the static ones, width selection re-runs, and the loop must
//! converge on a width that re-selects itself. `experiments calibrate`
//! writes everything to `BENCH_analyze.json` and exits nonzero when any
//! pinned check fails.

use ifsyn_analyze::{calibrate, BusMeta, CalibrationOptions, CalibrationReport};
use ifsyn_core::{BusDesign, BusGenerator, ProtocolGenerator, ProtocolKind};
use ifsyn_estimate::{ChannelRates, ChannelTimings};
use ifsyn_sim::SimConfig;
use ifsyn_spec::{ChannelId, System};
use ifsyn_systems::flc;

use crate::batch::BatchRunner;
use crate::emit::{array_rows, json_str};
use crate::table::Table;

/// Trace-event budget per simulation (the shared width-1 run is the
/// largest trace in the sweep).
const TRACE_CAP: usize = 2_000_000;

/// Default ceiling on the worst shared-bus relative error across the
/// sweep. Pinned from a measured worst case of ~0.455 (width 1, where
/// both FLC channels stretch heavily while arbitrating); growth past
/// this means the simulator or analyzer drifted, shrinkage is fine.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Absolute slack allowed on the alone-on-the-bus exactness invariant.
pub const ALONE_EPS: f64 = 1e-9;

/// Estimated-vs-observed rates for one channel at one sweep width.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Bus width in bits.
    pub width: u32,
    /// Channel name (`ch1` = `EVAL_R3`, `ch2` = `CONV_R2`).
    pub channel: String,
    /// Static estimate with the channel alone on the bus.
    pub estimated_alone: f64,
    /// Analyzer-observed rate with the channel alone on the bus.
    pub observed_alone: f64,
    /// Static estimate on the shared two-channel bus.
    pub estimated_shared: f64,
    /// Analyzer-observed rate on the shared two-channel bus.
    pub observed_shared: f64,
}

impl SweepRow {
    /// Absolute relative error of the alone run (must be ~0).
    pub fn alone_error(&self) -> f64 {
        if self.estimated_alone == 0.0 {
            return self.observed_alone.abs();
        }
        ((self.observed_alone - self.estimated_alone) / self.estimated_alone).abs()
    }

    /// Signed relative shortfall of the shared run: positive when the
    /// estimator overshoots what the trace measured (contention),
    /// negative would mean the simulator beat the analytic rate.
    pub fn shared_error(&self) -> f64 {
        if self.estimated_shared == 0.0 {
            return 0.0;
        }
        (self.estimated_shared - self.observed_shared) / self.estimated_shared
    }
}

/// The whole campaign: the sweep cross-check plus the calibration
/// fixed point.
#[derive(Debug, Clone)]
pub struct CalibrateData {
    /// One row per (width, channel).
    pub rows: Vec<SweepRow>,
    /// The fixed-point calibration run on the shared FLC.
    pub calibration: CalibrationReport,
}

impl CalibrateData {
    /// Worst alone-run relative error across the sweep.
    pub fn max_alone_error(&self) -> f64 {
        self.rows
            .iter()
            .map(SweepRow::alone_error)
            .fold(0.0, f64::max)
    }

    /// Worst shared-run relative shortfall across the sweep.
    pub fn max_shared_error(&self) -> f64 {
        self.rows
            .iter()
            .map(SweepRow::shared_error)
            .fold(0.0, f64::max)
    }
}

/// Refines the FLC system restricted to `channels` at `width` and pairs
/// it with its bus metadata, ready for [`BatchRunner::run_analyzed`].
fn job(sys: &System, channels: Vec<ChannelId>, width: u32) -> (System, BusMeta) {
    let design = BusDesign::with_width(channels, width, ProtocolKind::FullHandshake);
    let refined = ProtocolGenerator::new()
        .refine(sys, &design)
        .expect("flc refinement");
    let meta = BusMeta::from_refined(&refined);
    (refined.system, meta)
}

/// Runs the campaign over the given sweep widths.
pub fn run_widths(widths: &[u32]) -> CalibrateData {
    let f = flc::flc();
    // Three traced configurations per width: shared, eval alone, conv
    // alone — the same grid as Fig. 7, but analyzed instead of timed.
    let mut jobs = Vec::with_capacity(widths.len() * 3);
    for &w in widths {
        jobs.push(job(&f.system, f.bus_channels(), w));
        jobs.push(job(&f.system, vec![f.ch1], w));
        jobs.push(job(&f.system, vec![f.ch2], w));
    }
    let runner = BatchRunner::new().with_config(SimConfig::new().with_max_trace_events(TRACE_CAP));
    let analyses = runner.run_analyzed(&jobs);

    let mut rows = Vec::with_capacity(widths.len() * 2);
    for (i, &width) in widths.iter().enumerate() {
        let shared = analyses[i * 3].as_ref().expect("shared analysis");
        let timing = ProtocolKind::FullHandshake.timing(width);
        let shared_timings = ChannelTimings::uniform(&f.bus_channels(), timing);
        for (k, (ch, name)) in [(f.ch1, "ch1"), (f.ch2, "ch2")].into_iter().enumerate() {
            let alone = analyses[i * 3 + 1 + k].as_ref().expect("alone analysis");
            let alone_timings = ChannelTimings::uniform(&[ch], timing);
            rows.push(SweepRow {
                width,
                channel: name.to_string(),
                estimated_alone: ChannelRates::new()
                    .average_rate(&f.system, ch, &alone_timings)
                    .expect("alone estimate"),
                observed_alone: alone.observed_rate(name).expect("alone rate"),
                estimated_shared: ChannelRates::new()
                    .average_rate(&f.system, ch, &shared_timings)
                    .expect("shared estimate"),
                observed_shared: shared.observed_rate(name).expect("shared rate"),
            });
        }
    }

    let calibration = calibrate(
        &f.system,
        &f.bus_channels(),
        &BusGenerator::new(),
        CalibrationOptions::default(),
    )
    .expect("flc calibration");
    CalibrateData { rows, calibration }
}

/// Runs the full campaign (the Fig. 7 widths, 1..=30).
pub fn run() -> CalibrateData {
    let widths: Vec<u32> = (1..=30).collect();
    run_widths(&widths)
}

/// Renders the campaign as text.
pub fn render(data: &CalibrateData) -> String {
    let mut out = String::new();
    out.push_str("Estimated vs observed channel rates (FLC, Fig. 7 sweep)\n\n");
    let mut t = Table::new([
        "width",
        "channel",
        "est alone",
        "obs alone",
        "err",
        "est shared",
        "obs shared",
        "shortfall",
    ]);
    for r in &data.rows {
        t.row([
            r.width.to_string(),
            r.channel.clone(),
            format!("{:.4}", r.estimated_alone),
            format!("{:.4}", r.observed_alone),
            format!("{:.1e}", r.alone_error()),
            format!("{:.4}", r.estimated_shared),
            format!("{:.4}", r.observed_shared),
            format!("{:.1}%", r.shared_error() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nworst alone error: {:.2e}   worst shared shortfall: {:.1}%\n",
        data.max_alone_error(),
        data.max_shared_error() * 100.0
    ));
    out.push('\n');
    out.push_str(&data.calibration.render());
    out
}

/// Serializes the campaign as the `BENCH_analyze.json` document.
pub fn to_json(data: &CalibrateData) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ifsyn-bench-analyze-v1\",\n");
    out.push_str(&format!(
        "  \"max_alone_error\": {:e},\n",
        data.max_alone_error()
    ));
    out.push_str(&format!(
        "  \"max_shared_error\": {:.6},\n",
        data.max_shared_error()
    ));
    out.push_str("  \"sweep\": [\n");
    array_rows(&mut out, &data.rows, |r| {
        format!(
            "    {{\"width\": {}, \"channel\": {}, \"estimated_alone\": {:.6}, \
             \"observed_alone\": {:.6}, \"estimated_shared\": {:.6}, \
             \"observed_shared\": {:.6}, \"shared_error\": {:.6}}}",
            r.width,
            json_str(&r.channel),
            r.estimated_alone,
            r.observed_alone,
            r.estimated_shared,
            r.observed_shared,
            r.shared_error(),
        )
    });
    out.push_str("  ],\n");
    let c = &data.calibration;
    out.push_str("  \"calibration\": {\n");
    out.push_str(&format!("    \"initial_width\": {},\n", c.initial_width));
    out.push_str(&format!("    \"final_width\": {},\n", c.final_width));
    out.push_str(&format!("    \"converged\": {},\n", c.converged));
    out.push_str(&format!("    \"iterations\": {},\n", c.steps.len()));
    out.push_str(&format!(
        "    \"final_utilization\": {:.6},\n",
        c.final_analysis.utilization
    ));
    out.push_str("    \"steps\": [\n");
    array_rows(&mut out, &c.steps, |s| {
        let channels: Vec<String> = s
            .channels
            .iter()
            .map(|ch| {
                format!(
                    "{{\"name\": {}, \"estimated\": {:.6}, \"observed\": {:.6}, \
                     \"scale\": {:.6}}}",
                    json_str(&ch.name),
                    ch.estimated_rate,
                    ch.observed_rate,
                    ch.scale,
                )
            })
            .collect();
        format!(
            "      {{\"iteration\": {}, \"width\": {}, \"next_width\": {}, \"channels\": [{}]}}",
            s.iteration,
            s.width,
            s.next_width,
            channels.join(", "),
        )
    });
    out.push_str("    ]\n  }\n}\n");
    out
}

/// Applies the pinned checks: alone-run exactness, shared rates never
/// above the estimates, the worst shared shortfall inside `tolerance`,
/// and convergence of the calibration loop.
///
/// # Errors
///
/// Returns `Err` with the list of violations when any pinned invariant
/// fails; `Ok` carries a one-line summary otherwise.
pub fn check(data: &CalibrateData, tolerance: f64) -> Result<String, String> {
    let mut violations = Vec::new();
    for r in &data.rows {
        if r.alone_error() > ALONE_EPS {
            violations.push(format!(
                "  width {} {}: alone-on-bus rate {:.9} deviates from the static \
                 estimate {:.9} (error {:.2e} > {ALONE_EPS:e})",
                r.width,
                r.channel,
                r.observed_alone,
                r.estimated_alone,
                r.alone_error()
            ));
        }
        if r.shared_error() < -ALONE_EPS {
            violations.push(format!(
                "  width {} {}: shared rate {:.9} exceeds the analytic ceiling {:.9}",
                r.width, r.channel, r.observed_shared, r.estimated_shared
            ));
        }
    }
    let worst = data.max_shared_error();
    if worst > tolerance {
        violations.push(format!(
            "  worst shared shortfall {:.3} exceeds the pinned tolerance {tolerance:.3}",
            worst
        ));
    }
    let c = &data.calibration;
    if !c.converged {
        violations.push(format!(
            "  calibration did not converge within {} iteration(s)",
            c.steps.len()
        ));
    }
    if c.final_width > c.initial_width {
        violations.push(format!(
            "  calibration widened the bus ({} -> {}): measured contention must \
             only relax Eq. 1",
            c.initial_width, c.final_width
        ));
    }
    if violations.is_empty() {
        Ok(format!(
            "alone exact to {:.1e}; worst shared shortfall {:.1}% <= {:.1}%; \
             calibration {} -> {} in {} iteration(s)\n",
            data.max_alone_error(),
            worst * 100.0,
            tolerance * 100.0,
            c.initial_width,
            c.final_width,
            c.steps.len()
        ))
    } else {
        Err(violations.join("\n") + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CalibrateData {
        run_widths(&[4, 8])
    }

    #[test]
    fn alone_runs_match_the_static_estimates_exactly() {
        let data = small();
        assert_eq!(data.rows.len(), 4);
        assert!(
            data.max_alone_error() <= ALONE_EPS,
            "worst alone error {:.3e}",
            data.max_alone_error()
        );
    }

    #[test]
    fn shared_runs_fall_short_of_the_estimates_at_narrow_widths() {
        let data = small();
        // Width 4 is inside Fig. 7's contention region: both channels
        // stretch, so both shortfalls are strictly positive.
        for r in data.rows.iter().filter(|r| r.width == 4) {
            assert!(r.shared_error() > 0.0, "{}: {:?}", r.channel, r);
        }
        // Nothing ever beats the analytic ceiling.
        for r in &data.rows {
            assert!(r.shared_error() >= -ALONE_EPS, "{r:?}");
        }
    }

    #[test]
    fn check_passes_at_the_pinned_tolerance_and_fails_at_zero() {
        let data = small();
        let ok = check(&data, DEFAULT_TOLERANCE).expect("pinned tolerance holds");
        assert!(ok.contains("calibration"));
        // Width 4 contention pushes the worst shortfall above zero.
        let err = check(&data, 0.0).expect_err("zero tolerance must trip");
        assert!(err.contains("pinned tolerance"), "{err}");
    }

    #[test]
    fn calibration_converges_and_never_widens() {
        let data = small();
        assert!(data.calibration.converged, "{}", data.calibration.render());
        assert!(data.calibration.final_width <= data.calibration.initial_width);
    }

    #[test]
    fn json_names_the_schema_and_every_row() {
        let data = small();
        let json = to_json(&data);
        assert!(json.contains("\"schema\": \"ifsyn-bench-analyze-v1\""));
        assert!(json.contains("\"width\": 4"));
        assert!(json.contains("\"channel\": \"ch1\""));
        assert!(json.contains("\"calibration\": {"));
        assert!(json.contains("\"converged\": true"));
        assert!(json.trim_end().ends_with('}'));
    }
}

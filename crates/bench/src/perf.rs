//! Simulator throughput benchmarks and the `BENCH_sim.json` emitter.
//!
//! Measures wall time and instruction throughput (`total_instrs` per
//! second) of the simulation kernel on the workloads that regenerate the
//! paper's figures, so successive PRs have a perf trajectory to regress
//! against:
//!
//! * `flc_kernel_sweep` — pure kernel throughput: the FLC shared-bus
//!   systems for widths 1..=30 are refined once up front, then only
//!   simulated (several repetitions);
//! * `fig7_full_sweep` — the end-to-end Fig. 7 regeneration (refinement
//!   plus simulation per width);
//! * `quickstart_pipeline` — the Fig. 3 worked example refined and
//!   simulated across a spread of widths.
//!
//! Serialization is hand-rolled JSON: the build environment is offline,
//! so no serde.

use std::time::Instant;

use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
use ifsyn_sim::{CodeCache, SimConfig, Simulator};
use ifsyn_spec::System;
use ifsyn_systems::{fig3, flc};

use crate::table::Table;

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable scenario identifier (JSON key material).
    pub name: String,
    /// Wall-clock seconds for the whole scenario.
    pub wall_seconds: f64,
    /// Instructions executed by the simulation kernel, summed over all
    /// runs in the scenario.
    pub total_instrs: u64,
    /// `total_instrs / wall_seconds`.
    pub instrs_per_sec: f64,
    /// Number of individual simulator runs.
    pub runs: u64,
    /// Worker threads this scenario actually ran on: 1 for the serial
    /// scenarios, `jobs × sim_threads` for the batch sweeps, and the
    /// per-simulation thread count for the sharded-kernel scenarios.
    pub threads: usize,
    /// Threads *inside* each simulation ([`SimConfig::sim_threads`]);
    /// 1 everywhere except the sharded-kernel scenarios.
    pub sim_threads: usize,
    /// Shards the partition planner produced (1 for scalar runs).
    pub shards: usize,
    /// Instructions executed per shard during parallel rounds, summed
    /// over all runs; empty for scalar scenarios.
    pub shard_instrs: Vec<u64>,
    /// Instructions of barrier imbalance: per round, how far each shard
    /// trailed the slowest shard, summed over all rounds and runs.
    pub barrier_stall_instrs: u64,
}

/// The full benchmark result set.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfData {
    /// All measured scenarios.
    pub scenarios: Vec<Scenario>,
    /// Worker threads used by the parallel sweep driver.
    pub sweep_threads: usize,
}

fn scenario(
    name: &str,
    runs: u64,
    total_instrs: u64,
    wall_seconds: f64,
    threads: usize,
) -> Scenario {
    Scenario {
        name: name.to_string(),
        wall_seconds,
        total_instrs,
        instrs_per_sec: if wall_seconds > 0.0 {
            total_instrs as f64 / wall_seconds
        } else {
            0.0
        },
        runs,
        threads,
        sim_threads: 1,
        shards: 1,
        shard_instrs: Vec::new(),
        barrier_stall_instrs: 0,
    }
}

/// Builds the shared-bus FLC system refined at `width`.
fn refined_flc_shared(width: u32) -> System {
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), width, ProtocolKind::FullHandshake);
    ProtocolGenerator::new()
        .refine(&f.system, &design)
        .expect("flc refinement")
        .system
}

/// Pure kernel throughput on the FLC sweep: refinement is hoisted out of
/// the timed region, leaving only `Simulator::new` + event loop.
fn flc_kernel_sweep() -> Scenario {
    const WIDTHS: std::ops::RangeInclusive<u32> = 1..=30;
    const REPS: u64 = 5;
    let systems: Vec<System> = WIDTHS.map(refined_flc_shared).collect();
    let mut instrs = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        for sys in &systems {
            let report = Simulator::new(sys)
                .expect("sim setup")
                .run_to_quiescence()
                .expect("sim");
            instrs += report.total_instrs();
            runs += 1;
        }
    }
    scenario(
        "flc_kernel_sweep",
        runs,
        instrs,
        start.elapsed().as_secs_f64(),
        1,
    )
}

/// The FLC sweep through the parallel batch front-end: same 150 runs as
/// `flc_kernel_sweep`, but fanned out over the batch runner's workers
/// with one shared compiled-code cache.
fn flc_batch_sweep() -> Scenario {
    const WIDTHS: std::ops::RangeInclusive<u32> = 1..=30;
    const REPS: u64 = 5;
    let systems: Vec<System> = WIDTHS.map(refined_flc_shared).collect();
    let runner = crate::batch::BatchRunner::new();
    let mut instrs = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        for report in runner.run(&systems) {
            instrs += report.expect("batch sim").total_instrs();
            runs += 1;
        }
    }
    scenario(
        "flc_batch_sweep",
        runs,
        instrs,
        start.elapsed().as_secs_f64(),
        runner.total_threads(),
    )
}

/// The FLC sweep through the lockstep convoy engine: the same 30 widths
/// as `flc_batch_sweep`, but with [`LANES`](flc_lockstep_sweep) variant
/// lanes per width so every width forms one convoy that fetches and
/// schedules its instruction stream once for all lanes. Runs at the same
/// thread count as `flc_batch_sweep`; the acceptance bar is aggregate
/// throughput >3x the scalar batch path.
fn flc_lockstep_sweep() -> Scenario {
    const WIDTHS: std::ops::RangeInclusive<u32> = 1..=30;
    const LANES: usize = 32;
    let mut systems: Vec<System> = Vec::with_capacity(30 * LANES);
    for w in WIDTHS {
        let sys = refined_flc_shared(w);
        for _ in 0..LANES {
            systems.push(sys.clone());
        }
    }
    let runner = crate::batch::BatchRunner::new().with_lockstep(true);
    let mut instrs = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    let (reports, stats) = runner.run_lockstep(&systems);
    for report in reports {
        instrs += report.expect("lockstep sim").total_instrs();
        runs += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(
        stats.peeled_lanes, 0,
        "identical FLC lanes must stay in lockstep: {stats:?}"
    );
    scenario(
        "flc_lockstep_sweep",
        runs,
        instrs,
        wall,
        runner.total_threads(),
    )
}

/// The end-to-end Fig. 7 sweep (refinement + simulation per width).
fn fig7_full_sweep() -> Scenario {
    let start = Instant::now();
    let data = crate::fig7::run();
    let wall = start.elapsed().as_secs_f64();
    // 3 simulated configurations per width: eval alone, conv alone, shared.
    scenario(
        "fig7_full_sweep",
        data.rows.len() as u64 * 3,
        data.total_instrs,
        wall,
        crate::fig7::sweep_threads(),
    )
}

/// The quickstart (Fig. 3) pipeline refined and simulated across widths,
/// repeated like the other sweep scenarios.
///
/// All runs share one [`CodeCache`]: the refined systems differ only in
/// bus width, so width-independent bodies lower to identical bytecode
/// and compile once across the whole scenario — the same path the CLI's
/// single-run mode uses.
fn quickstart_pipeline() -> Scenario {
    const WIDTHS: [u32; 9] = [1, 2, 3, 5, 7, 11, 16, 22, 32];
    const REPS: u64 = 5;
    let cache = CodeCache::new();
    let mut instrs = 0u64;
    let mut runs = 0u64;
    let start = Instant::now();
    let f = fig3::fig3();
    for _ in 0..REPS {
        let golden = Simulator::with_config_cached(&f.system, SimConfig::new(), Some(&cache))
            .expect("golden setup")
            .run_to_quiescence()
            .expect("golden sim");
        instrs += golden.total_instrs();
        runs += 1;
        for width in WIDTHS {
            let design = BusDesign::with_width(f.channels(), width, ProtocolKind::FullHandshake);
            let refined = ProtocolGenerator::new()
                .refine(&f.system, &design)
                .expect("quickstart refinement");
            let report =
                Simulator::with_config_cached(&refined.system, SimConfig::new(), Some(&cache))
                    .expect("sim setup")
                    .run_to_quiescence()
                    .expect("sim");
            instrs += report.total_instrs();
            runs += 1;
        }
    }
    scenario(
        "quickstart_pipeline",
        runs,
        instrs,
        start.elapsed().as_secs_f64(),
        1,
    )
}

/// The synthetic field both `big_system_*` scenarios simulate: large
/// enough that the process count dwarfs any paper example, deterministic
/// so the scalar and sharded kernels chew the exact same workload.
fn big_system() -> System {
    ifsyn_systems::synth_system(
        &ifsyn_systems::SynthConfig::new()
            .with_modules(4)
            .with_couples(8)
            .with_rounds(24)
            .with_compute(600)
            .with_seed(0xb16_5757),
    )
    .system
}

/// Thread count the sharded-kernel scenario runs at.
pub const BIG_SYSTEM_SIM_THREADS: usize = 4;

/// Baseline for the sharded kernel: the synthetic field on the scalar
/// kernel. Kept as its own scenario so `check` can pin the
/// scalar-vs-parallel instruction-count equality and speedup.
fn big_system_scalar() -> Scenario {
    const REPS: u64 = 3;
    let sys = big_system();
    let mut instrs = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        let report = Simulator::new(&sys)
            .expect("sim setup")
            .run_to_quiescence()
            .expect("sim");
        instrs += report.total_instrs();
    }
    scenario(
        "big_system_scalar",
        REPS,
        instrs,
        start.elapsed().as_secs_f64(),
        1,
    )
}

/// The same field on the parallel delta-cycle kernel, with the shard
/// instruction counters and barrier-stall totals the JSON records.
fn big_system_parallel() -> Scenario {
    const REPS: u64 = 3;
    let sys = big_system();
    let config = SimConfig::new().with_sim_threads(BIG_SYSTEM_SIM_THREADS);
    let mut instrs = 0u64;
    let mut shard_instrs: Vec<u64> = Vec::new();
    let mut stalls = 0u64;
    let mut shards = 1usize;
    let start = Instant::now();
    for _ in 0..REPS {
        let (report, stats) = Simulator::with_config(&sys, config.clone())
            .expect("sim setup")
            .run_to_quiescence_with_stats()
            .expect("sim");
        instrs += report.total_instrs();
        shards = stats.shards;
        if shard_instrs.len() < stats.shard_instrs.len() {
            shard_instrs.resize(stats.shard_instrs.len(), 0);
        }
        for (acc, n) in shard_instrs.iter_mut().zip(&stats.shard_instrs) {
            *acc += n;
        }
        stalls += stats.barrier_stall_instrs;
    }
    let mut s = scenario(
        "big_system_parallel",
        REPS,
        instrs,
        start.elapsed().as_secs_f64(),
        BIG_SYSTEM_SIM_THREADS,
    );
    s.sim_threads = BIG_SYSTEM_SIM_THREADS;
    s.shards = shards;
    s.shard_instrs = shard_instrs;
    s.barrier_stall_instrs = stalls;
    s
}

/// Runs all throughput scenarios.
pub fn run() -> PerfData {
    PerfData {
        scenarios: vec![
            flc_kernel_sweep(),
            flc_batch_sweep(),
            flc_lockstep_sweep(),
            fig7_full_sweep(),
            quickstart_pipeline(),
            big_system_scalar(),
            big_system_parallel(),
        ],
        sweep_threads: crate::fig7::sweep_threads(),
    }
}

/// Renders the results as text.
pub fn render(data: &PerfData) -> String {
    let mut out = String::new();
    out.push_str("Simulation kernel throughput\n\n");
    let mut t = Table::new([
        "scenario",
        "runs",
        "threads",
        "shards",
        "instrs",
        "wall (s)",
        "instrs/sec",
    ]);
    for s in &data.scenarios {
        t.row([
            s.name.clone(),
            s.runs.to_string(),
            s.threads.to_string(),
            s.shards.to_string(),
            s.total_instrs.to_string(),
            format!("{:.4}", s.wall_seconds),
            format!("{:.0}", s.instrs_per_sec),
        ]);
    }
    out.push_str(&t.render());
    for s in &data.scenarios {
        if s.sim_threads > 1 {
            out.push_str(&format!(
                "\n{}: {} sim-threads, {} shard(s), per-shard instrs {:?}, \
                 barrier-stall instrs {}\n",
                s.name, s.sim_threads, s.shards, s.shard_instrs, s.barrier_stall_instrs
            ));
        }
    }
    out.push_str(&format!("\nsweep driver threads: {}\n", data.sweep_threads));
    out
}

/// Serializes the results as the `BENCH_sim.json` document.
pub fn to_json(data: &PerfData) -> String {
    let mut out = String::new();
    // v2 keeps every v1 key and adds the sharded-kernel counters
    // (sim_threads / shards / shard_instrs / barrier_stall_instrs).
    out.push_str("{\n  \"schema\": \"ifsyn-bench-sim-v2\",\n");
    out.push_str(&format!("  \"sweep_threads\": {},\n", data.sweep_threads));
    out.push_str("  \"scenarios\": [\n");
    crate::emit::array_rows(&mut out, &data.scenarios, |s| {
        let shard_instrs = s
            .shard_instrs
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"threads\": {}, \"total_instrs\": {}, \
             \"wall_seconds\": {:.6}, \"instrs_per_sec\": {:.1}, \"sim_threads\": {}, \
             \"shards\": {}, \"shard_instrs\": [{}], \"barrier_stall_instrs\": {}}}",
            s.name,
            s.runs,
            s.threads,
            s.total_instrs,
            s.wall_seconds,
            s.instrs_per_sec,
            s.sim_threads,
            s.shards,
            shard_instrs,
            s.barrier_stall_instrs,
        )
    });
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, instrs_per_sec)` pairs from a `BENCH_sim.json`
/// document written by [`to_json`].
///
/// Hand-rolled like the serializer (offline build, no serde): scans for
/// `"name": "..."` / `"instrs_per_sec": N` key pairs in order, so it
/// tolerates reformatting but not reordering of the two keys within a
/// scenario object.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\":") {
        rest = &rest[at + "\"name\":".len()..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let name = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 1 + close..];
        let Some(ips_at) = rest.find("\"instrs_per_sec\":") else {
            break;
        };
        let tail = rest[ips_at + "\"instrs_per_sec\":".len()..].trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        if let Ok(ips) = tail[..end].parse::<f64>() {
            out.push((name, ips));
        }
        rest = &rest[ips_at..];
    }
    out
}

/// Compares a fresh run against a committed baseline.
///
/// A scenario regresses when its throughput falls below
/// `baseline * (1 - tolerance)`; scenarios present on only one side are
/// reported but never fail the check (new scenarios appear, old ones
/// retire). Returns a human-readable report: `Ok` when every common
/// scenario holds, `Err` listing the regressions otherwise.
///
/// # Errors
///
/// Returns `Err` with the rendered report when at least one common
/// scenario falls below the tolerated floor.
pub fn check(
    fresh: &PerfData,
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<String, String> {
    let mut report = String::new();
    let mut regressions = 0usize;
    for s in &fresh.scenarios {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == s.name) else {
            report.push_str(&format!("  {:<22} (no baseline; skipped)\n", s.name));
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let ratio = if *base > 0.0 {
            s.instrs_per_sec / base
        } else {
            1.0
        };
        let verdict = if s.instrs_per_sec >= floor {
            "ok"
        } else {
            regressions += 1;
            "REGRESSED"
        };
        report.push_str(&format!(
            "  {:<22} {:>12.0} vs baseline {:>12.0}  ({:>5.2}x)  {}\n",
            s.name, s.instrs_per_sec, base, ratio, verdict
        ));
    }
    for (name, _) in baseline {
        if !fresh.scenarios.iter().any(|s| s.name == *name) {
            report.push_str(&format!("  {name:<22} (baseline only; skipped)\n"));
        }
    }
    match check_parallel(fresh) {
        Ok(lines) => report.push_str(&lines),
        Err(lines) => {
            report.push_str(&lines);
            regressions += 1;
        }
    }
    if regressions == 0 {
        Ok(report)
    } else {
        Err(report)
    }
}

/// Minimum speedup the sharded kernel must deliver over the scalar one
/// on the synthetic field, when the machine has the cores for it.
pub const PARALLEL_SPEEDUP_FLOOR: f64 = 2.5;

/// Pins the sharded-kernel invariants on a fresh measurement:
///
/// * `big_system_scalar` and `big_system_parallel` executed *exactly*
///   the same instruction count — the parallel kernel's determinism
///   contract, measured rather than assumed;
/// * the per-shard counters of the parallel run account for a nonzero
///   share of the work (the fork/join path actually engaged);
/// * on machines with at least [`BIG_SYSTEM_SIM_THREADS`] cores, the
///   parallel run is at least [`PARALLEL_SPEEDUP_FLOOR`]× faster. On
///   smaller machines the speedup line is reported as skipped — a
///   1-core CI runner cannot observe a parallel speedup.
///
/// # Errors
///
/// Returns `Err` with the rendered lines when a pinned invariant fails.
pub fn check_parallel(fresh: &PerfData) -> Result<String, String> {
    let scalar = fresh
        .scenarios
        .iter()
        .find(|s| s.name == "big_system_scalar");
    let par = fresh
        .scenarios
        .iter()
        .find(|s| s.name == "big_system_parallel");
    let (Some(scalar), Some(par)) = (scalar, par) else {
        return Ok("  parallel kernel        (scenarios absent; skipped)\n".to_string());
    };
    let mut lines = String::new();
    let mut failed = false;
    if par.total_instrs == scalar.total_instrs {
        lines.push_str(&format!(
            "  parallel instr parity  {} == {} instrs  ok\n",
            par.total_instrs, scalar.total_instrs
        ));
    } else {
        failed = true;
        lines.push_str(&format!(
            "  parallel instr parity  {} != {} instrs  FAILED (nondeterminism)\n",
            par.total_instrs, scalar.total_instrs
        ));
    }
    let sharded: u64 = par.shard_instrs.iter().sum();
    if par.shards > 1 && sharded > 0 {
        lines.push_str(&format!(
            "  parallel rounds        {} shards, {} instrs sharded, {} stalled  ok\n",
            par.shards, sharded, par.barrier_stall_instrs
        ));
    } else {
        failed = true;
        lines.push_str(&format!(
            "  parallel rounds        {} shards, {sharded} instrs sharded  FAILED (fork/join never ran)\n",
            par.shards
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= BIG_SYSTEM_SIM_THREADS {
        let speedup = if scalar.instrs_per_sec > 0.0 {
            par.instrs_per_sec / scalar.instrs_per_sec
        } else {
            0.0
        };
        if speedup >= PARALLEL_SPEEDUP_FLOOR {
            lines.push_str(&format!(
                "  parallel speedup       {speedup:.2}x at {} threads (floor {PARALLEL_SPEEDUP_FLOOR}x)  ok\n",
                par.sim_threads
            ));
        } else {
            failed = true;
            lines.push_str(&format!(
                "  parallel speedup       {speedup:.2}x at {} threads (floor {PARALLEL_SPEEDUP_FLOOR}x)  FAILED\n",
                par.sim_threads
            ));
        }
    } else {
        lines.push_str(&format!(
            "  parallel speedup       skipped ({cores} core(s) available, need {BIG_SYSTEM_SIM_THREADS})\n"
        ));
    }
    if failed {
        Err(lines)
    } else {
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrips_through_json() {
        let data = PerfData {
            scenarios: vec![scenario("a", 2, 100, 0.5, 1), scenario("b", 1, 50, 0.25, 2)],
            sweep_threads: 1,
        };
        let parsed = parse_baseline(&to_json(&data));
        assert_eq!(
            parsed,
            vec![("a".to_string(), 200.0), ("b".to_string(), 200.0)]
        );
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_below() {
        let fresh = PerfData {
            scenarios: vec![scenario("a", 1, 95, 1.0, 1), scenario("new", 1, 1, 1.0, 1)],
            sweep_threads: 1,
        };
        let baseline = vec![("a".to_string(), 100.0), ("gone".to_string(), 5.0)];
        // 95 >= 100 * (1 - 0.10): holds, and unmatched names are skipped.
        let ok = check(&fresh, &baseline, 0.10).expect("within tolerance");
        assert!(ok.contains("ok"));
        assert!(ok.contains("no baseline"));
        assert!(ok.contains("baseline only"));
        // 95 < 100 * (1 - 0.01): regression.
        let err = check(&fresh, &baseline, 0.01).expect_err("below tolerance");
        assert!(err.contains("REGRESSED"));
    }

    #[test]
    fn json_is_well_formed_and_names_every_scenario() {
        let data = PerfData {
            scenarios: vec![scenario("a", 2, 100, 0.5, 1), scenario("b", 1, 50, 0.25, 2)],
            sweep_threads: 4,
        };
        let json = to_json(&data);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"instrs_per_sec\": 200.0"));
        assert!(json.contains("\"sweep_threads\": 4"));
        // Exactly one comma between the two scenario objects.
        assert_eq!(
            json.matches("}},").count() + json.matches("}},\n").count(),
            0
        );
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn instrs_per_sec_guards_zero_wall() {
        let s = scenario("z", 1, 10, 0.0, 1);
        assert_eq!(s.instrs_per_sec, 0.0);
    }

    /// The CI perf-smoke leg targets this test by name: the exact
    /// `big_system` field the perf scenarios benchmark, simulated once
    /// on the scalar kernel and once at 2 sim-threads, with the full
    /// reports compared for equality. Two threads (not
    /// [`BIG_SYSTEM_SIM_THREADS`]) so the fork/join path engages even
    /// on small CI runners without oversubscribing them.
    #[test]
    fn big_system_matches_scalar_at_two_sim_threads() {
        let sys = big_system();
        let scalar = Simulator::new(&sys)
            .expect("sim setup")
            .run_to_quiescence()
            .expect("scalar run");
        let (par, stats) = Simulator::with_config(&sys, SimConfig::new().with_sim_threads(2))
            .expect("sim setup")
            .run_to_quiescence_with_stats()
            .expect("parallel run");
        assert_eq!(scalar, par, "2-thread report diverged from scalar");
        assert!(stats.shards > 1, "partitioner produced a single shard");
        assert!(
            stats.parallel_rounds > 0,
            "fork/join never engaged on the big system"
        );
    }

    /// A scalar/parallel scenario pair with the given instruction counts
    /// and a healthy-looking parallel run.
    fn parallel_pair(scalar_instrs: u64, par_instrs: u64) -> PerfData {
        let scalar = scenario("big_system_scalar", 3, scalar_instrs, 1.0, 1);
        let mut par = scenario("big_system_parallel", 3, par_instrs, 0.1, 4);
        par.sim_threads = 4;
        par.shards = 4;
        par.shard_instrs = vec![par_instrs / 4; 4];
        par.barrier_stall_instrs = 7;
        PerfData {
            scenarios: vec![scalar, par],
            sweep_threads: 1,
        }
    }

    #[test]
    fn parallel_check_pins_instruction_parity() {
        let ok = check_parallel(&parallel_pair(1000, 1000)).expect("parity holds");
        assert!(ok.contains("instr parity"));
        let err = check_parallel(&parallel_pair(1000, 999)).expect_err("parity broken");
        assert!(err.contains("nondeterminism"));
    }

    #[test]
    fn parallel_check_requires_engaged_fork_join() {
        let mut data = parallel_pair(1000, 1000);
        data.scenarios[1].shards = 1;
        data.scenarios[1].shard_instrs.clear();
        let err = check_parallel(&data).expect_err("no parallel rounds");
        assert!(err.contains("fork/join never ran"));
    }

    #[test]
    fn parallel_check_skips_cleanly_without_the_scenarios() {
        let data = PerfData {
            scenarios: vec![scenario("a", 1, 1, 1.0, 1)],
            sweep_threads: 1,
        };
        let ok = check_parallel(&data).expect("absent scenarios skip");
        assert!(ok.contains("skipped"));
    }

    #[test]
    fn json_v2_keeps_v1_fields_and_adds_shard_counters() {
        let json = to_json(&parallel_pair(1000, 1000));
        assert!(json.contains("\"schema\": \"ifsyn-bench-sim-v2\""));
        // Every v1 key survives...
        for key in [
            "\"name\":",
            "\"runs\":",
            "\"threads\":",
            "\"total_instrs\":",
            "\"wall_seconds\":",
            "\"instrs_per_sec\":",
            "\"sweep_threads\":",
        ] {
            assert!(json.contains(key), "v1 key {key} missing");
        }
        // ...and the v2 counters appear.
        assert!(json.contains("\"sim_threads\": 4"));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"shard_instrs\": [250, 250, 250, 250]"));
        assert!(json.contains("\"barrier_stall_instrs\": 7"));
        // The v1 parser still reads a v2 document.
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "big_system_scalar");
    }
}

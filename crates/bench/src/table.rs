//! Minimal fixed-width text tables for experiment output.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["w", "cycles"]);
        t.row(["1", "5888"]);
        t.row(["16", "128"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("cycles"));
        assert!(lines[2].ends_with("5888"));
        assert!(lines[3].ends_with("128"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.565), "56.5%");
    }
}

//! Shared JSON-emission helpers for the `BENCH_*.json` writers.
//!
//! Every campaign report (`BENCH_sim.json`, `BENCH_faults.json`,
//! `BENCH_check.json`, `BENCH_analyze.json`) is hand-rolled JSON — the
//! build environment is offline, so no serde. The string-escaping and
//! array-glue logic used to be copy-pasted per writer; it lives here
//! once so the formats cannot drift apart.

/// Escapes a string as a JSON string literal (with the surrounding
/// quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an optional value as its `Display` form, or `null`.
pub fn json_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or("null".to_string(), |v| v.to_string())
}

/// Renders an optional string as an escaped JSON string, or `null`.
pub fn json_opt_str(s: Option<&str>) -> String {
    s.map_or("null".to_string(), json_str)
}

/// Appends a JSON array body: one line per item, comma-separated, no
/// trailing comma. `f` renders each item *without* the line terminator.
pub fn array_rows<T>(out: &mut String, items: &[T], mut f: impl FnMut(&T) -> String) {
    for (i, item) in items.iter().enumerate() {
        out.push_str(&f(item));
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn options_render_null() {
        assert_eq!(json_opt(Some(3u64)), "3");
        assert_eq!(json_opt::<u64>(None), "null");
        assert_eq!(json_opt_str(Some("x")), "\"x\"");
        assert_eq!(json_opt_str(None), "null");
    }

    #[test]
    fn array_rows_place_commas_between_lines_only() {
        let mut out = String::new();
        array_rows(&mut out, &[1, 2, 3], |n| format!("    {n}"));
        assert_eq!(out, "    1,\n    2,\n    3\n");
        let mut one = String::new();
        array_rows(&mut one, &[9], |n| format!("{n}"));
        assert_eq!(one, "9\n");
        let mut empty = String::new();
        array_rows(&mut empty, &[] as &[i32], |n| format!("{n}"));
        assert_eq!(empty, "");
    }
}

//! Fault campaign: plain vs timeout-hardened vs integrity-protected
//! handshakes under injection.
//!
//! Runs the FLC shared-bus system and the Fig. 3 worked example under a
//! deterministic fault matrix (stuck-at control lines, transient bit
//! flips, dropped and delayed writes on the bus wires), each with three
//! protocol variants: the plain full handshake, the timeout-hardened
//! variant (`ProtocolGenerator::with_timeout`), and the
//! integrity-protected variant (`ProtocolGenerator::with_integrity`),
//! which appends a salted-XOR check word to every word run and
//! retransmits on mismatch. Every run is classified:
//!
//! * `completed` — all client processes finished and the transferred
//!   data checks out;
//! * `corrupt` — the processes finished but a checksum or memory check
//!   failed (the fault silently damaged data);
//! * `aborted` — a hardened client gave up cleanly: its sticky
//!   `*_STAT_*` flag is raised and the run still reached quiescence;
//! * `deadlock` — the structured [`ifsyn_sim::DeadlockDiagnosis`] fired,
//!   naming the blocked process and the wait it hangs on;
//! * `timeout` — the run hit the simulation horizon without quiescing.
//!
//! A row that ends `corrupt` without any raised flag is a *silent
//! corruption*, marked `"silent": true` in the JSON. For the protected
//! variant that violates the integrity contract (deliver intact data or
//! abort flagged) and [`FaultData::silent_corruptions`] reports it so
//! `experiments faults` exits nonzero; plain and hardened rows are
//! exempt — neither carries check words, so their corruption under
//! `data_flip` is precisely the recorded baseline the protected variant
//! is measured against.
//!
//! The headline results: a stuck-at-0 `B_DONE` deadlocks the plain
//! protocol with a diagnosis naming the waiting client while the
//! hardened protocol aborts within its watchdog-derived bound; and the
//! `data_flip` / `done_drop_window` scenarios that silently corrupt the
//! plain and hardened protocols end clean (completed with intact data,
//! or flagged abort) under the protected variant, at a measured time and
//! traffic overhead. Serialization is hand-rolled JSON (offline build,
//! no serde), written to `BENCH_faults.json`.

use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind, RefinedSystem, WordDir, WordPlan};
use ifsyn_sim::{FaultPlan, SimConfig, SimError, Simulator};
use ifsyn_spec::{ChannelDirection, Value};
use ifsyn_systems::{fig3, flc};

use crate::emit::{json_opt, json_str};
use crate::table::Table;

/// Watchdog bound (cycles per `wait until`) used by the hardened runs.
pub const WATCHDOG: u64 = 16;
/// Retry budget used by the hardened runs.
pub const RETRIES: u32 = 3;
/// Simulation horizon for campaign runs.
const MAX_TIME: u64 = 500_000;

/// Which protocol variant a campaign row exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Unhardened full handshake (unbounded waits, no flags).
    Plain,
    /// Timeout-hardened handshake (PR 2): watchdogs, bounded word
    /// retries, sticky abort flags.
    Hardened,
    /// Integrity-protected handshake: hardening plus salted-XOR check
    /// words and bounded message retransmission.
    Protected,
}

impl Variant {
    /// All variants, in campaign order.
    pub const ALL: [Variant; 3] = [Variant::Plain, Variant::Hardened, Variant::Protected];

    /// The name used in tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Variant::Plain => "plain",
            Variant::Hardened => "hardened",
            Variant::Protected => "protected",
        }
    }
}

/// One (system, fault scenario, protocol variant) run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Which system: `"flc@16"` or `"fig3@8"`.
    pub system: String,
    /// Fault scenario name (`"none"`, `"done_stuck_at_0"`, ...).
    pub scenario: String,
    /// Protocol variant of this run.
    pub variant: Variant,
    /// Classification (see module docs).
    pub outcome: String,
    /// Quiescence time when the run completed or aborted.
    pub finish_time: Option<u64>,
    /// Faults the kernel actually applied.
    pub injected: usize,
    /// Names of raised per-channel status flags.
    pub flags_raised: Vec<String>,
    /// For deadlocks: the first blocked non-repeating process and the
    /// wait it is suspended on.
    pub diagnosis: Option<String>,
    /// For hardened/protected runs: the a-priori completion bound in
    /// cycles (fault-free time + worst-case retry overhead).
    pub bound: Option<u64>,
    /// Total handshake words this variant moves fault-free (traffic).
    pub words: u64,
}

impl FaultRow {
    /// `true` when a hardened run stayed within its completion bound.
    pub fn within_bound(&self) -> bool {
        match (self.finish_time, self.bound) {
            (Some(t), Some(b)) => t <= b,
            _ => true,
        }
    }

    /// `true` when this run damaged data without raising any flag.
    pub fn silent_corrupt(&self) -> bool {
        self.outcome == "corrupt" && self.flags_raised.is_empty()
    }
}

/// The whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultData {
    /// One row per (system, scenario, variant).
    pub rows: Vec<FaultRow>,
}

impl FaultData {
    /// Rows demonstrating the PR 2 acceptance criterion: the plain
    /// protocol deadlocks with a diagnosis while the hardened one
    /// completes or aborts within its bound, for the same system and
    /// scenario.
    pub fn rescued_pairs(&self) -> Vec<(&FaultRow, &FaultRow)> {
        let mut out = Vec::new();
        for plain in self.rows.iter().filter(|r| r.variant == Variant::Plain) {
            if plain.outcome != "deadlock" || plain.diagnosis.is_none() {
                continue;
            }
            if let Some(hard) = self.rows.iter().find(|r| {
                r.variant == Variant::Hardened
                    && r.system == plain.system
                    && r.scenario == plain.scenario
            }) {
                let clean = matches!(hard.outcome.as_str(), "completed" | "aborted" | "corrupt");
                if clean && hard.within_bound() {
                    out.push((plain, hard));
                }
            }
        }
        out
    }

    /// Integrity regressions: protected-variant rows that finished
    /// `corrupt` without raising any flag, violating the integrity
    /// contract (a protected transfer either delivers intact data or
    /// aborts with its sticky flag raised). Plain and hardened rows are
    /// exempt — neither carries check words, so their `data_flip`
    /// corruption is the recorded baseline, marked `"silent": true` in
    /// the JSON rather than gated. `experiments faults` exits nonzero
    /// when this is nonempty.
    pub fn silent_corruptions(&self) -> Vec<&FaultRow> {
        self.rows
            .iter()
            .filter(|r| r.variant == Variant::Protected && r.silent_corrupt())
            .collect()
    }

    /// Scenarios the protected variant rescues from corruption: the
    /// plain or hardened run ends `corrupt` while the protected run on
    /// the same system/scenario ends `completed` or flagged-`aborted`.
    pub fn integrity_rescues(&self) -> Vec<(&FaultRow, &FaultRow)> {
        let mut out = Vec::new();
        for prot in self.rows.iter().filter(|r| r.variant == Variant::Protected) {
            let clean = prot.outcome == "completed"
                || (prot.outcome == "aborted" && !prot.flags_raised.is_empty());
            if !clean {
                continue;
            }
            if let Some(broken) = self.rows.iter().find(|r| {
                r.variant != Variant::Protected
                    && r.system == prot.system
                    && r.scenario == prot.scenario
                    && r.outcome == "corrupt"
            }) {
                out.push((broken, prot));
            }
        }
        out
    }

    /// Fault-free time/traffic overhead of `variant` vs hardened, per
    /// system: `(system, hardened row, variant row)`.
    pub fn overhead_vs_hardened(&self, variant: Variant) -> Vec<(&FaultRow, &FaultRow)> {
        let mut out = Vec::new();
        for hard in self
            .rows
            .iter()
            .filter(|r| r.variant == Variant::Hardened && r.scenario == "none")
        {
            if let Some(v) = self
                .rows
                .iter()
                .find(|r| r.variant == variant && r.scenario == "none" && r.system == hard.system)
            {
                out.push((hard, v));
            }
        }
        out
    }
}

/// The fault matrix, applied identically to both systems. The bus is
/// named `B`, so the control wires are `B_START`/`B_DONE` and the data
/// wire `B_DATA` regardless of system.
fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new()),
        (
            "done_stuck_at_0",
            FaultPlan::new().stuck_at_0("B_DONE", 0, None),
        ),
        (
            "done_transient_flips",
            FaultPlan::new().seeded_flips("B_DONE", 1, 4, 5, 200, 0x5EED),
        ),
        (
            "done_drop_window",
            FaultPlan::new().drop_writes("B_DONE", 4, Some(40)),
        ),
        (
            "start_delayed",
            FaultPlan::new().delay_writes("B_START", 3, 0, Some(60)),
        ),
        ("data_flip", FaultPlan::new().flip_bit("B_DATA", 2, 9)),
    ]
}

/// The generator configured for a protocol variant (shared with the
/// model-checking campaign and the checker differential suite so all of
/// them exercise identical refinements).
pub fn generator(variant: Variant) -> ProtocolGenerator {
    let g = ProtocolGenerator::new();
    match variant {
        Variant::Plain => g,
        Variant::Hardened => g.with_timeout(WATCHDOG).with_retry_limit(RETRIES),
        Variant::Protected => g
            .with_timeout(WATCHDOG)
            .with_retry_limit(RETRIES)
            .with_integrity(),
    }
}

/// Worst-case extra cycles hardening can spend on `words` handshake
/// words: every word may burn its full retry budget. One attempt costs
/// at most `2 * WATCHDOG + 2` cycles (two bounded waits plus two
/// drives), and a word is attempted `RETRIES + 1` times.
fn retry_overhead(words: u64) -> u64 {
    words * u64::from(RETRIES + 1) * (2 * WATCHDOG + 2)
}

/// Total fault-free handshake words the campaign system moves under
/// `variant`, counting every access of every bus channel. The protected
/// variant adds one check word per word run (one for writes; one per
/// direction run for reads, whose plans are direction-aligned).
fn campaign_words(refined: &RefinedSystem, variant: Variant) -> u64 {
    let width = refined.bus.design.width;
    refined
        .bus
        .design
        .channels
        .iter()
        .map(|&c| {
            let ch = refined.system.channel(c);
            let protected = variant == Variant::Protected;
            let plan = if protected && ch.direction == ChannelDirection::Read {
                WordPlan::aligned_for_channel(ch, width)
            } else {
                WordPlan::for_channel(ch, width)
            };
            let mut words = u64::from(plan.word_count());
            if protected {
                let requests = plan
                    .words
                    .iter()
                    .filter(|w| w.dir == WordDir::Request)
                    .count();
                words += match ch.direction {
                    ChannelDirection::Write => 1,
                    ChannelDirection::Read => 1 + u64::from(requests > 0),
                };
            }
            words * ch.accesses
        })
        .sum()
}

/// A-priori completion bound for a variant (`None` for plain, whose
/// waits are unbounded). A hardened word is attempted `RETRIES + 1`
/// times; a protected *message* is additionally retransmitted up to
/// `RETRIES + 1` times, multiplying the per-word worst case.
fn variant_bound(refined: &RefinedSystem, variant: Variant, words: u64) -> Option<u64> {
    match variant {
        Variant::Plain => None,
        Variant::Hardened => Some(fault_free_time(refined) + retry_overhead(words)),
        Variant::Protected => {
            Some(fault_free_time(refined) + u64::from(RETRIES + 1) * retry_overhead(words))
        }
    }
}

/// One line naming every blocked process and the wait it hangs on.
fn summarize_blocked(d: &ifsyn_sim::DeadlockDiagnosis) -> Option<String> {
    if d.blocked.is_empty() {
        return None;
    }
    let parts: Vec<String> = d
        .blocked
        .iter()
        .map(|b| format!("`{}` suspended on {}", b.behavior, b.wait))
        .collect();
    Some(parts.join("; "))
}

/// Sums an integer array value (for memory checksum checks).
fn array_sum(v: &Value) -> i64 {
    match v {
        Value::Array(items) => items.iter().filter_map(|x| x.as_i64().ok()).sum(),
        other => other.as_i64().unwrap_or(0),
    }
}

struct RunOutput {
    outcome: String,
    finish_time: Option<u64>,
    injected: usize,
    flags_raised: Vec<String>,
    diagnosis: Option<String>,
}

/// Runs one refined system under `plan` and classifies the result.
/// `data_ok` inspects the final report when every process finished.
fn classify(
    refined: &RefinedSystem,
    plan: &FaultPlan,
    data_ok: impl Fn(&ifsyn_sim::SimReport) -> bool,
) -> RunOutput {
    let config = SimConfig::new()
        .with_max_time(MAX_TIME)
        .with_faults(plan.clone())
        .with_deadlock_detection();
    let flag_names: Vec<String> = refined
        .bus
        .status_flags
        .iter()
        .map(|&(_, sig)| refined.system.signal(sig).name.clone())
        .collect();
    let result = Simulator::with_config(&refined.system, config)
        .expect("campaign sim setup")
        .run_to_quiescence();
    match result {
        Ok(report) => {
            let raised: Vec<String> = flag_names
                .into_iter()
                .filter(|n| report.final_signal_by_name(n) == Some(&Value::Bit(true)))
                .collect();
            let outcome = if !raised.is_empty() {
                "aborted"
            } else if report.blocked_at_exit() > 0 {
                // Deadlock detection is on, so this only happens when a
                // process is blocked but still repeating.
                "blocked"
            } else if data_ok(&report) {
                "completed"
            } else {
                "corrupt"
            };
            RunOutput {
                outcome: outcome.to_string(),
                finish_time: Some(report.time()),
                injected: report.injected_faults().len(),
                flags_raised: raised,
                diagnosis: None,
            }
        }
        Err(SimError::Deadlock { diagnosis }) => RunOutput {
            outcome: "deadlock".to_string(),
            finish_time: None,
            injected: 0,
            flags_raised: Vec::new(),
            diagnosis: summarize_blocked(&diagnosis),
        },
        Err(SimError::Timeout { diagnosis, .. }) => RunOutput {
            outcome: "timeout".to_string(),
            finish_time: None,
            injected: 0,
            flags_raised: Vec::new(),
            diagnosis: diagnosis.as_deref().and_then(summarize_blocked),
        },
        Err(other) => RunOutput {
            outcome: format!("error: {other}"),
            finish_time: None,
            injected: 0,
            flags_raised: Vec::new(),
            diagnosis: None,
        },
    }
}

/// FLC shared bus at width 16: 128 two-word writes (ch1) plus 128
/// two-word reads (ch2) through the arbitrated bus `B`.
fn run_flc(scenario: &str, plan: &FaultPlan, variant: Variant) -> FaultRow {
    let f = flc::flc();
    let design = BusDesign::with_width(f.bus_channels(), 16, ProtocolKind::FullHandshake);
    let refined = generator(variant)
        .refine(&f.system, &design)
        .expect("flc campaign refinement");
    let expected = flc::expected_conv_checksum();
    let conv_acc = f.conv_acc;
    let trru0 = f.trru0;
    // trru0 must hold EVAL_R3's ramp 3i + 1 after a clean run.
    let expected_trru0: i64 = (0..flc::FLC_ACCESSES as i64).map(|i| 3 * i + 1).sum();
    let out = classify(&refined, plan, |report| {
        report.final_variable(conv_acc).as_i64().ok() == Some(expected)
            && array_sum(report.final_variable(trru0)) == expected_trru0
    });
    let words = campaign_words(&refined, variant);
    let bound = variant_bound(&refined, variant, words);
    FaultRow {
        system: "flc@16".to_string(),
        scenario: scenario.to_string(),
        variant,
        outcome: out.outcome,
        finish_time: out.finish_time,
        injected: out.injected,
        flags_raised: out.flags_raised,
        diagnosis: out.diagnosis,
        bound,
        words,
    }
}

/// Fig. 3 at width 8: the paper's worked example (four channels, five
/// handshake transfers of 2–3 words each).
fn run_fig3(scenario: &str, plan: &FaultPlan, variant: Variant) -> FaultRow {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    let refined = generator(variant)
        .refine(&f.system, &design)
        .expect("fig3 campaign refinement");
    let x = f.x;
    let mem = f.mem;
    let out = classify(&refined, plan, |report| {
        // P: X <= 32; MEM(17) := X + 7. Q: MEM(60) := 1234.
        let x_ok = report.final_variable(x).as_i64().ok() == Some(32);
        let mem_ok = match report.final_variable(mem) {
            Value::Array(items) => {
                items.get(17).and_then(|v| v.as_i64().ok()) == Some(39)
                    && items.get(60).and_then(|v| v.as_i64().ok()) == Some(1234)
            }
            _ => false,
        };
        x_ok && mem_ok
    });
    let words = campaign_words(&refined, variant);
    let bound = variant_bound(&refined, variant, words);
    FaultRow {
        system: "fig3@8".to_string(),
        scenario: scenario.to_string(),
        variant,
        outcome: out.outcome,
        finish_time: out.finish_time,
        injected: out.injected,
        flags_raised: out.flags_raised,
        diagnosis: out.diagnosis,
        bound,
        words,
    }
}

/// The system's quiescence time with no faults (baseline for bounds).
fn fault_free_time(refined: &RefinedSystem) -> u64 {
    Simulator::new(&refined.system)
        .expect("baseline sim setup")
        .run_to_quiescence()
        .expect("baseline sim")
        .time()
}

/// Runs the full campaign: fault matrix × {plain, hardened, protected}
/// × {flc, fig3}.
pub fn run() -> FaultData {
    let mut rows = Vec::new();
    for (name, plan) in fault_matrix() {
        for variant in Variant::ALL {
            rows.push(run_flc(name, &plan, variant));
            rows.push(run_fig3(name, &plan, variant));
        }
    }
    FaultData { rows }
}

/// Renders the campaign as text.
pub fn render(data: &FaultData) -> String {
    let mut out = String::new();
    out.push_str("Fault campaign — plain vs hardened vs integrity-protected full handshake\n");
    out.push_str(&format!(
        "(watchdog {WATCHDOG} cycles, {RETRIES} retries, horizon {MAX_TIME} cycles)\n\n"
    ));
    let mut t = Table::new([
        "system", "scenario", "protocol", "outcome", "finish", "injected", "flags",
    ]);
    for r in &data.rows {
        t.row([
            r.system.clone(),
            r.scenario.clone(),
            r.variant.as_str().to_string(),
            if r.silent_corrupt() {
                format!("{} (silent)", r.outcome)
            } else {
                r.outcome.clone()
            },
            r.finish_time.map_or("-".to_string(), |t| t.to_string()),
            r.injected.to_string(),
            if r.flags_raised.is_empty() {
                "-".to_string()
            } else {
                r.flags_raised.join(" ")
            },
        ]);
    }
    out.push_str(&t.render());
    for r in &data.rows {
        if let Some(d) = &r.diagnosis {
            out.push_str(&format!(
                "\n{} / {} ({}): {}\n",
                r.system,
                r.scenario,
                r.variant.as_str(),
                d
            ));
        }
    }
    let rescued = data.rescued_pairs();
    out.push_str(&format!(
        "\n{} scenario(s) where the plain protocol deadlocks and the hardened \
         one ends cleanly within its bound\n",
        rescued.len()
    ));
    for (plain, hard) in rescued {
        out.push_str(&format!(
            "  {} / {}: plain deadlocks, hardened -> {} at t = {} (bound {})\n",
            plain.system,
            plain.scenario,
            hard.outcome,
            hard.finish_time.unwrap_or(0),
            hard.bound.unwrap_or(0),
        ));
    }
    let integrity = data.integrity_rescues();
    out.push_str(&format!(
        "\n{} corruption(s) rescued by the integrity-protected variant\n",
        integrity.len()
    ));
    for (broken, prot) in integrity {
        out.push_str(&format!(
            "  {} / {}: {} corrupts silently, protected -> {} at t = {}\n",
            broken.system,
            broken.scenario,
            broken.variant.as_str(),
            prot.outcome,
            prot.finish_time.unwrap_or(0),
        ));
    }
    out.push_str("\nfault-free overhead of integrity protection (vs hardened):\n");
    for (hard, prot) in data.overhead_vs_hardened(Variant::Protected) {
        let (ht, pt) = (
            hard.finish_time.unwrap_or(0).max(1),
            prot.finish_time.unwrap_or(0),
        );
        out.push_str(&format!(
            "  {}: time {} -> {} (+{:.1}%), words {} -> {} (+{:.1}%)\n",
            hard.system,
            ht,
            pt,
            100.0 * (pt as f64 - ht as f64) / ht as f64,
            hard.words,
            prot.words,
            100.0 * (prot.words as f64 - hard.words as f64) / hard.words.max(1) as f64,
        ));
    }
    let silent = data.silent_corruptions();
    if silent.is_empty() {
        out.push_str("\nno silent corruptions on the protected variant\n");
    } else {
        out.push_str(&format!(
            "\nINTEGRITY REGRESSION: {} protected run(s) corrupted data silently\n",
            silent.len()
        ));
        for r in silent {
            out.push_str(&format!(
                "  {} / {} ({})\n",
                r.system,
                r.scenario,
                r.variant.as_str()
            ));
        }
    }
    out
}

/// Serializes the campaign as the `BENCH_faults.json` document.
pub fn to_json(data: &FaultData) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ifsyn-bench-faults-v2\",\n");
    out.push_str(&format!("  \"watchdog\": {WATCHDOG},\n"));
    out.push_str(&format!("  \"retries\": {RETRIES},\n"));
    out.push_str(&format!(
        "  \"rescued_scenarios\": {},\n",
        data.rescued_pairs().len()
    ));
    out.push_str(&format!(
        "  \"integrity_rescues\": {},\n",
        data.integrity_rescues().len()
    ));
    out.push_str(&format!(
        "  \"silent_corruptions\": {},\n",
        data.silent_corruptions().len()
    ));
    out.push_str("  \"overhead_vs_hardened\": [\n");
    let overhead = data.overhead_vs_hardened(Variant::Protected);
    crate::emit::array_rows(&mut out, &overhead, |(hard, prot)| {
        format!(
            "    {{\"system\": {}, \"hardened_time\": {}, \"protected_time\": {}, \
             \"hardened_words\": {}, \"protected_words\": {}}}",
            json_str(&hard.system),
            json_opt(hard.finish_time),
            json_opt(prot.finish_time),
            hard.words,
            prot.words,
        )
    });
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    crate::emit::array_rows(&mut out, &data.rows, |r| {
        let flags: Vec<String> = r.flags_raised.iter().map(|f| json_str(f)).collect();
        format!(
            "    {{\"system\": {}, \"scenario\": {}, \"protocol\": {}, \
             \"outcome\": {}, \"silent\": {}, \"finish_time\": {}, \"injected\": {}, \
             \"flags_raised\": [{}], \"diagnosis\": {}, \"bound\": {}, \"words\": {}}}",
            json_str(&r.system),
            json_str(&r.scenario),
            json_str(r.variant.as_str()),
            json_str(&r.outcome),
            r.silent_corrupt(),
            json_opt(r.finish_time),
            r.injected,
            flags.join(", "),
            crate::emit::json_opt_str(r.diagnosis.as_deref()),
            json_opt(r.bound),
            r.words,
        )
    });
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_done_deadlocks_plain_and_hardened_aborts() {
        let plan = FaultPlan::new().stuck_at_0("B_DONE", 0, None);
        let plain = run_flc("done_stuck_at_0", &plan, Variant::Plain);
        assert_eq!(plain.outcome, "deadlock", "{plain:?}");
        let d = plain.diagnosis.as_deref().expect("diagnosis present");
        assert!(d.contains("wait until"), "{d}");
        let hard = run_flc("done_stuck_at_0", &plan, Variant::Hardened);
        assert_eq!(hard.outcome, "aborted", "{hard:?}");
        assert!(!hard.flags_raised.is_empty());
        assert!(hard.within_bound(), "{hard:?}");
    }

    #[test]
    fn no_faults_means_clean_completion_all_variants() {
        let plan = FaultPlan::new();
        for variant in Variant::ALL {
            let r = run_fig3("none", &plan, variant);
            assert_eq!(r.outcome, "completed", "{r:?}");
            assert_eq!(r.injected, 0);
        }
    }

    #[test]
    fn hardening_costs_nothing_fault_free() {
        let plan = FaultPlan::new();
        let plain = run_fig3("none", &plan, Variant::Plain);
        let hard = run_fig3("none", &plan, Variant::Hardened);
        assert_eq!(plain.finish_time, hard.finish_time);
    }

    #[test]
    fn protection_overhead_is_the_check_words() {
        let plan = FaultPlan::new();
        let hard = run_fig3("none", &plan, Variant::Hardened);
        let prot = run_fig3("none", &plan, Variant::Protected);
        // fig3: CH0 2+1, CH1 2+1, CH2/CH3 3+1 each.
        assert_eq!(hard.words, 2 + 2 + 3 + 3);
        assert_eq!(prot.words, 3 + 3 + 4 + 4);
        // Each extra word costs 2 fault-free cycles.
        assert!(prot.finish_time > hard.finish_time, "{prot:?} vs {hard:?}");
    }

    #[test]
    fn data_flip_corrupts_hardened_but_not_protected() {
        let plan = FaultPlan::new().flip_bit("B_DATA", 2, 9);
        let hard = run_fig3("data_flip", &plan, Variant::Hardened);
        assert_eq!(hard.outcome, "corrupt", "{hard:?}");
        let prot = run_fig3("data_flip", &plan, Variant::Protected);
        assert_eq!(prot.outcome, "completed", "{prot:?}");
        assert!(prot.within_bound(), "{prot:?}");
    }

    #[test]
    fn json_mentions_every_row_and_is_balanced() {
        let data = FaultData {
            rows: vec![FaultRow {
                system: "flc@16".into(),
                scenario: "none".into(),
                variant: Variant::Hardened,
                outcome: "completed".into(),
                finish_time: Some(42),
                injected: 0,
                flags_raised: vec![],
                diagnosis: None,
                bound: Some(100),
                words: 512,
            }],
        };
        let json = to_json(&data);
        assert!(json.contains("\"schema\": \"ifsyn-bench-faults-v2\""));
        assert!(json.contains("\"finish_time\": 42"));
        assert!(json.contains("\"silent\": false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn silent_corruption_gate_covers_protected_only() {
        let mk = |variant, outcome: &str| FaultRow {
            system: "fig3@8".into(),
            scenario: "data_flip".into(),
            variant,
            outcome: outcome.into(),
            finish_time: Some(1),
            injected: 1,
            flags_raised: vec![],
            diagnosis: None,
            bound: None,
            words: 10,
        };
        let data = FaultData {
            rows: vec![
                mk(Variant::Plain, "corrupt"),
                mk(Variant::Hardened, "corrupt"),
                mk(Variant::Protected, "completed"),
            ],
        };
        assert!(data.silent_corruptions().is_empty());
        let mut rows = data.rows.clone();
        rows.push(mk(Variant::Protected, "corrupt"));
        let data = FaultData { rows };
        let silent = data.silent_corruptions();
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].variant, Variant::Protected);
    }

    #[test]
    fn array_sum_handles_scalars_and_arrays() {
        assert_eq!(array_sum(&Value::int(7, 16)), 7);
        let arr = Value::Array(vec![Value::int(1, 16), Value::int(2, 16)]);
        assert_eq!(array_sum(&arr), 3);
    }
}

//! Differential suite for the scaled model checker.
//!
//! The exploration core has three fast paths whose soundness this suite
//! pins against the plain scalar engine:
//!
//! * **partial-order reduction** — singleton ample sets must preserve
//!   every verdict, the set of reachable crash labels, the worst-case
//!   completion bound, and (via replay delegation) the byte-exact
//!   counterexample reports of the unreduced explorer;
//! * **parallel frontier exploration** — 1/2/4/8 worker threads must
//!   produce the identical state graph and identical report strings;
//! * **bitstate dedup** — lossy fingerprint dedup may merge states, but
//!   on the pinned catalog it must never flip a known FAIL into a PASS
//!   (a lost counterexample would gut the campaign's regression value).
//!
//! The cells are the five pinned known-counterexample scenarios of the
//! `experiments check` campaign (plain/hardened baselines under a stuck
//! DONE or a flipped data bit) plus fault-free passing cells, and a set
//! of randomized synthetic producer/consumer fields.

use ifsyn_bench::faults::{generator, Variant};
use ifsyn_core::{BusDesign, ProtocolKind, RefinedSystem};
use ifsyn_sim::{CheckConfig, Checker, EnvFault, StateSpace, StateView, Verdict};
use ifsyn_systems::synth::{synth_system, SynthConfig};
use ifsyn_systems::{fig3, flc};

/// Thread counts the parallel frontier is exercised at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One catalog cell: a refined system, its fault environment, and the
/// delivery predicate (`data_ok`) its terminal property checks.
struct Cell {
    name: String,
    refined: RefinedSystem,
    faults: Vec<EnvFault>,
    data_ok: Box<dyn Fn(&StateView<'_>) -> bool>,
    /// Whether the campaign expects the delivery property to fail here
    /// (the pinned known counterexamples).
    expect_delivery_failure: bool,
}

fn done_stuck_low() -> Vec<EnvFault> {
    vec![EnvFault::StuckLow {
        signal: "B_DONE".to_string(),
    }]
}

fn data_flip() -> Vec<EnvFault> {
    vec![EnvFault::FlipBit {
        signal: "B_DATA".to_string(),
        bit: 2,
        budget: 1,
    }]
}

fn fig3_cell(scenario: &str, faults: Vec<EnvFault>, variant: Variant, expect_fail: bool) -> Cell {
    let f = fig3::fig3();
    let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FullHandshake);
    let refined = generator(variant)
        .refine(&f.system, &design)
        .expect("fig3 refinement");
    let x_name = refined.system.variable(f.x).name.clone();
    let mem_name = refined.system.variable(f.mem).name.clone();
    Cell {
        name: format!("fig3@8/{scenario}/{}", variant.as_str()),
        refined,
        faults,
        data_ok: Box::new(move |v| {
            let x_ok = v.variable(&x_name).and_then(|val| val.as_i64().ok()) == Some(32);
            let mem_ok = v
                .variable(&mem_name)
                .map(|val| array_elem(val, 17) == Some(39) && array_elem(val, 60) == Some(1234))
                .unwrap_or(false);
            x_ok && mem_ok
        }),
        expect_delivery_failure: expect_fail,
    }
}

fn flcr2_cell(scenario: &str, faults: Vec<EnvFault>, variant: Variant, expect_fail: bool) -> Cell {
    let f = flc::flc_reduced(2);
    let design = BusDesign::with_width(f.channels(), 16, ProtocolKind::FullHandshake);
    let refined = generator(variant)
        .refine(&f.system, &design)
        .expect("flc_reduced refinement");
    let trru0 = refined.system.variable(f.trru0).name.clone();
    let conv_acc = refined.system.variable(f.conv_acc).name.clone();
    let trru0_sum = f.expected_trru0_sum();
    let checksum = f.expected_checksum();
    Cell {
        name: format!("flcr2@16/{scenario}/{}", variant.as_str()),
        refined,
        faults,
        data_ok: Box::new(move |v| {
            let acc_ok = v.variable(&conv_acc).and_then(|val| val.as_i64().ok()) == Some(checksum);
            let mem_ok = v
                .variable(&trru0)
                .map(|val| array_sum(val) == trru0_sum)
                .unwrap_or(false);
            acc_ok && mem_ok
        }),
        expect_delivery_failure: expect_fail,
    }
}

fn array_elem(v: &ifsyn_spec::Value, i: usize) -> Option<i64> {
    match v {
        ifsyn_spec::Value::Array(items) => items.get(i)?.as_i64().ok(),
        _ => None,
    }
}

fn array_sum(v: &ifsyn_spec::Value) -> i64 {
    match v {
        ifsyn_spec::Value::Array(items) => items.iter().filter_map(|x| x.as_i64().ok()).sum(),
        other => other.as_i64().unwrap_or(0),
    }
}

/// The five pinned known-counterexample cells plus two fault-free
/// passing cells.
fn catalog() -> Vec<Cell> {
    vec![
        fig3_cell("done_stuck_low", done_stuck_low(), Variant::Plain, true),
        fig3_cell("data_flip", data_flip(), Variant::Plain, true),
        fig3_cell("data_flip", data_flip(), Variant::Hardened, true),
        flcr2_cell("done_stuck_low", done_stuck_low(), Variant::Plain, true),
        flcr2_cell("data_flip", data_flip(), Variant::Plain, true),
        fig3_cell("none", vec![], Variant::Plain, false),
        flcr2_cell("none", vec![], Variant::Protected, false),
    ]
}

fn checker(cell: &Cell, cfg: CheckConfig) -> Checker<'_> {
    let mut cfg = cfg;
    for f in &cell.faults {
        cfg = cfg.with_fault(f.clone());
    }
    Checker::with_config(&cell.refined.system, cfg).expect("checker")
}

/// Everything one engine configuration reports for a cell: the rendered
/// property reports (byte-compared across configurations), the crash
/// label set, and the completion bound.
struct CellReport {
    reports: Vec<String>,
    holds: Vec<bool>,
    error_labels: Vec<String>,
    worst_cost: Option<u64>,
    states: usize,
}

fn report(cell: &Cell, ss: &StateSpace<'_>) -> CellReport {
    let mut reports = Vec::new();
    let mut holds = Vec::new();
    if let Some(arb) = &cell.refined.bus.arbiter {
        let gnt: Vec<String> = arb
            .gnt
            .iter()
            .map(|&g| cell.refined.system.signal(g).name.clone())
            .collect();
        let rep = ss.check_invariant("gnt_mutex", |v| {
            gnt.iter().filter(|n| v.signal_high(n)).count() <= 1
        });
        holds.push(rep.holds);
        reports.push(rep.to_string());
    }
    let flags: Vec<String> = cell
        .refined
        .bus
        .status_flags
        .iter()
        .map(|&(_, sig)| cell.refined.system.signal(sig).name.clone())
        .collect();
    let rep = ss.check_terminal("delivers_or_flags", |v| {
        (v.all_done() && (cell.data_ok)(v)) || flags.iter().any(|n| v.signal_high(n))
    });
    holds.push(rep.holds);
    reports.push(rep.to_string());
    if cell.faults.is_empty() {
        if let Some(arb) = &cell.refined.bus.arbiter {
            for (&rq, &gn) in arb.req.iter().zip(&arb.gnt) {
                let rq_name = cell.refined.system.signal(rq).name.clone();
                let gn_name = cell.refined.system.signal(gn).name.clone();
                let rep = ss.check_leads_to(
                    "eventual_grant",
                    |v| v.signal_high(&rq_name) && !v.signal_high(&gn_name),
                    |v| v.signal_high(&gn_name),
                );
                holds.push(rep.holds);
                reports.push(rep.to_string());
            }
        }
    }
    CellReport {
        reports,
        holds,
        error_labels: ss.error_labels(),
        worst_cost: ss.worst_cost_to_quiescence(),
        states: ss.state_count(),
    }
}

/// POR on (at every thread count) versus the plain scalar engine: same
/// verdicts, same crash-label sets, same completion bound, byte-equal
/// property reports — and the pinned counterexamples still found.
#[test]
fn por_and_threads_match_the_scalar_engine_on_the_pinned_catalog() {
    for cell in catalog() {
        let full = {
            let ck = checker(&cell, CheckConfig::new().without_por());
            let ss = ck.explore().expect("explore");
            report(&cell, &ss)
        };
        // The delivery property (second report once the arbiter check is
        // present, first otherwise) fails exactly on the pinned cells.
        let delivery_holds = full.holds[full.holds.len().min(2) - 1];
        assert_eq!(
            delivery_holds, !cell.expect_delivery_failure,
            "{}: unexpected scalar verdict",
            cell.name
        );
        let mut first: Option<CellReport> = None;
        for threads in THREADS {
            let ck = checker(&cell, CheckConfig::new().with_check_threads(threads));
            let ss = ck.explore().expect("explore");
            let por = report(&cell, &ss);
            assert_eq!(
                por.holds, full.holds,
                "{} at {threads} thread(s): verdicts deviate from the scalar engine",
                cell.name
            );
            // Failing reports carry the counterexample trace; replay
            // delegation promises them byte-identical to the scalar
            // engine. (Passing reports embed the explored state count,
            // which reduction may legitimately shrink.)
            for (held, (p, f)) in full.holds.iter().zip(por.reports.iter().zip(&full.reports)) {
                if !held {
                    assert_eq!(
                        p, f,
                        "{} at {threads} thread(s): counterexample deviates",
                        cell.name
                    );
                }
            }
            assert_eq!(
                por.error_labels, full.error_labels,
                "{} at {threads} thread(s): crash label sets deviate",
                cell.name
            );
            assert_eq!(
                por.worst_cost, full.worst_cost,
                "{} at {threads} thread(s): completion bound deviates",
                cell.name
            );
            assert!(
                por.states <= full.states,
                "{}: reduction must never grow the space",
                cell.name
            );
            // The reduced graph and every report string are
            // thread-count-invariant.
            match &first {
                None => first = Some(por),
                Some(one) => {
                    assert_eq!(
                        one.states, por.states,
                        "{}: thread count changed the graph",
                        cell.name
                    );
                    assert_eq!(
                        one.reports, por.reports,
                        "{}: thread count changed a report",
                        cell.name
                    );
                }
            }
        }
    }
}

/// Randomized synthetic fields: POR with private (unobserved) compute
/// variables versus the full engine, across thread counts. The terminal
/// delivery sums are schedule-independent, so both engines must agree.
#[test]
fn randomized_synth_fields_agree_across_engines() {
    for seed in [1u64, 7, 42] {
        let cfg = SynthConfig::new()
            .with_couples(2)
            .with_rounds(2)
            .with_compute(8)
            .with_compute_cost(1)
            .without_conflicts()
            .with_seed(seed);
        let s = synth_system(&cfg);
        let reference = ifsyn_sim::Simulator::new(&s.system)
            .expect("simulator")
            .run_to_quiescence()
            .expect("quiesces");
        let sums: Vec<(String, i64)> = (0..s.consumers.len())
            .map(|i| {
                let name = format!("c{i}_sum");
                let v = reference
                    .final_variable_by_name(&name)
                    .and_then(|v| v.as_i64().ok())
                    .expect("consumer sum");
                (name, v)
            })
            .collect();
        let check = |ss: &StateSpace<'_>| {
            let rep = ss.check_terminal("delivers_all_sums", |v| {
                v.all_done()
                    && sums
                        .iter()
                        .all(|(n, want)| v.variable(n).and_then(|x| x.as_i64().ok()) == Some(*want))
            });
            (rep.holds, rep.to_string(), ss.worst_cost_to_quiescence())
        };
        let base = CheckConfig::new()
            .with_max_states(1 << 20)
            .with_observed_variables(vec![]);
        let full_ck = Checker::with_config(&s.system, base.clone().without_por()).expect("checker");
        let full_ss = full_ck.explore().expect("explore");
        let full = check(&full_ss);
        assert!(full.0, "seed {seed}: synth delivery must hold\n{}", full.1);
        let mut reduced_states = None;
        for threads in THREADS {
            let ck = Checker::with_config(&s.system, base.clone().with_check_threads(threads))
                .expect("checker");
            let ss = ck.explore().expect("explore");
            let por = check(&ss);
            // Verdict and completion bound must match the full engine; a
            // passing report's state count legitimately shrinks under
            // reduction, so the rendered line is only compared on FAIL
            // (where replay delegation promises byte-identity).
            assert_eq!(por.0, full.0, "seed {seed} at {threads} thread(s): verdict");
            assert_eq!(por.2, full.2, "seed {seed} at {threads} thread(s): bound");
            if !full.0 {
                assert_eq!(por.1, full.1, "seed {seed} at {threads} thread(s): report");
            }
            assert!(
                ss.state_count() < full_ss.state_count(),
                "seed {seed}: no reduction"
            );
            match reduced_states {
                None => reduced_states = Some(ss.state_count()),
                Some(n) => assert_eq!(
                    n,
                    ss.state_count(),
                    "seed {seed}: graph not thread-invariant"
                ),
            }
            // Allocation discipline: persistent per-worker scratch states
            // only, never a fresh state per transition.
            assert!(
                ss.stats().state_allocs < 64,
                "seed {seed}: {} scratch-state allocations",
                ss.stats().state_allocs
            );
        }
    }
}

/// Bitstate mode is one-sided: it may merge distinct states, but on the
/// pinned catalog every known FAIL must stay a FAIL — a collision that
/// swallowed a counterexample would make the lossy mode useless.
#[test]
fn bitstate_never_flips_a_pinned_fail_into_a_pass() {
    for cell in catalog() {
        let exact = {
            let ck = checker(&cell, CheckConfig::new());
            let ss = ck.explore().expect("explore");
            report(&cell, &ss)
        };
        let bits = {
            let ck = checker(&cell, CheckConfig::new().with_bitstate(28));
            let ss = ck.explore().expect("explore");
            report(&cell, &ss)
        };
        for (i, (&e, &b)) in exact.holds.iter().zip(&bits.holds).enumerate() {
            if !e {
                assert!(
                    !b,
                    "{}: property #{i} flipped FAIL→PASS under bitstate dedup",
                    cell.name
                );
            }
        }
    }
}

/// A state budget turns exhaustion into a structured `Bounded` verdict
/// carrying the budget and the unexplored frontier size.
#[test]
fn state_limit_yields_a_bounded_verdict_with_frontier_details() {
    let cell = fig3_cell("none", vec![], Variant::Plain, false);
    let ck = checker(&cell, CheckConfig::new().with_state_limit(200));
    let ss = ck.explore().expect("explore");
    let b = ss.bounded().expect("exploration must stop at the budget");
    assert_eq!(b.limit, 200);
    assert!(b.frontier > 0, "a truncated frontier must be reported");
    assert!(ss.state_count() >= 200);
    let rep = ss.check_invariant("trivially_true", |_| true);
    assert_eq!(rep.verdict, Verdict::Bounded);
    assert!(rep.holds);
    let shown = rep.to_string();
    assert!(shown.contains("BOUND"), "{shown}");
    assert!(shown.contains("state limit 200"), "{shown}");
    assert_eq!(rep.bounded.map(|x| x.limit), Some(200));
    // A bounded exploration cannot certify a completion bound.
    assert_eq!(ss.worst_cost_to_quiescence(), None);
}

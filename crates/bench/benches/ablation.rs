//! Criterion bench: the ablation measurements (arbitration overhead and
//! bus splitting) — how much the future-work extensions cost to compute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifsyn_core::{
    Arbitration, BusDesign, BusGenerator, ProtocolGenerator, ProtocolKind,
};
use ifsyn_sim::Simulator;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{Channel, ChannelDirection, ChannelId, System, Ty};
use ifsyn_systems::flc;
use std::hint::black_box;

fn hot_system(n: usize) -> (System, Vec<ChannelId>) {
    let mut sys = System::new("hot");
    let m1 = sys.add_module("m1");
    let m2 = sys.add_module("m2");
    let store = sys.add_behavior("store", m2);
    let mut chans = Vec::new();
    for k in 0..n {
        let b = sys.add_behavior(format!("P{k}"), m1);
        let v = sys.add_variable(format!("V{k}"), Ty::array(Ty::Int(16), 16), store);
        let i = sys.add_variable(format!("i{k}"), Ty::Int(16), b);
        let ch = sys.add_channel(Channel {
            name: format!("hot{k}"),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 4,
            accesses: 16,
        });
        sys.behavior_mut(b).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(15, 16),
            vec![send_at(ch, load(var(i)), load(var(i)))],
        )];
        chans.push(ch);
    }
    (sys, chans)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    group.bench_function("shared_bus_with_arbiter_sim", |b| {
        let f = flc::flc();
        let design = BusDesign::with_width(f.bus_channels(), 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new()
            .with_arbitration(Arbitration::round_robin().with_grant_cycles(2))
            .refine(&f.system, &design)
            .unwrap();
        b.iter(|| {
            Simulator::new(black_box(&refined.system))
                .unwrap()
                .run_to_quiescence()
                .unwrap()
        })
    });
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("split_channels", n), &n, |b, &n| {
            let (sys, chans) = hot_system(n);
            b.iter(|| {
                BusGenerator::new()
                    .generate_with_split(black_box(&sys), black_box(&chans))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Criterion bench: system partitioning (channel derivation and access
//! rewriting) on the Ethernet coprocessor model.

use criterion::{criterion_group, criterion_main, Criterion};
use ifsyn_partition::Partitioner;
use ifsyn_systems::ethernet::ethernet_unpartitioned;
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let sys = ethernet_unpartitioned();
    c.bench_function("partition_ethernet", |b| {
        b.iter(|| {
            Partitioner::new()
                .place_behavior("RCV_UNIT", "mac_chip")
                .place_behavior("XMIT_UNIT", "mac_chip")
                .place_behavior("DMA_RCV", "mac_chip")
                .place_behavior("DMA_XMIT", "mac_chip")
                .place_behavior("EXEC_UNIT", "mac_chip")
                .place_variable("RCV_BUFFER", "buf_chip")
                .place_variable("XMIT_BUFFER", "buf_chip")
                .partition(black_box(&sys))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);

//! Criterion bench: the bus-generation width-exploration algorithm
//! (backs Fig. 2's feasibility reasoning and Fig. 8's selections).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifsyn_core::BusGenerator;
use ifsyn_systems::flc;
use std::hint::black_box;

fn bench_busgen(c: &mut Criterion) {
    let f = flc::flc();
    let chans = f.bus_channels();
    let mut group = c.benchmark_group("busgen");
    group.bench_function("flc_full_exploration", |b| {
        b.iter(|| {
            BusGenerator::new()
                .generate(black_box(&f.system), black_box(&chans))
                .unwrap()
        })
    });
    for width in [9u32, 16, 23] {
        group.bench_with_input(
            BenchmarkId::new("single_width", width),
            &width,
            |b, &w| {
                b.iter(|| {
                    BusGenerator::new()
                        .with_width_range(w, w)
                        .generate(black_box(&f.system), black_box(&chans))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_busgen);
criterion_main!(benches);

//! Criterion bench: protocol generation itself (the paper's core
//! transformation), per width and per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
use ifsyn_systems::fig3;
use std::hint::black_box;

fn bench_protogen(c: &mut Criterion) {
    let f = fig3::fig3();
    let mut group = c.benchmark_group("protogen");
    for width in [1u32, 8, 16] {
        group.bench_with_input(BenchmarkId::new("fig3_width", width), &width, |b, &w| {
            let design = BusDesign::with_width(f.channels(), w, ProtocolKind::FullHandshake);
            b.iter(|| {
                ProtocolGenerator::new()
                    .refine(black_box(&f.system), black_box(&design))
                    .unwrap()
            })
        });
    }
    group.bench_function("fig3_fixed_delay", |b| {
        let design = BusDesign::with_width(f.channels(), 8, ProtocolKind::FixedDelay { cycles: 3 });
        b.iter(|| {
            ProtocolGenerator::new()
                .refine(black_box(&f.system), black_box(&design))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protogen);
criterion_main!(benches);

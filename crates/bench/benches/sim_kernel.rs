//! Criterion bench: raw discrete-event kernel throughput (handshake
//! words per second), the substrate every measured figure rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ifsyn_sim::Simulator;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{System, Ty};
use std::hint::black_box;

/// Two-process four-phase handshake moving `words` 8-bit words.
fn handshake_system(words: u64) -> System {
    let mut sys = System::new("hs");
    let m = sys.add_module("chip");
    let start = sys.add_signal("START", Ty::Bit);
    let done = sys.add_signal("DONE", Ty::Bit);
    let data = sys.add_signal("DATA", Ty::Bits(8));
    let tx = sys.add_behavior("tx", m);
    let rx = sys.add_behavior("rx", m);
    let txi = sys.add_variable("txi", Ty::Int(32), tx);
    let rxi = sys.add_variable("rxi", Ty::Int(32), rx);
    let sink = sys.add_variable("sink", Ty::Bits(8), rx);
    sys.behavior_mut(tx).body = vec![for_loop(
        var(txi),
        int_const(0, 32),
        int_const(words as i64 - 1, 32),
        vec![
            drive_cost(data, resize(load(var(txi)), 8), 0),
            drive_cost(start, bit_const(true), 1),
            wait_until(eq(signal(done), bit_const(true))),
            drive_cost(start, bit_const(false), 0),
            wait_until(eq(signal(done), bit_const(false))),
        ],
    )];
    sys.behavior_mut(rx).body = vec![for_loop(
        var(rxi),
        int_const(0, 32),
        int_const(words as i64 - 1, 32),
        vec![
            wait_until(eq(signal(start), bit_const(true))),
            assign_cost(var(sink), signal(data), 0),
            drive_cost(done, bit_const(true), 1),
            wait_until(eq(signal(start), bit_const(false))),
            drive_cost(done, bit_const(false), 0),
        ],
    )];
    sys
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    for words in [100u64, 1000, 10_000] {
        group.throughput(Throughput::Elements(words));
        group.bench_with_input(
            BenchmarkId::new("handshake_words", words),
            &words,
            |b, &w| {
                let sys = handshake_system(w);
                b.iter(|| {
                    Simulator::new(black_box(&sys))
                        .unwrap()
                        .run_to_quiescence()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);

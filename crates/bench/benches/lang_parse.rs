//! Criterion bench: the textual frontend (lex + parse + lower + access
//! counting) on the shipped FLC spec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/flc.ifs"),
    )
    .expect("specs/flc.ifs");
    let mut group = c.benchmark_group("lang");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse_flc_spec", |b| {
        b.iter(|| ifsyn_lang::parse_system(black_box(&src)).unwrap())
    });
    let sys = ifsyn_lang::parse_system(&src).unwrap();
    group.bench_function("print_flc_spec", |b| {
        b.iter(|| ifsyn_lang::print_system(black_box(&sys)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);

//! Criterion bench: the Fig. 8 constrained selections (cost-function
//! evaluation over the full width exploration).

use criterion::{criterion_group, criterion_main, Criterion};
use ifsyn_core::{BusGenerator, Constraint};
use ifsyn_systems::flc;
use std::hint::black_box;

fn bench_constraints(c: &mut Criterion) {
    let f = flc::flc();
    let chans = f.bus_channels();
    let mut group = c.benchmark_group("fig8");
    group.bench_function("design_a", |b| {
        b.iter(|| {
            BusGenerator::new()
                .constraint(Constraint::min_peak_rate(f.ch2, 10.0, 10.0))
                .generate(black_box(&f.system), black_box(&chans))
                .unwrap()
        })
    });
    group.bench_function("design_c", |b| {
        b.iter(|| {
            BusGenerator::new()
                .constraint(Constraint::min_peak_rate(f.ch2, 10.0, 1.0))
                .constraint(Constraint::min_bus_width(14, 5.0))
                .constraint(Constraint::max_bus_width(16, 5.0))
                .generate(black_box(&f.system), black_box(&chans))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_constraints);
criterion_main!(benches);

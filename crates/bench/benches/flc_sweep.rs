//! Criterion bench: the Fig. 7 data point — refine the FLC bus and
//! simulate both processes, per width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
use ifsyn_sim::Simulator;
use ifsyn_systems::flc;
use std::hint::black_box;

fn bench_flc_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_point");
    group.sample_size(20);
    for width in [4u32, 8, 16, 23] {
        group.bench_with_input(BenchmarkId::new("width", width), &width, |b, &w| {
            let f = flc::flc();
            let design = BusDesign::with_width(f.bus_channels(), w, ProtocolKind::FullHandshake);
            let refined = ProtocolGenerator::new().refine(&f.system, &design).unwrap();
            b.iter(|| {
                Simulator::new(black_box(&refined.system))
                    .unwrap()
                    .run_to_quiescence()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flc_point);
criterion_main!(benches);

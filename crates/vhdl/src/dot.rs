//! Graphviz DOT export of system structure.
//!
//! Renders the partition picture the paper's Figs. 1, 3 and 6 draw by
//! hand: modules as clusters, behaviors and variables as nodes, channels
//! as labelled edges (`>` for writes, `<` for reads), and — for refined
//! systems — the bus as a node every grouped channel attaches to.

use std::fmt::Write as _;

use ifsyn_core::RefinedSystem;
use ifsyn_spec::{ChannelDirection, System};

/// Renders the module/behavior/variable/channel structure as DOT.
///
/// # Example
///
/// ```
/// use ifsyn_vhdl::to_dot;
/// let sys = ifsyn_spec::System::new("empty");
/// let dot = to_dot(&sys);
/// assert!(dot.starts_with("digraph"));
/// ```
pub fn to_dot(system: &System) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", system.name);
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    node [fontname=\"Helvetica\"];");
    for (mi, module) in system.modules.iter().enumerate() {
        let _ = writeln!(out, "    subgraph cluster_m{mi} {{");
        let _ = writeln!(out, "        label=\"{}\";", module.name);
        for (bi, b) in system.behaviors.iter().enumerate() {
            if b.module.index() != mi {
                continue;
            }
            let _ = writeln!(out, "        b{bi} [label=\"{}\" shape=box];", b.name);
            for (vi, v) in system.variables.iter().enumerate() {
                if v.owner.index() == bi {
                    let _ = writeln!(
                        out,
                        "        v{vi} [label=\"{} : {}\" shape=ellipse];",
                        v.name, v.ty
                    );
                }
            }
        }
        let _ = writeln!(out, "    }}");
    }
    for c in &system.channels {
        let (from, to) = match c.direction {
            ChannelDirection::Write => (
                format!("b{}", c.accessor.index()),
                format!("v{}", c.variable.index()),
            ),
            ChannelDirection::Read => (
                format!("v{}", c.variable.index()),
                format!("b{}", c.accessor.index()),
            ),
        };
        let _ = writeln!(
            out,
            "    {from} -> {to} [label=\"{} ({}b x{})\"];",
            c.name,
            c.message_bits(),
            c.accesses
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Like [`to_dot`], plus a bus node the grouped channels hang off, with
/// the wire budget in the label.
pub fn refined_to_dot(refined: &RefinedSystem) -> String {
    let system = &refined.system;
    let bus = &refined.bus;
    let mut out = to_dot(system);
    // Splice the bus node before the closing brace.
    out.truncate(out.trim_end().len() - 1);
    let _ = writeln!(
        out,
        "    bus [label=\"bus {} : {} data + {} ctl + {} id\" shape=hexagon];",
        bus.name,
        bus.design.width,
        bus.design.control_lines(),
        bus.design.id_bits()
    );
    for &(ch, _) in &bus.id_codes {
        let c = system.channel(ch);
        let _ = writeln!(
            out,
            "    b{} -> bus [style=dashed label=\"{}\"];",
            c.accessor.index(),
            c.name
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_core::{BusDesign, ProtocolGenerator, ProtocolKind};
    use ifsyn_spec::{Channel, Ty};

    fn sample() -> (System, Vec<ifsyn_spec::ChannelId>) {
        let mut sys = System::new("dot_test");
        let m1 = sys.add_module("chip1");
        let m2 = sys.add_module("chip2");
        let p = sys.add_behavior("P", m1);
        let store = sys.add_behavior("store", m2);
        let x = sys.add_variable("X", Ty::Bits(16), store);
        let ch = sys.add_channel(Channel {
            name: "ch0".into(),
            accessor: p,
            variable: x,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        (sys, vec![ch])
    }

    #[test]
    fn dot_has_clusters_nodes_and_edges() {
        let (sys, _) = sample();
        let dot = to_dot(&sys);
        assert!(dot.contains("subgraph cluster_m0"));
        assert!(dot.contains("label=\"chip1\""));
        assert!(dot.contains("[label=\"P\" shape=box]"));
        assert!(dot.contains("X : bit_vector(15 downto 0)"));
        assert!(dot.contains("-> v0 [label=\"ch0 (16b x1)\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn read_channels_point_from_variable_to_behavior() {
        let (mut sys, _) = sample();
        let p = sys.behavior_by_name("P").unwrap();
        let x = sys.variable_by_name("X").unwrap();
        sys.add_channel(Channel {
            name: "ch1".into(),
            accessor: p,
            variable: x,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        let dot = to_dot(&sys);
        assert!(dot.contains("v0 -> b0 [label=\"ch1"));
    }

    #[test]
    fn refined_dot_adds_the_bus_node() {
        let (sys, chans) = sample();
        let design = BusDesign::with_width(chans, 8, ProtocolKind::FullHandshake);
        let refined = ProtocolGenerator::new().refine(&sys, &design).unwrap();
        let dot = refined_to_dot(&refined);
        assert!(dot.contains("bus [label=\"bus B : 8 data + 2 ctl + 0 id\""));
        assert!(dot.contains("-> bus [style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

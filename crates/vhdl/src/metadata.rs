//! Bus-metadata sidecar export.
//!
//! When the CLI writes a VCD dump of a refined system it also writes
//! this JSON sidecar, so the trace can be analysed offline
//! (`ifsyn analyze --from-vcd --meta`) without re-running synthesis.
//! The format is `ifsyn-bus-meta-v1`, the one `ifsyn_analyze::BusMeta`
//! parses; the two stay in lockstep via a round-trip test in the
//! analyzer crate.

use std::fmt::Write as _;

use ifsyn_core::RefinedSystem;
use ifsyn_spec::SignalId;

/// Renders the bus structure of a refined system as the
/// `ifsyn-bus-meta-v1` JSON sidecar.
pub fn bus_metadata_json(refined: &RefinedSystem) -> String {
    let sys = &refined.system;
    let bus = &refined.bus;
    let design = &bus.design;
    let timing = design.protocol.timing(design.width);
    let sig = |s: Option<SignalId>| match s {
        Some(id) => json_str(&sys.signal(id).name),
        None => "null".to_string(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"ifsyn-bus-meta-v1\",");
    let _ = writeln!(out, "  \"bus\": {},", json_str(&bus.name));
    let _ = writeln!(out, "  \"protocol\": {},", json_str(design.protocol.name()));
    let _ = writeln!(out, "  \"width\": {},", design.width);
    let _ = writeln!(
        out,
        "  \"cycles_per_word\": {},",
        design.protocol.cycles_per_word()
    );
    let _ = writeln!(out, "  \"signals\": {{");
    let _ = writeln!(out, "    \"start\": {},", sig(bus.start));
    let _ = writeln!(out, "    \"done\": {},", sig(bus.done));
    let _ = writeln!(out, "    \"id\": {},", sig(bus.id));
    let _ = writeln!(out, "    \"data\": {}", sig(bus.data));
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"channels\": [");
    for (i, &ch) in design.channels.iter().enumerate() {
        let c = sys.channel(ch);
        let comma = if i + 1 < design.channels.len() {
            ","
        } else {
            ""
        };
        let code = bus
            .id_code(ch)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"id_code\": {}, \"message_bits\": {}, \
             \"words_per_message\": {}, \"accessor\": {}}}{comma}",
            json_str(&c.name),
            code,
            c.message_bits(),
            timing.words(c.message_bits()),
            json_str(&sys.behavior(c.accessor).name)
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_core::{BusGenerator, ProtocolGenerator};
    use ifsyn_spec::dsl::*;
    use ifsyn_spec::{Channel, ChannelDirection, System, Ty};

    fn refined() -> RefinedSystem {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let p = sys.add_behavior("P", m);
        let owner = sys.add_behavior("MEMPROC", m);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 8), owner);
        let i = sys.add_variable("i", Ty::Int(16), p);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: p,
            variable: mem,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 3,
            accesses: 8,
        });
        sys.behavior_mut(p).body = vec![for_loop(
            var(i),
            int_const(0, 16),
            int_const(7, 16),
            vec![send_at(ch, load(var(i)), load(var(i)))],
        )];
        let design = BusGenerator::new().generate(&sys, &[ch]).unwrap();
        ProtocolGenerator::new().refine(&sys, &design).unwrap()
    }

    #[test]
    fn sidecar_names_the_wires_and_channels() {
        let text = bus_metadata_json(&refined());
        assert!(text.contains("\"schema\": \"ifsyn-bus-meta-v1\""), "{text}");
        assert!(text.contains("\"start\": \"B_START\""), "{text}");
        assert!(text.contains("\"done\": \"B_DONE\""), "{text}");
        assert!(text.contains("\"id\": null"), "single channel: {text}");
        assert!(text.contains("\"name\": \"ch\""), "{text}");
        assert!(text.contains("\"accessor\": \"P\""), "{text}");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

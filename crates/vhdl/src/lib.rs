//! # ifsyn-vhdl — VHDL-flavoured pretty-printer
//!
//! Renders a specification — typically the refined system produced by
//! protocol generation — as VHDL-style text, reproducing the form of the
//! paper's Fig. 4 (bus record and send/receive procedures) and Fig. 5
//! (rewritten behaviors and variable processes).
//!
//! The output is *documentation-grade* VHDL: it mirrors the paper's code
//! style (records are shown for bus wires, `wait until` / `<=` / `:=`
//! syntax) rather than guaranteeing acceptance by a strict compiler —
//! the executable semantics live in `ifsyn-sim`.
//!
//! ## Example
//!
//! ```
//! use ifsyn_spec::{System, Ty, dsl::*};
//! use ifsyn_vhdl::VhdlPrinter;
//!
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip");
//! let b = sys.add_behavior("P", m);
//! let x = sys.add_variable("X", Ty::Bits(16), b);
//! sys.behavior_mut(b).body.push(assign(var(x), bits_const(32, 16)));
//!
//! let text = VhdlPrinter::new().print_system(&sys);
//! assert!(text.contains("process P"));
//! assert!(text.contains("X :="));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod metadata;
mod printer;

pub use dot::{refined_to_dot, to_dot};
pub use metadata::bus_metadata_json;
pub use printer::VhdlPrinter;

//! The pretty-printer.

use std::fmt::Write as _;

use ifsyn_core::RefinedSystem;
use ifsyn_spec::{
    Arg, BinOp, Expr, ParamMode, Place, Procedure, Stmt, System, Ty, UnaryOp, Value, WaitCond,
};

/// Prints systems and refined systems as VHDL-flavoured text.
#[derive(Debug, Clone, Default)]
pub struct VhdlPrinter {
    indent: usize,
}

impl VhdlPrinter {
    /// Creates a printer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prints a whole system: signals, procedures, then one process per
    /// behavior, grouped by module.
    pub fn print_system(&self, sys: &System) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- system {}", sys.name);
        if !sys.signals.is_empty() {
            out.push('\n');
            for s in &sys.signals {
                match &s.init {
                    None => {
                        let _ = writeln!(out, "signal {} : {} ;", s.name, ty_str(&s.ty));
                    }
                    Some(init) => {
                        let _ = writeln!(
                            out,
                            "signal {} : {} := {} ;",
                            s.name,
                            ty_str(&s.ty),
                            value_str(init)
                        );
                    }
                }
            }
        }
        for p in &sys.procedures {
            out.push('\n');
            self.print_procedure(sys, p, &mut out);
        }
        for (mi, module) in sys.modules.iter().enumerate() {
            let _ = writeln!(out, "\n-- module {}", module.name);
            for b in &sys.behaviors {
                if b.module.index() != mi {
                    continue;
                }
                out.push('\n');
                self.print_behavior(sys, b, &mut out);
            }
        }
        out
    }

    /// Prints a refined system, with the bus record shown in the paper's
    /// Fig. 4 style before the flattened signals.
    pub fn print_refined(&self, refined: &RefinedSystem) -> String {
        let mut out = String::new();
        let bus = &refined.bus;
        let sys = &refined.system;
        let _ = writeln!(out, "-- refined system {} (bus {})", sys.name, bus.name);
        let _ = writeln!(out, "type HandShakeBus is record");
        if bus.start.is_some() {
            let _ = writeln!(out, "    START : bit ;");
        }
        if bus.done.is_some() {
            let _ = writeln!(out, "    DONE : bit ;");
        }
        if let Some(id) = bus.id {
            let _ = writeln!(out, "    ID : {} ;", ty_str(&sys.signal(id).ty));
        }
        if let Some(data) = bus.data {
            let _ = writeln!(out, "    DATA : {} ;", ty_str(&sys.signal(data).ty));
        }
        let _ = writeln!(out, "end record ;");
        let _ = writeln!(out, "signal {} : HandShakeBus ;", bus.name);
        out.push('\n');
        let _ = writeln!(out, "-- channel id assignment");
        for &(ch, code) in &bus.id_codes {
            let width = bus.design.id_bits().max(1);
            let _ = writeln!(
                out,
                "--   {} = \"{}\"",
                sys.channel(ch).name,
                ifsyn_spec::BitVec::from_u64(code, width)
            );
        }
        out.push_str(&self.print_system(sys));
        out
    }

    fn print_behavior(&self, sys: &System, b: &ifsyn_spec::Behavior, out: &mut String) {
        let _ = writeln!(out, "process {}", b.name);
        for (vi, v) in sys.variables.iter().enumerate() {
            if v.owner.index() < sys.behaviors.len()
                && sys.behaviors[v.owner.index()].name == b.name
            {
                let _ = writeln!(out, "    variable {} : {} ;", v.name, ty_str(&v.ty));
                let _ = vi;
            }
        }
        let _ = writeln!(out, "begin");
        self.print_body(sys, &b.body, 1, out);
        if b.repeats {
            let _ = writeln!(out, "    -- process repeats");
        }
        let _ = writeln!(out, "end process ;");
    }

    fn print_procedure(&self, sys: &System, p: &Procedure, out: &mut String) {
        let params: Vec<String> = p
            .params
            .iter()
            .map(|q| {
                format!(
                    "{} : {} {}",
                    q.name,
                    match q.mode {
                        ParamMode::In => "in",
                        ParamMode::Out => "out",
                        ParamMode::InOut => "inout",
                    },
                    ty_str(&q.ty)
                )
            })
            .collect();
        let _ = writeln!(out, "procedure {}({}) is", p.name, params.join("; "));
        for l in &p.locals {
            let _ = writeln!(out, "    variable {} : {} ;", l.name, ty_str(&l.ty));
        }
        let _ = writeln!(out, "begin");
        self.print_proc_body(sys, p, &p.body, 1, out);
        let _ = writeln!(out, "end {} ;", p.name);
    }

    fn print_body(&self, sys: &System, body: &[Stmt], depth: usize, out: &mut String) {
        for stmt in body {
            self.print_stmt(sys, None, stmt, depth, out);
        }
    }

    fn print_proc_body(
        &self,
        sys: &System,
        proc: &Procedure,
        body: &[Stmt],
        depth: usize,
        out: &mut String,
    ) {
        for stmt in body {
            self.print_stmt(sys, Some(proc), stmt, depth, out);
        }
    }

    fn print_stmt(
        &self,
        sys: &System,
        proc: Option<&Procedure>,
        stmt: &Stmt,
        depth: usize,
        out: &mut String,
    ) {
        let pad = "    ".repeat(depth + self.indent);
        match stmt {
            Stmt::Assign { place, value, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}{} := {} ;",
                    place_str(sys, proc, place),
                    expr_str(sys, proc, value)
                );
            }
            Stmt::SignalAssign { signal, value, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}{} <= {} ;",
                    sys.signal(*signal).name,
                    expr_str(sys, proc, value)
                );
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if {} then", expr_str(sys, proc, cond));
                for s in then_body {
                    self.print_stmt(sys, proc, s, depth + 1, out);
                }
                if !else_body.is_empty() {
                    let _ = writeln!(out, "{pad}else");
                    for s in else_body {
                        self.print_stmt(sys, proc, s, depth + 1, out);
                    }
                }
                let _ = writeln!(out, "{pad}end if ;");
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}for {} in {} to {} loop",
                    place_str(sys, proc, var),
                    expr_str(sys, proc, from),
                    expr_str(sys, proc, to)
                );
                for s in body {
                    self.print_stmt(sys, proc, s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}end loop ;");
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while {} loop", expr_str(sys, proc, cond));
                for s in body {
                    self.print_stmt(sys, proc, s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}end loop ;");
            }
            Stmt::Wait(cond) => match cond {
                WaitCond::OnSignals(signals) => {
                    let names: Vec<&str> = signals
                        .iter()
                        .map(|&s| sys.signal(s).name.as_str())
                        .collect();
                    let _ = writeln!(out, "{pad}wait on {} ;", names.join(", "));
                }
                WaitCond::Until(e) => {
                    let _ = writeln!(out, "{pad}wait until {} ;", expr_str(sys, proc, e));
                }
                WaitCond::UntilTimeout { cond, cycles } => {
                    let _ = writeln!(
                        out,
                        "{pad}wait until {} for {cycles} cycles ;",
                        expr_str(sys, proc, cond)
                    );
                }
                WaitCond::ForCycles(n) => {
                    let _ = writeln!(out, "{pad}wait for {n} cycles ;");
                }
            },
            Stmt::Call { procedure, args } => {
                let callee = sys.procedure(*procedure);
                let rendered: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        Arg::In(e) => expr_str(sys, proc, e),
                        Arg::Out(p) | Arg::InOut(p) => place_str(sys, proc, p),
                    })
                    .collect();
                let _ = writeln!(out, "{pad}{}({}) ;", callee.name, rendered.join(", "));
            }
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } => {
                let ch = sys.channel(*channel);
                let mut args = Vec::new();
                if let Some(a) = addr {
                    args.push(expr_str(sys, proc, a));
                }
                args.push(expr_str(sys, proc, data));
                let _ = writeln!(
                    out,
                    "{pad}send_{}({}) ;  -- abstract",
                    ch.name,
                    args.join(", ")
                );
            }
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } => {
                let ch = sys.channel(*channel);
                let mut args = Vec::new();
                if let Some(a) = addr {
                    args.push(expr_str(sys, proc, a));
                }
                args.push(place_str(sys, proc, target));
                let _ = writeln!(
                    out,
                    "{pad}receive_{}({}) ;  -- abstract",
                    ch.name,
                    args.join(", ")
                );
            }
            Stmt::Compute { cycles, note } => {
                let _ = writeln!(out, "{pad}-- compute: {note} ({cycles} cycles)");
            }
            Stmt::Assert { cond, note } => {
                let _ = writeln!(
                    out,
                    "{pad}assert {} report \"{note}\" ;",
                    expr_str(sys, proc, cond)
                );
            }
            Stmt::Return => {
                let _ = writeln!(out, "{pad}return ;");
            }
        }
    }
}

fn ty_str(ty: &Ty) -> String {
    ty.to_string()
}

fn place_str(sys: &System, proc: Option<&Procedure>, place: &Place) -> String {
    match place {
        Place::Var(v) => sys.variable(*v).name.clone(),
        Place::Local(slot) => match proc {
            Some(p) if *slot < p.slot_count() => p.slot_name(*slot).to_string(),
            _ => format!("local{slot}"),
        },
        Place::Index { base, index } => format!(
            "{}({})",
            place_str(sys, proc, base),
            expr_str(sys, proc, index)
        ),
        Place::Slice { base, hi, lo } => {
            format!("{}({} downto {})", place_str(sys, proc, base), hi, lo)
        }
        Place::DynSlice {
            base,
            offset,
            width,
        } => {
            let off = expr_str(sys, proc, offset);
            format!(
                "{}({off} + {} downto {off})",
                place_str(sys, proc, base),
                width - 1
            )
        }
    }
}

fn expr_str(sys: &System, proc: Option<&Procedure>, expr: &Expr) -> String {
    match expr {
        Expr::Const(v) => value_str(v),
        Expr::Load(p) => place_str(sys, proc, p),
        Expr::Signal(s) => sys.signal(*s).name.clone(),
        Expr::Unary { op, arg } => match op {
            UnaryOp::Not => format!("not {}", expr_str(sys, proc, arg)),
            UnaryOp::Neg => format!("-{}", expr_str(sys, proc, arg)),
        },
        Expr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            expr_str(sys, proc, lhs),
            binop_str(*op),
            expr_str(sys, proc, rhs)
        ),
        Expr::SliceOf { base, hi, lo } => {
            format!("{}({} downto {})", expr_str(sys, proc, base), hi, lo)
        }
        Expr::Resize { base, width } => {
            format!("resize({}, {})", expr_str(sys, proc, base), width)
        }
        Expr::DynSliceOf {
            base,
            offset,
            width,
        } => {
            let off = expr_str(sys, proc, offset);
            format!(
                "{}({off} + {} downto {off})",
                expr_str(sys, proc, base),
                width - 1
            )
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "mod",
        BinOp::Eq => "=",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Concat => "&",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

fn value_str(v: &Value) -> String {
    match v {
        Value::Bit(b) => format!("'{}'", if *b { '1' } else { '0' }),
        Value::Bits(bv) => format!("\"{bv}\""),
        Value::Int { value, .. } => value.to_string(),
        Value::Array(_) => "(others => ...)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::dsl::*;

    fn demo_system() -> System {
        let mut sys = System::new("demo");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("X", Ty::Bits(16), b);
        let s = sys.add_signal("B_START", Ty::Bit);
        sys.behavior_mut(b).body = vec![
            assign(var(x), bits_const(32, 16)),
            drive_cost(s, bit_const(true), 1),
            wait_until(eq(signal(s), bit_const(false))),
        ];
        sys
    }

    #[test]
    fn prints_process_and_statements() {
        let text = VhdlPrinter::new().print_system(&demo_system());
        assert!(text.contains("process P"), "{text}");
        assert!(text.contains("B_START <= '1'"), "{text}");
        assert!(text.contains("wait until (B_START = '0')"), "{text}");
        assert!(
            text.contains("variable X : bit_vector(15 downto 0)"),
            "{text}"
        );
    }

    #[test]
    fn prints_signal_declarations() {
        let text = VhdlPrinter::new().print_system(&demo_system());
        assert!(text.contains("signal B_START : bit ;"), "{text}");
    }

    #[test]
    fn prints_procedures_with_params() {
        let mut sys = demo_system();
        let mut p = Procedure::new("SendCH0");
        let tx = p.add_param("txdata", Ty::Bits(16), ParamMode::In);
        p.body = vec![assign(local(tx), bits_const(0, 16))];
        sys.add_procedure(p);
        let text = VhdlPrinter::new().print_system(&sys);
        assert!(text.contains("procedure SendCH0(txdata : in bit_vector(15 downto 0))"));
        assert!(text.contains("txdata :="), "{text}");
    }

    #[test]
    fn prints_slices_and_indexing() {
        let mut sys = demo_system();
        let b = sys.behavior_by_name("P").unwrap();
        let arr = sys.add_variable("MEM", Ty::array(Ty::Bits(8), 4), b);
        sys.behavior_mut(b).body = vec![assign(
            slice(index(var(arr), int_const(2, 8)), 7, 4),
            bits_const(3, 4),
        )];
        let text = VhdlPrinter::new().print_system(&sys);
        assert!(text.contains("MEM(2)(7 downto 4) :="), "{text}");
    }
}

//! Data types of the specification language.

use std::fmt;

/// The type of a variable, signal, parameter or expression.
///
/// Widths are explicit everywhere because interface synthesis reasons about
/// *bits on wires*: a channel's message size is derived from the accessed
/// variable's type via [`Ty::bit_width`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A single bit (VHDL `bit`).
    Bit,
    /// A bit vector of the given width (VHDL `bit_vector(w-1 downto 0)`).
    Bits(u32),
    /// A bounded integer stored in the given number of bits.
    Int(u32),
    /// A one-dimensional array.
    Array {
        /// Element type.
        elem: Box<Ty>,
        /// Number of elements.
        len: u32,
    },
}

impl Ty {
    /// Convenience constructor for an array type.
    pub fn array(elem: Ty, len: u32) -> Self {
        Ty::Array {
            elem: Box::new(elem),
            len,
        }
    }

    /// Width in bits of one value of this type.
    ///
    /// For arrays this is the *total* width (`len * elem.bit_width()`);
    /// use [`Ty::element_width`] for the per-element message size.
    pub fn bit_width(&self) -> u32 {
        match self {
            Ty::Bit => 1,
            Ty::Bits(w) | Ty::Int(w) => *w,
            Ty::Array { elem, len } => elem.bit_width() * len,
        }
    }

    /// Width in bits of a single element: the array element width for
    /// arrays, the full width otherwise.
    pub fn element_width(&self) -> u32 {
        match self {
            Ty::Array { elem, .. } => elem.bit_width(),
            other => other.bit_width(),
        }
    }

    /// Number of address bits needed to index this type: `ceil(log2(len))`
    /// for arrays, `0` for scalars.
    pub fn addr_bits(&self) -> u32 {
        match self {
            Ty::Array { len, .. } => {
                if *len <= 1 {
                    0
                } else {
                    32 - (len - 1).leading_zeros()
                }
            }
            _ => 0,
        }
    }

    /// Returns `true` for array types.
    pub fn is_array(&self) -> bool {
        matches!(self, Ty::Array { .. })
    }

    /// Number of elements: array length, or 1 for scalars.
    pub fn len(&self) -> u32 {
        match self {
            Ty::Array { len, .. } => *len,
            _ => 1,
        }
    }

    /// Returns `true` if the type holds no bits at all.
    pub fn is_empty(&self) -> bool {
        self.bit_width() == 0
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Bit => write!(f, "bit"),
            Ty::Bits(w) => write!(f, "bit_vector({} downto 0)", w.saturating_sub(1)),
            Ty::Int(w) => write!(f, "integer<{w}>"),
            Ty::Array { elem, len } => {
                write!(f, "array(0 to {}) of {}", len.saturating_sub(1), elem)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths() {
        assert_eq!(Ty::Bit.bit_width(), 1);
        assert_eq!(Ty::Bits(16).bit_width(), 16);
        assert_eq!(Ty::Int(32).bit_width(), 32);
    }

    #[test]
    fn array_width_is_total() {
        let t = Ty::array(Ty::Int(16), 128);
        assert_eq!(t.bit_width(), 2048);
        assert_eq!(t.element_width(), 16);
        assert_eq!(t.len(), 128);
    }

    #[test]
    fn addr_bits_matches_paper_flc_memories() {
        // trru arrays: 128 entries -> 7 address bits (paper Fig. 6/7).
        assert_eq!(Ty::array(Ty::Int(16), 128).addr_bits(), 7);
        // 64-entry MEM of Fig. 3 -> 6 address bits.
        assert_eq!(Ty::array(Ty::Bits(16), 64).addr_bits(), 6);
        // InitMemberFunct: 1920 entries -> 11 bits.
        assert_eq!(Ty::array(Ty::Int(16), 1920).addr_bits(), 11);
    }

    #[test]
    fn addr_bits_edge_cases() {
        assert_eq!(Ty::Bits(8).addr_bits(), 0);
        assert_eq!(Ty::array(Ty::Bit, 1).addr_bits(), 0);
        assert_eq!(Ty::array(Ty::Bit, 2).addr_bits(), 1);
        assert_eq!(Ty::array(Ty::Bit, 3).addr_bits(), 2);
        assert_eq!(Ty::array(Ty::Bit, 129).addr_bits(), 8);
    }

    #[test]
    fn display_is_vhdl_flavoured() {
        assert_eq!(Ty::Bits(8).to_string(), "bit_vector(7 downto 0)");
        assert_eq!(
            Ty::array(Ty::Int(16), 4).to_string(),
            "array(0 to 3) of integer<16>"
        );
    }
}

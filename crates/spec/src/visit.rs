//! Statement tree traversal and rewriting utilities.
//!
//! The partitioner and the protocol generator both transform behavior
//! bodies wholesale: the partitioner replaces remote variable accesses
//! with channel operations, the protocol generator replaces channel
//! operations with procedure calls. [`rewrite_body`] supports exactly that
//! one-to-many statement substitution; [`for_each_stmt`] supports the
//! analyses (access counting, cost estimation).

use crate::stmt::Stmt;

/// Calls `f` on every statement in `body`, depth-first, outer first.
pub fn for_each_stmt<'a, F: FnMut(&'a Stmt)>(body: &'a [Stmt], f: &mut F) {
    for stmt in body {
        f(stmt);
        for inner in stmt.bodies() {
            for_each_stmt(inner, f);
        }
    }
}

/// Result of rewriting one statement.
pub enum Rewrite {
    /// Keep the statement as-is (nested bodies are still rewritten).
    Keep,
    /// Replace the statement with the given sequence (which is *not*
    /// recursively rewritten — the replacement is final).
    Replace(Vec<Stmt>),
}

/// Rewrites a statement body: `f` decides per statement whether to keep or
/// replace it. Nested bodies of kept statements are rewritten recursively.
///
/// # Example
///
/// Replace every `Return` with a no-op compute marker:
///
/// ```
/// use ifsyn_spec::{Stmt, visit::{rewrite_body, Rewrite}};
///
/// let body = vec![Stmt::Return];
/// let out = rewrite_body(body, &mut |s| match s {
///     Stmt::Return => Rewrite::Replace(vec![Stmt::compute(0, "stripped")]),
///     _ => Rewrite::Keep,
/// });
/// assert!(matches!(out[0], Stmt::Compute { .. }));
/// ```
pub fn rewrite_body<F>(body: Vec<Stmt>, f: &mut F) -> Vec<Stmt>
where
    F: FnMut(&Stmt) -> Rewrite,
{
    let mut out = Vec::with_capacity(body.len());
    for mut stmt in body {
        match f(&stmt) {
            Rewrite::Replace(replacement) => out.extend(replacement),
            Rewrite::Keep => {
                for inner in stmt.bodies_mut() {
                    let taken = std::mem::take(inner);
                    *inner = rewrite_body(taken, f);
                }
                out.push(stmt);
            }
        }
    }
    out
}

/// Counts statements matching a predicate, anywhere in the body.
pub fn count_stmts<F: FnMut(&Stmt) -> bool>(body: &[Stmt], mut pred: F) -> usize {
    let mut n = 0;
    for_each_stmt(body, &mut |s| {
        if pred(s) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::ids::{ChannelId, VarId};

    fn sample_body() -> Vec<Stmt> {
        vec![
            assign(var(VarId::new(0)), int_const(1, 8)),
            if_then(
                bit_const(true),
                vec![
                    send(ChannelId::new(0), int_const(2, 8)),
                    for_loop(
                        var(VarId::new(1)),
                        int_const(0, 8),
                        int_const(3, 8),
                        vec![send(ChannelId::new(1), int_const(3, 8))],
                    ),
                ],
            ),
        ]
    }

    #[test]
    fn for_each_visits_nested() {
        let body = sample_body();
        let mut n = 0;
        for_each_stmt(&body, &mut |_| n += 1);
        // assign + if + send + for + send = 5
        assert_eq!(n, 5);
    }

    #[test]
    fn count_stmts_filters() {
        let body = sample_body();
        let sends = count_stmts(&body, |s| matches!(s, Stmt::ChannelSend { .. }));
        assert_eq!(sends, 2);
    }

    #[test]
    fn rewrite_replaces_nested_sends() {
        let body = sample_body();
        let out = rewrite_body(body, &mut |s| match s {
            Stmt::ChannelSend { .. } => {
                Rewrite::Replace(vec![Stmt::compute(1, "tx"), Stmt::compute(1, "tx2")])
            }
            _ => Rewrite::Keep,
        });
        let computes = count_stmts(&out, |s| matches!(s, Stmt::Compute { .. }));
        let sends = count_stmts(&out, |s| matches!(s, Stmt::ChannelSend { .. }));
        assert_eq!(computes, 4);
        assert_eq!(sends, 0);
    }

    #[test]
    fn rewrite_keep_preserves_structure() {
        let body = sample_body();
        let out = rewrite_body(body.clone(), &mut |_| Rewrite::Keep);
        assert_eq!(out, body);
    }
}

//! Abstract communication channels.

use crate::ids::{BehaviorId, VarId};

/// Direction of a channel from the accessing process's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelDirection {
    /// The process reads the remote variable (`A < MEM` in the paper).
    Read,
    /// The process writes the remote variable (`A > MEM` in the paper).
    Write,
}

impl ChannelDirection {
    /// The paper's arrow notation: `<` for reads, `>` for writes.
    pub fn arrow(self) -> char {
        match self {
            ChannelDirection::Read => '<',
            ChannelDirection::Write => '>',
        }
    }
}

/// An abstract communication channel created by system partitioning.
///
/// A channel connects one accessing behavior to one variable that
/// partitioning placed on a different module. It is "a virtual entity free
/// of any implementation details" (paper §1); bus generation and protocol
/// generation later give a group of channels a physical bus and a
/// protocol.
///
/// Message size: every access transfers `data_bits` of payload plus
/// `addr_bits` of element address (zero for scalar variables), matching
/// the paper's accounting for the FLC channels ("the two channels each
/// transfer 16 bits of data and 7 bits of address").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Channel name, e.g. `ch1`.
    pub name: String,
    /// The behavior accessing the remote variable.
    pub accessor: BehaviorId,
    /// The remote variable being accessed.
    pub variable: VarId,
    /// Access direction.
    pub direction: ChannelDirection,
    /// Payload bits per access (the variable's element width).
    pub data_bits: u32,
    /// Address bits per access (0 for scalars).
    pub addr_bits: u32,
    /// Number of accesses over the accessor's lifetime (used by rate
    /// estimation). For repeating behaviors: accesses per iteration.
    pub accesses: u64,
}

impl Channel {
    /// Bits moved per access: data plus address.
    pub fn message_bits(&self) -> u32 {
        self.data_bits + self.addr_bits
    }

    /// Total bits moved over the accessor's lifetime.
    pub fn total_bits(&self) -> u64 {
        u64::from(self.message_bits()) * self.accesses
    }

    /// Number of wires a dedicated (unshared) implementation would need,
    /// which is what bus merging saves (paper Fig. 8's "interconnect
    /// reduction" baseline).
    pub fn dedicated_wires(&self) -> u32 {
        self.message_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc_ch1() -> Channel {
        Channel {
            name: "ch1".into(),
            accessor: BehaviorId::new(0),
            variable: VarId::new(0),
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: 128,
        }
    }

    #[test]
    fn message_bits_is_data_plus_addr() {
        assert_eq!(flc_ch1().message_bits(), 23);
    }

    #[test]
    fn total_bits_scales_with_accesses() {
        assert_eq!(flc_ch1().total_bits(), 23 * 128);
    }

    #[test]
    fn direction_arrows_match_paper_notation() {
        assert_eq!(ChannelDirection::Read.arrow(), '<');
        assert_eq!(ChannelDirection::Write.arrow(), '>');
    }
}

//! # ifsyn-spec — system-specification IR for interface synthesis
//!
//! This crate defines the intermediate representation every other crate in
//! the workspace manipulates: a small, VHDL-flavoured behavioural language
//! with processes ([`Behavior`]), variables, signals, procedures and
//! abstract communication [`Channel`]s, assembled into a [`System`].
//!
//! The IR mirrors the specification model of Narayan & Gajski,
//! *Protocol Generation for Communication Channels* (DAC 1994): a system is
//! a set of concurrently executing processes that access variables; after
//! partitioning, accesses to variables living on another module become
//! channel operations ([`Stmt::ChannelSend`] / [`Stmt::ChannelReceive`]);
//! interface synthesis later refines those into bus signal wiggling.
//!
//! ## Value representation
//!
//! [`BitVec`] — the workhorse value type of the simulator — packs its bits
//! into 64-bit limbs, least-significant limb first, with the logical width
//! tracked separately from storage. Vectors of 64 bits or fewer live in a
//! single inline limb (no heap allocation); wider vectors use exactly
//! `ceil(width / 64)` heap limbs. Two invariants keep the representation
//! canonical: the limb count is exactly `max(1, ceil(width / 64))`, and
//! every storage bit at position `>= width` is zero (the top limb is
//! masked). Canonical form means the *derived* `PartialEq`/`Ord`/`Hash`
//! compare logical values, and equal-width equality is a plain word
//! compare — the property the simulation kernel's hot path relies on.
//!
//! ## Example
//!
//! Build a tiny system with one behavior writing a 16-bit variable:
//!
//! ```
//! use ifsyn_spec::{System, Ty, dsl::*};
//!
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip1");
//! let b = sys.add_behavior("producer", m);
//! let x = sys.add_variable("X", Ty::Bits(16), b);
//! sys.behavior_mut(b).body.push(assign(var(x), bits_const(32, 16)));
//! assert!(sys.check().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod channel;
mod error;
mod expr;
mod ids;
mod procedure;
mod stmt;
mod system;
mod types;
mod value;

pub mod dsl;
pub mod lint;
pub mod rng;
pub mod visit;

pub use behavior::{Behavior, VarDecl};
pub use channel::{Channel, ChannelDirection};
pub use error::SpecError;
pub use expr::{BinOp, Expr, Place, UnaryOp};
pub use ids::{BehaviorId, ChannelId, ModuleId, ProcId, SignalId, VarId};
pub use procedure::{Arg, Param, ParamMode, Procedure};
pub use stmt::{Stmt, WaitCond};
pub use system::{Module, SignalDecl, System};
pub use types::Ty;
pub use value::{BitVec, Value};

//! Specification lints: non-fatal sanity warnings.
//!
//! [`System::check`] enforces structural validity; `lint` flags things
//! that are *probably* mistakes — storage that is never read, channels
//! nothing uses, signals with one end missing, data channels whose
//! transfers have no integrity protection. Run it after building or
//! parsing a system, before spending synthesis effort on it.

use std::collections::HashSet;

use crate::expr::Expr;
use crate::ids::{ChannelId, SignalId, VarId};
use crate::stmt::{Stmt, WaitCond};
use crate::system::System;
use crate::visit::for_each_stmt;

/// What a lint is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintKind {
    /// A variable that no statement reads or writes.
    UnusedVariable,
    /// A variable written but never read (and not a channel endpoint).
    WriteOnlyVariable,
    /// A channel no statement sends on or receives from.
    UnusedChannel,
    /// A channel whose accessor behavior owns the variable — the access
    /// is local, no bus is needed.
    LocalChannel,
    /// A signal that is read but never driven.
    UndrivenSignal,
    /// A signal that is driven but never read or waited on.
    UnreadSignal,
    /// An `if` or `while` whose condition is a constant.
    ConstantCondition,
    /// A cross-module channel whose transfers carry data words with no
    /// integrity protection: a corrupted word commits silently.
    UnprotectedDataChannel,
}

impl LintKind {
    /// Short kebab-case code for reports.
    pub fn code(self) -> &'static str {
        match self {
            LintKind::UnusedVariable => "unused-variable",
            LintKind::WriteOnlyVariable => "write-only-variable",
            LintKind::UnusedChannel => "unused-channel",
            LintKind::LocalChannel => "local-channel",
            LintKind::UndrivenSignal => "undriven-signal",
            LintKind::UnreadSignal => "unread-signal",
            LintKind::ConstantCondition => "constant-condition",
            LintKind::UnprotectedDataChannel => "unprotected-data-channel",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// What kind of problem.
    pub kind: LintKind,
    /// Human-readable description naming the object.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.code(), self.message)
    }
}

/// Lints `system`, returning all findings (empty = clean).
///
/// # Example
///
/// ```
/// use ifsyn_spec::{lint::lint_system, System, Ty};
///
/// let mut sys = System::new("demo");
/// let m = sys.add_module("chip");
/// let b = sys.add_behavior("P", m);
/// sys.add_variable("never_touched", Ty::Bits(8), b);
/// let findings = lint_system(&sys);
/// assert_eq!(findings.len(), 1);
/// assert!(findings[0].message.contains("never_touched"));
/// ```
pub fn lint_system(system: &System) -> Vec<Lint> {
    let mut usage = Usage::default();
    for behavior in &system.behaviors {
        collect_usage(system, &behavior.body, &mut usage);
    }
    for procedure in &system.procedures {
        collect_usage(system, &procedure.body, &mut usage);
    }

    let mut lints = Vec::new();
    for (i, v) in system.variables.iter().enumerate() {
        let id = VarId::new(i as u32);
        let is_endpoint = system.channels.iter().any(|c| c.variable == id);
        let read = usage.vars_read.contains(&id);
        let written = usage.vars_written.contains(&id);
        if is_endpoint {
            continue; // channel traffic counts as use
        }
        if !read && !written {
            lints.push(Lint {
                kind: LintKind::UnusedVariable,
                message: format!(
                    "variable `{}` (owned by `{}`) is never accessed",
                    v.name,
                    system.behavior(v.owner).name
                ),
            });
        } else if written && !read {
            lints.push(Lint {
                kind: LintKind::WriteOnlyVariable,
                message: format!("variable `{}` is written but never read", v.name),
            });
        }
    }
    // A refined system that already carries integrity protection has an
    // acknowledged NACK wire (`<bus>_ERR`, driven by the server and read
    // by the clients); its channels are not at risk of silent corruption.
    let has_integrity_ack = system.signals.iter().enumerate().any(|(i, s)| {
        let id = SignalId::new(i as u32);
        s.name.ends_with("_ERR")
            && usage.signals_driven.contains(&id)
            && usage.signals_read.contains(&id)
    });
    for (i, c) in system.channels.iter().enumerate() {
        let id = ChannelId::new(i as u32);
        if !usage.channels.contains(&id) {
            lints.push(Lint {
                kind: LintKind::UnusedChannel,
                message: format!("channel `{}` has no send or receive", c.name),
            });
        }
        let accessor_module = system.behavior(c.accessor).module;
        let owner_module = system.behavior(system.variable(c.variable).owner).module;
        if accessor_module == owner_module {
            lints.push(Lint {
                kind: LintKind::LocalChannel,
                message: format!(
                    "channel `{}` connects `{}` to co-located `{}` — no bus needed",
                    c.name,
                    system.behavior(c.accessor).name,
                    system.variable(c.variable).name
                ),
            });
        } else if c.data_bits > 0 && usage.channels.contains(&id) && !has_integrity_ack {
            lints.push(Lint {
                kind: LintKind::UnprotectedDataChannel,
                message: format!(
                    "channel `{}` carries {}-bit data words with no integrity \
                     protection — a corrupted word commits silently; consider \
                     the integrity-protected protocol variant (`--integrity`)",
                    c.name, c.data_bits
                ),
            });
        }
    }
    for (i, s) in system.signals.iter().enumerate() {
        let id = SignalId::new(i as u32);
        let driven = usage.signals_driven.contains(&id);
        let read = usage.signals_read.contains(&id);
        if read && !driven {
            lints.push(Lint {
                kind: LintKind::UndrivenSignal,
                message: format!("signal `{}` is read but never driven", s.name),
            });
        }
        if driven && !read {
            lints.push(Lint {
                kind: LintKind::UnreadSignal,
                message: format!("signal `{}` is driven but never read", s.name),
            });
        }
    }
    lints.extend(usage.constant_conditions.iter().map(|site| Lint {
        kind: LintKind::ConstantCondition,
        message: format!("{site} has a constant condition"),
    }));
    lints
}

#[derive(Default)]
struct Usage {
    vars_read: HashSet<VarId>,
    vars_written: HashSet<VarId>,
    signals_read: HashSet<SignalId>,
    signals_driven: HashSet<SignalId>,
    channels: HashSet<ChannelId>,
    constant_conditions: Vec<String>,
}

fn note_expr(expr: &Expr, usage: &mut Usage) {
    let mut vars = Vec::new();
    expr.collect_vars(&mut vars);
    usage.vars_read.extend(vars);
    let mut signals = Vec::new();
    expr.collect_signals(&mut signals);
    usage.signals_read.extend(signals);
}

fn is_const(expr: &Expr) -> bool {
    matches!(expr, Expr::Const(_))
}

/// Index expressions inside a write target are *reads* (writing
/// `MEM[AR + i]` reads `AR` and `i`), even though the root is written.
fn note_place_index_reads(place: &crate::expr::Place, usage: &mut Usage) {
    use crate::expr::Place;
    match place {
        Place::Var(_) | Place::Local(_) => {}
        Place::Index { base, index } => {
            note_place_index_reads(base, usage);
            note_expr(index, usage);
        }
        Place::Slice { base, .. } => note_place_index_reads(base, usage),
        Place::DynSlice { base, offset, .. } => {
            note_place_index_reads(base, usage);
            note_expr(offset, usage);
        }
    }
}

fn collect_usage(system: &System, body: &[Stmt], usage: &mut Usage) {
    for_each_stmt(body, &mut |stmt| match stmt {
        Stmt::Assign { place, value, .. } => {
            if let Some(v) = place.root_var() {
                usage.vars_written.insert(v);
            }
            note_place_index_reads(place, usage);
            note_expr(value, usage);
        }
        Stmt::SignalAssign { signal, value, .. } => {
            usage.signals_driven.insert(*signal);
            note_expr(value, usage);
        }
        Stmt::If { cond, .. } => {
            if is_const(cond) {
                usage.constant_conditions.push("an `if`".to_string());
            }
            note_expr(cond, usage);
        }
        Stmt::While { cond, .. } => {
            if is_const(cond) {
                usage.constant_conditions.push("a `while`".to_string());
            }
            note_expr(cond, usage);
        }
        Stmt::For { var, from, to, .. } => {
            if let Some(v) = var.root_var() {
                usage.vars_written.insert(v);
                // Reading the counter is implicit in the loop machinery.
                usage.vars_read.insert(v);
            }
            note_expr(from, usage);
            note_expr(to, usage);
        }
        Stmt::Wait(WaitCond::Until(e)) | Stmt::Wait(WaitCond::UntilTimeout { cond: e, .. }) => {
            note_expr(e, usage)
        }
        Stmt::Wait(WaitCond::OnSignals(signals)) => {
            usage.signals_read.extend(signals.iter().copied());
        }
        Stmt::Wait(WaitCond::ForCycles(_)) => {}
        Stmt::Call { args, .. } => {
            for arg in args {
                match arg {
                    crate::procedure::Arg::In(e) => note_expr(e, usage),
                    crate::procedure::Arg::Out(p) | crate::procedure::Arg::InOut(p) => {
                        if let Some(v) = p.root_var() {
                            usage.vars_written.insert(v);
                        }
                        note_place_index_reads(p, usage);
                    }
                }
            }
        }
        Stmt::ChannelSend {
            channel,
            addr,
            data,
        } => {
            usage.channels.insert(*channel);
            usage.vars_written.insert(system.channel(*channel).variable);
            if let Some(a) = addr {
                note_expr(a, usage);
            }
            note_expr(data, usage);
        }
        Stmt::ChannelReceive {
            channel,
            addr,
            target,
        } => {
            usage.channels.insert(*channel);
            usage.vars_read.insert(system.channel(*channel).variable);
            if let Some(a) = addr {
                note_expr(a, usage);
            }
            if let Some(v) = target.root_var() {
                usage.vars_written.insert(v);
            }
            note_place_index_reads(target, usage);
        }
        Stmt::Assert { cond, .. } => note_expr(cond, usage),
        Stmt::Compute { .. } | Stmt::Return => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelDirection};
    use crate::dsl::*;
    use crate::types::Ty;

    fn kinds(lints: &[Lint]) -> Vec<LintKind> {
        lints.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_system_has_no_lints() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let x = sys.add_variable("x", Ty::Int(16), b);
        let y = sys.add_variable("y", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![
            assign(var(x), int_const(1, 16)),
            assign(var(y), load(var(x))),
            Stmt::assert(eq(load(var(y)), int_const(1, 16)), "y"),
        ];
        assert!(lint_system(&sys).is_empty(), "{:?}", lint_system(&sys));
    }

    #[test]
    fn flags_unused_and_write_only_variables() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let _unused = sys.add_variable("unused", Ty::Int(16), b);
        let wo = sys.add_variable("wo", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![assign(var(wo), int_const(1, 16))];
        let lints = lint_system(&sys);
        assert!(kinds(&lints).contains(&LintKind::UnusedVariable));
        assert!(kinds(&lints).contains(&LintKind::WriteOnlyVariable));
    }

    #[test]
    fn flags_unused_and_local_channels() {
        let mut sys = System::new("t");
        let m1 = sys.add_module("m1");
        let b = sys.add_behavior("P", m1);
        let v = sys.add_variable("V", Ty::Bits(8), b);
        sys.add_channel(Channel {
            name: "dead".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 8,
            addr_bits: 0,
            accesses: 0,
        });
        let lints = lint_system(&sys);
        assert!(kinds(&lints).contains(&LintKind::UnusedChannel));
        assert!(kinds(&lints).contains(&LintKind::LocalChannel));
    }

    #[test]
    fn flags_half_connected_signals() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let ghost = sys.add_signal("ghost", Ty::Bit);
        let shout = sys.add_signal("shout", Ty::Bit);
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![
            wait_until(eq(signal(ghost), bit_const(true))),
            drive(shout, bit_const(true)),
        ];
        let lints = lint_system(&sys);
        assert!(kinds(&lints).contains(&LintKind::UndrivenSignal));
        assert!(kinds(&lints).contains(&LintKind::UnreadSignal));
    }

    #[test]
    fn flags_constant_conditions() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        sys.behavior_mut(b).body = vec![if_then(bit_const(true), vec![Stmt::compute(1, "w")])];
        let lints = lint_system(&sys);
        assert_eq!(kinds(&lints), vec![LintKind::ConstantCondition]);
    }

    #[test]
    fn channel_endpoints_count_as_use() {
        // A variable only touched via channel traffic is not "unused".
        let mut sys = System::new("t");
        let m1 = sys.add_module("m1");
        let m2 = sys.add_module("m2");
        let store = sys.add_behavior("store", m2);
        let v = sys.add_variable("V", Ty::Bits(8), store);
        let b = sys.add_behavior("P", m1);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 8,
            addr_bits: 0,
            accesses: 1,
        });
        sys.behavior_mut(b).body = vec![send(ch, int_const(1, 8))];
        let lints = lint_system(&sys);
        assert!(
            !kinds(&lints).contains(&LintKind::UnusedVariable),
            "{lints:?}"
        );
        assert!(
            !kinds(&lints).contains(&LintKind::UnusedChannel),
            "{lints:?}"
        );
        // The only finding is the robustness advisory: the data words
        // cross the module boundary with no integrity protection.
        assert_eq!(kinds(&lints), vec![LintKind::UnprotectedDataChannel]);
    }

    #[test]
    fn flags_unprotected_data_channels() {
        let mut sys = System::new("t");
        let m1 = sys.add_module("m1");
        let m2 = sys.add_module("m2");
        let store = sys.add_behavior("store", m2);
        let v = sys.add_variable("V", Ty::Bits(16), store);
        let b = sys.add_behavior("P", m1);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        sys.behavior_mut(b).body = vec![send(ch, int_const(1, 16))];
        let lints = lint_system(&sys);
        let finding = lints
            .iter()
            .find(|l| l.kind == LintKind::UnprotectedDataChannel)
            .expect("advisory fires for a used cross-module data channel");
        assert!(finding.message.contains("`ch`"), "{finding:?}");
        assert!(finding.message.contains("16-bit"), "{finding:?}");
        assert_eq!(
            finding.to_string().split_whitespace().next(),
            Some("[unprotected-data-channel]")
        );
    }

    #[test]
    fn integrity_ack_wire_suppresses_unprotected_data_channel() {
        // A refined system with an acknowledged `<bus>_ERR` NACK wire
        // (integrity-protected protocol) must not be flagged.
        let mut sys = System::new("t");
        let m1 = sys.add_module("m1");
        let m2 = sys.add_module("m2");
        let store = sys.add_behavior("store", m2);
        let v = sys.add_variable("V", Ty::Bits(16), store);
        let b = sys.add_behavior("P", m1);
        let ch = sys.add_channel(Channel {
            name: "ch".into(),
            accessor: b,
            variable: v,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 0,
            accesses: 1,
        });
        let err = sys.add_signal("B_ERR", Ty::Bit);
        sys.behavior_mut(store).body = vec![drive(err, bit_const(true))];
        sys.behavior_mut(b).body = vec![
            send(ch, int_const(1, 16)),
            wait_until(eq(signal(err), bit_const(true))),
        ];
        let lints = lint_system(&sys);
        assert!(
            !kinds(&lints).contains(&LintKind::UnprotectedDataChannel),
            "{lints:?}"
        );
    }

    #[test]
    fn index_expressions_in_write_targets_count_as_reads() {
        // Regression: `MEM[AR + i] := v` reads AR — it must not be
        // flagged unused.
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let mem = sys.add_variable("MEM", Ty::array(Ty::Int(16), 8), b);
        let ar = sys.add_variable("AR", Ty::Int(16), b);
        sys.behavior_mut(b).body = vec![
            assign(var(ar), int_const(3, 16)),
            assign(index(var(mem), load(var(ar))), int_const(9, 16)),
            Stmt::assert(
                eq(load(index(var(mem), int_const(3, 16))), int_const(9, 16)),
                "stored",
            ),
        ];
        let lints = lint_system(&sys);
        assert!(
            !kinds(&lints).contains(&LintKind::UnusedVariable),
            "{lints:?}"
        );
        assert!(
            !kinds(&lints).contains(&LintKind::WriteOnlyVariable),
            "{lints:?}"
        );
    }

    #[test]
    fn display_includes_code() {
        let l = Lint {
            kind: LintKind::UnusedChannel,
            message: "channel `x`".into(),
        };
        assert_eq!(l.to_string(), "[unused-channel] channel `x`");
    }
}

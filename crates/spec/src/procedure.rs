//! Procedures: named, parameterised statement sequences.

use crate::expr::{Expr, Place};
use crate::stmt::Stmt;
use crate::types::Ty;

/// Parameter passing mode, as in VHDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamMode {
    /// Read-only: the actual is evaluated at the call and copied in.
    In,
    /// Write-only: the formal is copied back to the actual on return.
    Out,
    /// Read-write: copied in at the call and back on return.
    InOut,
}

/// A formal parameter of a [`Procedure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (for printing).
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
    /// Passing mode.
    pub mode: ParamMode,
}

/// An actual argument at a call site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Arg {
    /// Value for an `in` parameter.
    In(Expr),
    /// Destination for an `out` parameter.
    Out(Place),
    /// Source and destination for an `inout` parameter.
    InOut(Place),
}

impl Arg {
    /// Returns `true` when the argument matches the given mode.
    pub fn matches(&self, mode: ParamMode) -> bool {
        matches!(
            (self, mode),
            (Arg::In(_), ParamMode::In)
                | (Arg::Out(_), ParamMode::Out)
                | (Arg::InOut(_), ParamMode::InOut)
        )
    }
}

/// A local variable of a procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDecl {
    /// Local name (for printing).
    pub name: String,
    /// Local type.
    pub ty: Ty,
}

/// A procedure: the unit in which protocol generation encapsulates the
/// send/receive behavior of each channel (paper Fig. 4, `SendCH0`,
/// `ReceiveCH0`).
///
/// Procedure storage slots are numbered parameters-first: parameter `i` is
/// [`Place::Local`]`(i)`, local `j` is `Place::Local(params.len() + j)`.
///
/// [`Place::Local`]: crate::Place::Local
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name (unique within the system).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Local variables.
    pub locals: Vec<LocalDecl>,
    /// Statement body.
    pub body: Vec<Stmt>,
}

impl Procedure {
    /// Creates an empty procedure with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a parameter, returning its local slot index.
    pub fn add_param(&mut self, name: impl Into<String>, ty: Ty, mode: ParamMode) -> usize {
        self.params.push(Param {
            name: name.into(),
            ty,
            mode,
        });
        self.params.len() - 1
    }

    /// Adds a local variable, returning its local slot index.
    pub fn add_local(&mut self, name: impl Into<String>, ty: Ty) -> usize {
        self.locals.push(LocalDecl {
            name: name.into(),
            ty,
        });
        self.params.len() + self.locals.len() - 1
    }

    /// Total number of storage slots (parameters plus locals).
    pub fn slot_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// Returns the type of storage slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slot_count()`.
    pub fn slot_ty(&self, slot: usize) -> &Ty {
        if slot < self.params.len() {
            &self.params[slot].ty
        } else {
            &self.locals[slot - self.params.len()].ty
        }
    }

    /// Returns the name of storage slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slot_count()`.
    pub fn slot_name(&self, slot: usize) -> &str {
        if slot < self.params.len() {
            &self.params[slot].name
        } else {
            &self.locals[slot - self.params.len()].name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_params_then_locals() {
        let mut p = Procedure::new("SendCH0");
        let a = p.add_param("txdata", Ty::Bits(16), ParamMode::In);
        let b = p.add_local("word", Ty::Bits(8));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.slot_name(0), "txdata");
        assert_eq!(p.slot_name(1), "word");
        assert_eq!(*p.slot_ty(1), Ty::Bits(8));
    }

    #[test]
    fn arg_mode_matching() {
        assert!(Arg::In(Expr::Const(crate::Value::Bit(true))).matches(ParamMode::In));
        assert!(!Arg::In(Expr::Const(crate::Value::Bit(true))).matches(ParamMode::Out));
        assert!(Arg::Out(Place::Local(0)).matches(ParamMode::Out));
        assert!(Arg::InOut(Place::Local(0)).matches(ParamMode::InOut));
    }
}

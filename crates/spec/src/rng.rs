//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The build environment is offline, so the workspace cannot depend on
//! external crates like `rand` or `proptest`. Randomized (property-style)
//! tests across the workspace instead draw from this seedable
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator: fast,
//! statistically solid for test-case generation, and — crucially —
//! reproducible, since every test names its seed.

/// A seedable SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use ifsyn_spec::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction; bias is negligible for the
        // small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform `u32` in the inclusive range `lo..=hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Returns a uniform `i64` in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo.wrapping_add(self.below((hi as u64).wrapping_sub(lo as u64).wrapping_add(1)) as i64)
    }

    /// Returns a uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn ranges_are_inclusive() {
        let mut r = SplitMix64::new(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.range_u32(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..100 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}

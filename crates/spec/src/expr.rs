//! Expressions and assignable places.

use std::fmt;

use crate::ids::{SignalId, VarId};
use crate::value::Value;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Division by zero yields zero, matching
    /// common RTL synthesis semantics for degenerate cases.
    Div,
    /// Remainder.
    Rem,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical / bitwise and.
    And,
    /// Logical / bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bit-vector concatenation (`lhs` takes the low positions).
    Concat,
    /// Minimum of two integers.
    Min,
    /// Maximum of two integers.
    Max,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Concat => "&",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical / bitwise not.
    Not,
    /// Integer negation.
    Neg,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Not => f.write_str("not"),
            UnaryOp::Neg => f.write_str("-"),
        }
    }
}

/// A storage location that can be read or assigned.
///
/// `Place` distinguishes behavior variables ([`Place::Var`]) from procedure
/// parameters / locals ([`Place::Local`]); both can be refined by indexing
/// and constant-bound slicing, mirroring VHDL targets like
/// `rxdata(8*J-1 downto 8*(J-1))` after loop unrolling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// A variable declared in a behavior (or shared across a module).
    Var(VarId),
    /// A procedure parameter or local, by slot index (parameters first).
    Local(usize),
    /// An element of an array place.
    Index {
        /// The array being indexed.
        base: Box<Place>,
        /// Element index expression.
        index: Box<Expr>,
    },
    /// A constant-bound bit slice of a place (`hi downto lo`).
    Slice {
        /// The bit-vector being sliced.
        base: Box<Place>,
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
    },
    /// A fixed-width slice at a *runtime* offset:
    /// `base(offset + width - 1 downto offset)` — the form the paper's
    /// Fig. 4 word loops use (`txdata(8*J-1 downto 8*(J-1))`).
    DynSlice {
        /// The bit-vector being sliced.
        base: Box<Place>,
        /// Low bit index, evaluated at runtime.
        offset: Box<Expr>,
        /// Slice width in bits (static).
        width: u32,
    },
}

impl Place {
    /// Returns the root storage of this place (stripping indices/slices).
    pub fn root(&self) -> &Place {
        match self {
            Place::Index { base, .. }
            | Place::Slice { base, .. }
            | Place::DynSlice { base, .. } => base.root(),
            other => other,
        }
    }

    /// Returns the root variable id if the root storage is a variable.
    pub fn root_var(&self) -> Option<VarId> {
        match self.root() {
            Place::Var(v) => Some(*v),
            _ => None,
        }
    }
}

/// An expression of the specification language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// Read of a storage place (variable, local, element or slice).
    Load(Place),
    /// Read of the current value of a signal.
    Signal(SignalId),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Constant-bound bit slice of an expression (`hi downto lo`).
    SliceOf {
        /// Operand.
        base: Box<Expr>,
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
    },
    /// Zero-extend / truncate an expression to a bit-vector of fixed width.
    Resize {
        /// Operand.
        base: Box<Expr>,
        /// Target width in bits.
        width: u32,
    },
    /// A fixed-width slice of an expression at a runtime offset.
    DynSliceOf {
        /// Operand.
        base: Box<Expr>,
        /// Low bit index, evaluated at runtime.
        offset: Box<Expr>,
        /// Slice width in bits (static).
        width: u32,
    },
}

impl Expr {
    /// Collects every signal this expression reads into `out`.
    ///
    /// Used to infer the implicit sensitivity list of `wait until`.
    pub fn collect_signals(&self, out: &mut Vec<SignalId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Load(place) => collect_place_signals(place, out),
            Expr::Signal(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Expr::Unary { arg, .. } => arg.collect_signals(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_signals(out);
                rhs.collect_signals(out);
            }
            Expr::SliceOf { base, .. } | Expr::Resize { base, .. } => base.collect_signals(out),
            Expr::DynSliceOf { base, offset, .. } => {
                base.collect_signals(out);
                offset.collect_signals(out);
            }
        }
    }

    /// Collects every variable this expression reads into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) | Expr::Signal(_) => {}
            Expr::Load(place) => collect_place_vars(place, out),
            Expr::Unary { arg, .. } => arg.collect_vars(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::SliceOf { base, .. } | Expr::Resize { base, .. } => base.collect_vars(out),
            Expr::DynSliceOf { base, offset, .. } => {
                base.collect_vars(out);
                offset.collect_vars(out);
            }
        }
    }
}

fn collect_place_signals(place: &Place, out: &mut Vec<SignalId>) {
    match place {
        Place::Index { base, index } => {
            collect_place_signals(base, out);
            index.collect_signals(out);
        }
        Place::Slice { base, .. } => collect_place_signals(base, out),
        Place::DynSlice { base, offset, .. } => {
            collect_place_signals(base, out);
            offset.collect_signals(out);
        }
        Place::Var(_) | Place::Local(_) => {}
    }
}

fn collect_place_vars(place: &Place, out: &mut Vec<VarId>) {
    match place {
        Place::Var(v) => {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        Place::Local(_) => {}
        Place::Index { base, index } => {
            collect_place_vars(base, out);
            index.collect_vars(out);
        }
        Place::Slice { base, .. } => collect_place_vars(base, out),
        Place::DynSlice { base, offset, .. } => {
            collect_place_vars(base, out);
            offset.collect_vars(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sig(i: u32) -> Expr {
        Expr::Signal(SignalId::new(i))
    }

    #[test]
    fn collect_signals_dedups() {
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(sig(1)),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(sig(1)),
                rhs: Box::new(sig(2)),
            }),
        };
        let mut out = Vec::new();
        e.collect_signals(&mut out);
        assert_eq!(out, vec![SignalId::new(1), SignalId::new(2)]);
    }

    #[test]
    fn collect_vars_sees_through_index() {
        let place = Place::Index {
            base: Box::new(Place::Var(VarId::new(0))),
            index: Box::new(Expr::Load(Place::Var(VarId::new(1)))),
        };
        let mut out = Vec::new();
        Expr::Load(place).collect_vars(&mut out);
        assert_eq!(out, vec![VarId::new(0), VarId::new(1)]);
    }

    #[test]
    fn place_root_strips_projections() {
        let p = Place::Slice {
            base: Box::new(Place::Index {
                base: Box::new(Place::Var(VarId::new(4))),
                index: Box::new(Expr::Const(Value::int(0, 8))),
            }),
            hi: 7,
            lo: 0,
        };
        assert_eq!(p.root_var(), Some(VarId::new(4)));
        let l = Place::Local(2);
        assert_eq!(l.root_var(), None);
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Ne.to_string(), "/=");
        assert_eq!(BinOp::Concat.to_string(), "&");
        assert_eq!(UnaryOp::Not.to_string(), "not");
    }
}

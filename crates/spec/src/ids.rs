//! Strongly typed indices into [`crate::System`] tables.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw table index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw table index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a variable in a [`crate::System`].
    VarId, "v"
);
id_type!(
    /// Identifies a signal (wire) in a [`crate::System`].
    SignalId, "s"
);
id_type!(
    /// Identifies a behavior (process) in a [`crate::System`].
    BehaviorId, "b"
);
id_type!(
    /// Identifies a procedure in a [`crate::System`].
    ProcId, "p"
);
id_type!(
    /// Identifies an abstract communication channel in a [`crate::System`].
    ChannelId, "ch"
);
id_type!(
    /// Identifies a system module (chip / memory) produced by partitioning.
    ModuleId, "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        let v = VarId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(VarId::new(3).to_string(), "v3");
        assert_eq!(SignalId::new(0).to_string(), "s0");
        assert_eq!(BehaviorId::new(1).to_string(), "b1");
        assert_eq!(ProcId::new(2).to_string(), "p2");
        assert_eq!(ChannelId::new(4).to_string(), "ch4");
        assert_eq!(ModuleId::new(5).to_string(), "m5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ChannelId::new(1) < ChannelId::new(2));
        assert_eq!(VarId::new(9), VarId::new(9));
    }
}

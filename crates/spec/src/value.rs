//! Runtime values: bits, bit-vectors, integers and arrays.

use std::fmt;

use crate::error::SpecError;
use crate::types::Ty;

/// A fixed-width vector of bits, stored least-significant-bit first.
///
/// `BitVec` is the payload type moved over buses: messages are concatenated
/// into one `BitVec` and sliced into bus words by the generated protocol
/// procedures.
///
/// # Example
///
/// ```
/// use ifsyn_spec::BitVec;
///
/// let v = BitVec::from_u64(0b1010, 4);
/// assert_eq!(v.width(), 4);
/// assert_eq!(v.to_u64(), 0b1010);
/// assert_eq!(v.to_string(), "1010");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    /// Bits, index 0 is the least significant bit.
    bits: Vec<bool>,
}

impl BitVec {
    /// Creates an all-zero vector of `width` bits.
    pub fn zeros(width: u32) -> Self {
        Self {
            bits: vec![false; width as usize],
        }
    }

    /// Creates a vector from the low `width` bits of `value`.
    ///
    /// Bits of `value` above `width` are discarded.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let bits = (0..width.min(64))
            .map(|i| (value >> i) & 1 == 1)
            .chain(std::iter::repeat_n(false, width.saturating_sub(64) as usize))
            .collect();
        Self { bits }
    }

    /// Creates a vector from bits given least-significant first.
    pub fn from_bits_lsb_first<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        Self {
            bits: bits.into_iter().collect(),
        }
    }

    /// Returns the number of bits.
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Returns `true` if the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit(&self, index: u32) -> bool {
        self.bits[index as usize]
    }

    /// Sets bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        self.bits[index as usize] = value;
    }

    /// Interprets the low 64 bits as an unsigned integer.
    ///
    /// Bits beyond the 64th are ignored; use [`BitVec::width`] to detect
    /// wide vectors first if exactness matters.
    pub fn to_u64(&self) -> u64 {
        self.bits
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    /// Returns bits `lo..=hi` as a new vector (`hi downto lo` in VHDL terms).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(
            hi < self.width(),
            "slice hi ({hi}) out of range for width {}",
            self.width()
        );
        Self {
            bits: self.bits[lo as usize..=hi as usize].to_vec(),
        }
    }

    /// Overwrites bits `lo..=hi` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `value.width()` does not
    /// equal `hi - lo + 1`.
    pub fn write_slice(&mut self, hi: u32, lo: u32, value: &BitVec) {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(hi < self.width(), "slice out of range");
        assert_eq!(value.width(), hi - lo + 1, "slice width mismatch");
        for i in 0..value.width() {
            self.bits[(lo + i) as usize] = value.bit(i);
        }
    }

    /// Concatenates `high` above `self`: result = `high & self` in VHDL
    /// terms (`self` keeps the low bit positions).
    pub fn concat(&self, high: &BitVec) -> Self {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Self { bits }
    }

    /// Returns a copy zero-extended or truncated to `width` bits.
    pub fn resized(&self, width: u32) -> Self {
        let mut bits = self.bits.clone();
        bits.resize(width as usize, false);
        Self { bits }
    }

    /// Iterates over bits, least significant first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }
}

impl fmt::Display for BitVec {
    /// Formats most-significant bit first, VHDL literal style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "\"\"");
        }
        for &b in self.bits.iter().rev() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut nibbles = Vec::new();
        let mut i = 0;
        while i < self.bits.len() {
            let mut n = 0u8;
            for j in 0..4 {
                if i + j < self.bits.len() && self.bits[i + j] {
                    n |= 1 << j;
                }
            }
            nibbles.push(n);
            i += 4;
        }
        for n in nibbles.iter().rev() {
            write!(f, "{n:x}")?;
        }
        Ok(())
    }
}

impl From<bool> for BitVec {
    fn from(b: bool) -> Self {
        Self { bits: vec![b] }
    }
}

/// A runtime value in the specification language.
///
/// Values are what the simulator stores in variables and drives onto
/// signals, and what [`crate::Expr::Const`] embeds in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A single bit.
    Bit(bool),
    /// A fixed-width bit vector.
    Bits(BitVec),
    /// A bounded integer carrying its declared bit width.
    Int {
        /// The integer value.
        value: i64,
        /// Declared width in bits (used when packing into messages).
        width: u32,
    },
    /// A homogeneous array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Creates an integer value of the given width.
    pub fn int(value: i64, width: u32) -> Self {
        Value::Int { value, width }
    }

    /// Returns the default (all-zero) value of type `ty`.
    pub fn default_of(ty: &Ty) -> Self {
        match ty {
            Ty::Bit => Value::Bit(false),
            Ty::Bits(w) => Value::Bits(BitVec::zeros(*w)),
            Ty::Int(w) => Value::Int { value: 0, width: *w },
            Ty::Array { elem, len } => {
                Value::Array(vec![Value::default_of(elem); *len as usize])
            }
        }
    }

    /// Returns the type of this value.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Bit(_) => Ty::Bit,
            Value::Bits(v) => Ty::Bits(v.width()),
            Value::Int { width, .. } => Ty::Int(*width),
            Value::Array(items) => {
                let elem = items.first().map(Value::ty).unwrap_or(Ty::Bit);
                Ty::Array {
                    elem: Box::new(elem),
                    len: items.len() as u32,
                }
            }
        }
    }

    /// Interprets the value as an unsigned integer where meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_u64(&self) -> Result<u64, SpecError> {
        match self {
            Value::Bit(b) => Ok(*b as u64),
            Value::Bits(v) => Ok(v.to_u64()),
            Value::Int { value, .. } => Ok(*value as u64),
            Value::Array(_) => Err(SpecError::TypeMismatch {
                context: "array used as scalar".to_string(),
            }),
        }
    }

    /// Interprets the value as a signed integer where meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_i64(&self) -> Result<i64, SpecError> {
        match self {
            Value::Bit(b) => Ok(*b as i64),
            Value::Bits(v) => Ok(v.to_u64() as i64),
            Value::Int { value, .. } => Ok(*value),
            Value::Array(_) => Err(SpecError::TypeMismatch {
                context: "array used as scalar".to_string(),
            }),
        }
    }

    /// Interprets the value as a single bit.
    ///
    /// Nonzero integers and bit-vectors count as `true`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_bool(&self) -> Result<bool, SpecError> {
        Ok(self.as_u64()? != 0)
    }

    /// Packs the value into a [`BitVec`] of its natural width.
    ///
    /// Integers pack as two's complement of their declared width; arrays
    /// pack element 0 in the lowest positions.
    ///
    /// # Example
    ///
    /// ```
    /// use ifsyn_spec::Value;
    ///
    /// let v = Value::int(5, 4);
    /// assert_eq!(v.to_bits().to_string(), "0101");
    /// ```
    pub fn to_bits(&self) -> BitVec {
        match self {
            Value::Bit(b) => BitVec::from(*b),
            Value::Bits(v) => v.clone(),
            Value::Int { value, width } => BitVec::from_u64(*value as u64, *width),
            Value::Array(items) => {
                let mut acc = BitVec::zeros(0);
                for item in items {
                    acc = acc.concat(&item.to_bits());
                }
                acc
            }
        }
    }

    /// Reconstructs a value of type `ty` from packed bits.
    ///
    /// Inverse of [`Value::to_bits`] for scalar and array types.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is narrower than `ty.bit_width()`.
    pub fn from_bits(ty: &Ty, bits: &BitVec) -> Self {
        match ty {
            Ty::Bit => Value::Bit(!bits.is_empty() && bits.bit(0)),
            Ty::Bits(w) => Value::Bits(bits.resized(*w)),
            Ty::Int(w) => {
                let raw = bits.resized(*w).to_u64();
                // Sign-extend from declared width.
                let value = if *w > 0 && *w < 64 && (raw >> (*w - 1)) & 1 == 1 {
                    (raw | !((1u64 << *w) - 1)) as i64
                } else {
                    raw as i64
                };
                Value::Int { value, width: *w }
            }
            Ty::Array { elem, len } => {
                let ew = elem.bit_width();
                let items = (0..*len)
                    .map(|i| {
                        let lo = i * ew;
                        let hi = lo + ew - 1;
                        Value::from_bits(elem, &bits.slice(hi, lo))
                    })
                    .collect();
                Value::Array(items)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bit(b) => write!(f, "'{}'", if *b { '1' } else { '0' }),
            Value::Bits(v) => write!(f, "\"{v}\""),
            Value::Int { value, .. } => write!(f, "{value}"),
            Value::Array(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

impl From<BitVec> for Value {
    fn from(v: BitVec) -> Self {
        Value::Bits(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_from_to_u64_roundtrip() {
        for v in [0u64, 1, 2, 0xff, 0xdead, u64::MAX] {
            assert_eq!(BitVec::from_u64(v, 64).to_u64(), v);
        }
    }

    #[test]
    fn bitvec_truncates_above_width() {
        assert_eq!(BitVec::from_u64(0xff, 4).to_u64(), 0xf);
    }

    #[test]
    fn bitvec_slice_matches_vhdl_downto() {
        // "11010" (msb first) = bit4..bit0 = 1,1,0,1,0.
        let v = BitVec::from_u64(0b11010, 5);
        assert_eq!(v.slice(4, 3).to_string(), "11");
        assert_eq!(v.slice(2, 0).to_string(), "010");
    }

    #[test]
    fn bitvec_write_slice() {
        let mut v = BitVec::zeros(8);
        v.write_slice(7, 4, &BitVec::from_u64(0b1010, 4));
        assert_eq!(v.to_u64(), 0b1010_0000);
    }

    #[test]
    fn bitvec_concat_places_first_operand_low() {
        let low = BitVec::from_u64(0b01, 2);
        let high = BitVec::from_u64(0b11, 2);
        assert_eq!(low.concat(&high).to_u64(), 0b1101);
    }

    #[test]
    fn bitvec_resized_extends_and_truncates() {
        let v = BitVec::from_u64(0b101, 3);
        assert_eq!(v.resized(5).to_u64(), 0b101);
        assert_eq!(v.resized(2).to_u64(), 0b01);
    }

    #[test]
    fn bitvec_hex_format() {
        let v = BitVec::from_u64(0xa5, 8);
        assert_eq!(format!("{v:x}"), "a5");
    }

    #[test]
    fn bitvec_display_wide() {
        let v = BitVec::from_u64(1, 70);
        assert_eq!(v.width(), 70);
        assert!(v.to_string().ends_with('1'));
        assert_eq!(v.to_u64(), 1);
    }

    #[test]
    fn value_default_of_matches_type() {
        let ty = Ty::Array {
            elem: Box::new(Ty::Bits(8)),
            len: 3,
        };
        let v = Value::default_of(&ty);
        assert_eq!(v.ty(), ty);
    }

    #[test]
    fn value_int_bits_roundtrip_signed() {
        let v = Value::int(-3, 16);
        let bits = v.to_bits();
        assert_eq!(bits.width(), 16);
        assert_eq!(Value::from_bits(&Ty::Int(16), &bits), v);
    }

    #[test]
    fn value_array_bits_roundtrip() {
        let ty = Ty::Array {
            elem: Box::new(Ty::Int(8)),
            len: 4,
        };
        let v = Value::Array(vec![
            Value::int(1, 8),
            Value::int(-1, 8),
            Value::int(64, 8),
            Value::int(0, 8),
        ]);
        let bits = v.to_bits();
        assert_eq!(bits.width(), 32);
        assert_eq!(Value::from_bits(&ty, &bits), v);
    }

    #[test]
    fn value_as_bool_and_ints() {
        assert!(Value::Bit(true).as_bool().unwrap());
        assert!(!Value::int(0, 8).as_bool().unwrap());
        assert_eq!(Value::int(-5, 16).as_i64().unwrap(), -5);
        assert!(Value::Array(vec![]).as_u64().is_err());
    }

    #[test]
    fn value_display_forms() {
        assert_eq!(Value::Bit(true).to_string(), "'1'");
        assert_eq!(Value::int(42, 8).to_string(), "42");
        assert_eq!(
            Value::Bits(BitVec::from_u64(0b10, 2)).to_string(),
            "\"10\""
        );
    }
}

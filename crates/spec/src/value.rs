//! Runtime values: bits, bit-vectors, integers and arrays.

use std::fmt;

use crate::error::SpecError;
use crate::types::Ty;

/// A fixed-width vector of bits, stored least-significant-bit first.
///
/// `BitVec` is the payload type moved over buses: messages are concatenated
/// into one `BitVec` and sliced into bus words by the generated protocol
/// procedures.
///
/// # Representation
///
/// Bits are packed into 64-bit limbs, least-significant limb first; the
/// logical width is tracked separately from the storage. Vectors of 64
/// bits or fewer live in a single inline limb (no heap allocation —
/// every bus word and every message under 65 bits stays on the stack);
/// wider vectors use a `Vec<u64>` with exactly `ceil(width / 64)` limbs.
///
/// Two invariants keep the representation canonical, so the derived
/// `PartialEq`/`Hash` compare logical values:
///
/// * storage kind is determined by width (`width <= 64` ⇔ inline);
/// * all storage bits at positions `>= width` are zero (the top limb is
///   masked after every operation).
///
/// # Example
///
/// ```
/// use ifsyn_spec::BitVec;
///
/// let v = BitVec::from_u64(0b1010, 4);
/// assert_eq!(v.width(), 4);
/// assert_eq!(v.to_u64(), 0b1010);
/// assert_eq!(v.to_string(), "1010");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    /// Logical width in bits; storage may round up to a limb boundary.
    width: u32,
    /// Packed limbs, index 0 holding bits 0..=63.
    limbs: Limbs,
}

/// Limb storage: one inline limb for `width <= 64`, heap limbs above.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Limbs {
    /// The single limb of a vector no wider than 64 bits.
    Inline(u64),
    /// `ceil(width / 64)` limbs of a wider vector.
    Heap(Vec<u64>),
}

/// Limbs needed to hold `width` bits.
const fn limb_count(width: u32) -> usize {
    width.div_ceil(64) as usize
}

/// Mask selecting the valid bits of a single-limb vector of `width` bits.
const fn low_mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Mask selecting the valid bits of the topmost limb of a `width`-bit
/// vector (all ones when the width is a limb multiple).
const fn top_mask(width: u32) -> u64 {
    let r = width % 64;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

impl BitVec {
    /// Builds the canonical vector for `width` from a limb producer.
    ///
    /// `get(i)` must return limb `i` of the (unmasked) source; the top
    /// limb is masked here.
    fn build(width: u32, get: impl Fn(usize) -> u64) -> Self {
        if width <= 64 {
            Self {
                width,
                limbs: Limbs::Inline(get(0) & low_mask(width)),
            }
        } else {
            let n = limb_count(width);
            let mut v: Vec<u64> = (0..n).map(get).collect();
            v[n - 1] &= top_mask(width);
            Self {
                width,
                limbs: Limbs::Heap(v),
            }
        }
    }

    /// Read-only view of the limb storage.
    ///
    /// Inline vectors expose a one-limb slice even at width 0; bits at
    /// positions `>= width` are guaranteed zero.
    fn words(&self) -> &[u64] {
        match &self.limbs {
            Limbs::Inline(w) => std::slice::from_ref(w),
            Limbs::Heap(v) => v,
        }
    }

    /// Mutable view of the limb storage; callers must re-establish the
    /// masked-top-limb invariant.
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.limbs {
            Limbs::Inline(w) => std::slice::from_mut(w),
            Limbs::Heap(v) => v,
        }
    }

    /// Extracts `width` bits starting at bit `lo` of `src`, reading
    /// zeros past the end of `src`.
    fn extract(src: &[u64], lo: u32, width: u32) -> Self {
        let lw = (lo / 64) as usize;
        let off = lo % 64;
        let get = |i: usize| src.get(i).copied().unwrap_or(0);
        Self::build(width, |i| {
            let mut w = get(lw + i) >> off;
            if off > 0 {
                w |= get(lw + i + 1) << (64 - off);
            }
            w
        })
    }

    /// Overwrites bits `offset..offset + src_width` of `dst` with the
    /// low `src_width` bits of `src` (whose top limb must be masked).
    fn write_bits(dst: &mut [u64], src: &[u64], src_width: u32, offset: u32) {
        let nw = limb_count(src_width);
        let off_word = (offset / 64) as usize;
        let off_bit = offset % 64;
        for i in 0..nw {
            let m = if i + 1 == nw {
                top_mask(src_width)
            } else {
                u64::MAX
            };
            let w = src[i];
            dst[off_word + i] = (dst[off_word + i] & !(m << off_bit)) | (w << off_bit);
            if off_bit > 0 {
                let mh = m >> (64 - off_bit);
                if mh != 0 {
                    let k = off_word + i + 1;
                    dst[k] = (dst[k] & !mh) | (w >> (64 - off_bit));
                }
            }
        }
    }

    /// Creates an all-zero vector of `width` bits.
    pub fn zeros(width: u32) -> Self {
        if width <= 64 {
            Self {
                width,
                limbs: Limbs::Inline(0),
            }
        } else {
            Self {
                width,
                limbs: Limbs::Heap(vec![0; limb_count(width)]),
            }
        }
    }

    /// Creates a vector from the low `width` bits of `value`.
    ///
    /// Bits of `value` above `width` are discarded.
    pub fn from_u64(value: u64, width: u32) -> Self {
        Self::build(width, |i| if i == 0 { value } else { 0 })
    }

    /// Creates a vector from bits given least-significant first.
    pub fn from_bits_lsb_first<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = vec![0u64];
        let mut n: u32 = 0;
        for b in bits {
            let i = (n / 64) as usize;
            if i == words.len() {
                words.push(0);
            }
            if b {
                words[i] |= 1 << (n % 64);
            }
            n += 1;
        }
        if n <= 64 {
            Self {
                width: n,
                limbs: Limbs::Inline(words[0]),
            }
        } else {
            Self {
                width: n,
                limbs: Limbs::Heap(words),
            }
        }
    }

    /// Returns the number of bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns `true` if the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Returns bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit(&self, index: u32) -> bool {
        assert!(
            index < self.width,
            "bit index {index} out of range for width {}",
            self.width
        );
        (self.words()[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        assert!(
            index < self.width,
            "bit index {index} out of range for width {}",
            self.width
        );
        let word = &mut self.words_mut()[(index / 64) as usize];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Interprets the low 64 bits as an unsigned integer.
    ///
    /// Bits beyond the 64th are ignored; use [`BitVec::width`] to detect
    /// wide vectors first if exactness matters.
    pub fn to_u64(&self) -> u64 {
        self.words()[0]
    }

    /// Read-only view of the packed limbs, least-significant limb first.
    ///
    /// The slice has exactly `ceil(width / 64)` entries (empty at width
    /// 0) and bits at positions `>= width` in the top limb are zero.
    pub fn as_limbs(&self) -> &[u64] {
        &self.words()[..limb_count(self.width)]
    }

    /// Returns bits `lo..=hi` as a new vector (`hi downto lo` in VHDL terms).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(
            hi < self.width(),
            "slice hi ({hi}) out of range for width {}",
            self.width()
        );
        Self::extract(self.words(), lo, hi - lo + 1)
    }

    /// Overwrites bits `lo..=hi` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `value.width()` does not
    /// equal `hi - lo + 1`.
    pub fn write_slice(&mut self, hi: u32, lo: u32, value: &BitVec) {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(hi < self.width(), "slice out of range");
        assert_eq!(value.width(), hi - lo + 1, "slice width mismatch");
        Self::write_bits(self.words_mut(), value.words(), value.width, lo);
    }

    /// Concatenates `high` above `self`: result = `high & self` in VHDL
    /// terms (`self` keeps the low bit positions).
    pub fn concat(&self, high: &BitVec) -> Self {
        if high.width == 0 {
            return self.clone();
        }
        if self.width == 0 {
            return high.clone();
        }
        let width = self.width + high.width;
        if width <= 64 {
            // self.width <= 63 here since high is non-empty.
            return Self {
                width,
                limbs: Limbs::Inline(self.to_u64() | (high.to_u64() << self.width)),
            };
        }
        let mut v = vec![0u64; limb_count(width)];
        v[..limb_count(self.width)].copy_from_slice(self.as_limbs());
        Self::write_bits(&mut v, high.words(), high.width, self.width);
        Self {
            width,
            limbs: Limbs::Heap(v),
        }
    }

    /// Returns a copy zero-extended or truncated to `width` bits.
    pub fn resized(&self, width: u32) -> Self {
        if width == self.width {
            return self.clone();
        }
        Self::extract(self.words(), 0, width)
    }

    /// Iterates over bits, least significant first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        let words = self.words();
        (0..self.width).map(move |i| (words[(i / 64) as usize] >> (i % 64)) & 1 == 1)
    }

    /// Limb-wise binary operation, zero-extending the narrower operand
    /// to `max(widths)`.
    fn zip_words(&self, other: &BitVec, f: impl Fn(u64, u64) -> u64) -> Self {
        let a = self.words();
        let b = other.words();
        let get = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
        Self::build(self.width.max(other.width), |i| f(get(a, i), get(b, i)))
    }

    /// Bitwise AND; the narrower operand is zero-extended.
    pub fn and(&self, other: &BitVec) -> Self {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR; the narrower operand is zero-extended.
    pub fn or(&self, other: &BitVec) -> Self {
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise XOR; the narrower operand is zero-extended.
    pub fn xor(&self, other: &BitVec) -> Self {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise complement within the vector's own width.
    pub fn complement(&self) -> Self {
        let w = self.words();
        Self::build(self.width, |i| !w[i.min(w.len() - 1)])
    }

    /// Modular sum at `max(widths)` bits; the narrower operand is
    /// zero-extended and the carry out of the top bit is discarded.
    pub fn wrapping_add(&self, other: &BitVec) -> Self {
        let a = self.words();
        let b = other.words();
        let get = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
        let width = self.width.max(other.width);
        if width <= 64 {
            return Self {
                width,
                limbs: Limbs::Inline(get(a, 0).wrapping_add(get(b, 0)) & low_mask(width)),
            };
        }
        let n = limb_count(width);
        let mut v = vec![0u64; n];
        let mut carry = 0u64;
        for (i, out) in v.iter_mut().enumerate() {
            let (s1, c1) = get(a, i).overflowing_add(get(b, i));
            let (s2, c2) = s1.overflowing_add(carry);
            *out = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        v[n - 1] &= top_mask(width);
        Self {
            width,
            limbs: Limbs::Heap(v),
        }
    }

    /// Modular difference (`self - other`) at `max(widths)` bits; the
    /// narrower operand is zero-extended and the borrow out of the top
    /// bit is discarded (two's-complement wraparound).
    pub fn wrapping_sub(&self, other: &BitVec) -> Self {
        let a = self.words();
        let b = other.words();
        let get = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
        let width = self.width.max(other.width);
        if width <= 64 {
            return Self {
                width,
                limbs: Limbs::Inline(get(a, 0).wrapping_sub(get(b, 0)) & low_mask(width)),
            };
        }
        let n = limb_count(width);
        let mut v = vec![0u64; n];
        let mut borrow = 0u64;
        for (i, out) in v.iter_mut().enumerate() {
            let (d1, b1) = get(a, i).overflowing_sub(get(b, i));
            let (d2, b2) = d1.overflowing_sub(borrow);
            *out = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        v[n - 1] &= top_mask(width);
        Self {
            width,
            limbs: Limbs::Heap(v),
        }
    }

    /// Unsigned comparison of the numeric values, limb at a time from
    /// the top; widths may differ (the narrower operand zero-extends).
    pub fn cmp_unsigned(&self, other: &BitVec) -> std::cmp::Ordering {
        let a = self.as_limbs();
        let b = other.as_limbs();
        let get = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
        for i in (0..a.len().max(b.len())).rev() {
            match get(a, i).cmp(&get(b, i)) {
                std::cmp::Ordering::Equal => {}
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl Default for BitVec {
    fn default() -> Self {
        Self {
            width: 0,
            limbs: Limbs::Inline(0),
        }
    }
}

impl fmt::Display for BitVec {
    /// Formats most-significant bit first, VHDL literal style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "\"\"");
        }
        let words = self.words();
        for i in (0..self.width).rev() {
            let b = (words[(i / 64) as usize] >> (i % 64)) & 1 == 1;
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let words = self.words();
        for k in (0..self.width.div_ceil(4)).rev() {
            let lo = k * 4;
            let mut n = (words[(lo / 64) as usize] >> (lo % 64)) & 0xf;
            // A nibble straddling a limb boundary picks up its high bits
            // from the next limb; bits past the width read as zero.
            let straddle = 64 - lo % 64;
            if straddle < 4 {
                if let Some(&next) = words.get((lo / 64) as usize + 1) {
                    n |= (next << straddle) & 0xf;
                }
            }
            if lo + 4 > self.width {
                n &= low_mask(self.width - lo);
            }
            write!(f, "{n:x}")?;
        }
        Ok(())
    }
}

impl From<bool> for BitVec {
    fn from(b: bool) -> Self {
        Self {
            width: 1,
            limbs: Limbs::Inline(u64::from(b)),
        }
    }
}

/// A runtime value in the specification language.
///
/// Values are what the simulator stores in variables and drives onto
/// signals, and what [`crate::Expr::Const`] embeds in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A single bit.
    Bit(bool),
    /// A fixed-width bit vector.
    Bits(BitVec),
    /// A bounded integer carrying its declared bit width.
    Int {
        /// The integer value.
        value: i64,
        /// Declared width in bits (used when packing into messages).
        width: u32,
    },
    /// A homogeneous array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Creates an integer value of the given width.
    pub fn int(value: i64, width: u32) -> Self {
        Value::Int { value, width }
    }

    /// Returns the default (all-zero) value of type `ty`.
    pub fn default_of(ty: &Ty) -> Self {
        match ty {
            Ty::Bit => Value::Bit(false),
            Ty::Bits(w) => Value::Bits(BitVec::zeros(*w)),
            Ty::Int(w) => Value::Int {
                value: 0,
                width: *w,
            },
            Ty::Array { elem, len } => Value::Array(vec![Value::default_of(elem); *len as usize]),
        }
    }

    /// Returns the type of this value.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Bit(_) => Ty::Bit,
            Value::Bits(v) => Ty::Bits(v.width()),
            Value::Int { width, .. } => Ty::Int(*width),
            Value::Array(items) => {
                let elem = items.first().map(Value::ty).unwrap_or(Ty::Bit);
                Ty::Array {
                    elem: Box::new(elem),
                    len: items.len() as u32,
                }
            }
        }
    }

    /// Interprets the value as an unsigned integer where meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_u64(&self) -> Result<u64, SpecError> {
        match self {
            Value::Bit(b) => Ok(*b as u64),
            Value::Bits(v) => Ok(v.to_u64()),
            Value::Int { value, .. } => Ok(*value as u64),
            Value::Array(_) => Err(SpecError::TypeMismatch {
                context: "array used as scalar".to_string(),
            }),
        }
    }

    /// Interprets the value as a signed integer where meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_i64(&self) -> Result<i64, SpecError> {
        match self {
            Value::Bit(b) => Ok(*b as i64),
            Value::Bits(v) => Ok(v.to_u64() as i64),
            Value::Int { value, .. } => Ok(*value),
            Value::Array(_) => Err(SpecError::TypeMismatch {
                context: "array used as scalar".to_string(),
            }),
        }
    }

    /// Interprets the value as a single bit.
    ///
    /// Nonzero integers and bit-vectors count as `true`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::TypeMismatch`] for arrays.
    pub fn as_bool(&self) -> Result<bool, SpecError> {
        Ok(self.as_u64()? != 0)
    }

    /// Packs the value into a [`BitVec`] of its natural width.
    ///
    /// Integers pack as two's complement of their declared width; arrays
    /// pack element 0 in the lowest positions.
    ///
    /// # Example
    ///
    /// ```
    /// use ifsyn_spec::Value;
    ///
    /// let v = Value::int(5, 4);
    /// assert_eq!(v.to_bits().to_string(), "0101");
    /// ```
    pub fn to_bits(&self) -> BitVec {
        match self {
            Value::Bit(b) => BitVec::from(*b),
            Value::Bits(v) => v.clone(),
            Value::Int { value, width } => BitVec::from_u64(*value as u64, *width),
            Value::Array(items) => {
                let mut acc = BitVec::zeros(0);
                for item in items {
                    acc = acc.concat(&item.to_bits());
                }
                acc
            }
        }
    }

    /// Reconstructs a value of type `ty` from packed bits.
    ///
    /// Inverse of [`Value::to_bits`] for scalar and array types.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is narrower than `ty.bit_width()`.
    pub fn from_bits(ty: &Ty, bits: &BitVec) -> Self {
        match ty {
            Ty::Bit => Value::Bit(!bits.is_empty() && bits.bit(0)),
            Ty::Bits(w) => Value::Bits(bits.resized(*w)),
            Ty::Int(w) => {
                let raw = bits.resized(*w).to_u64();
                // Sign-extend from declared width.
                let value = if *w > 0 && *w < 64 && (raw >> (*w - 1)) & 1 == 1 {
                    (raw | !((1u64 << *w) - 1)) as i64
                } else {
                    raw as i64
                };
                Value::Int { value, width: *w }
            }
            Ty::Array { elem, len } => {
                let ew = elem.bit_width();
                let items = (0..*len)
                    .map(|i| {
                        let lo = i * ew;
                        let hi = lo + ew - 1;
                        Value::from_bits(elem, &bits.slice(hi, lo))
                    })
                    .collect();
                Value::Array(items)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bit(b) => write!(f, "'{}'", if *b { '1' } else { '0' }),
            Value::Bits(v) => write!(f, "\"{v}\""),
            Value::Int { value, .. } => write!(f, "{value}"),
            Value::Array(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

impl From<BitVec> for Value {
    fn from(v: BitVec) -> Self {
        Value::Bits(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_from_to_u64_roundtrip() {
        for v in [0u64, 1, 2, 0xff, 0xdead, u64::MAX] {
            assert_eq!(BitVec::from_u64(v, 64).to_u64(), v);
        }
    }

    #[test]
    fn bitvec_truncates_above_width() {
        assert_eq!(BitVec::from_u64(0xff, 4).to_u64(), 0xf);
    }

    #[test]
    fn bitvec_slice_matches_vhdl_downto() {
        // "11010" (msb first) = bit4..bit0 = 1,1,0,1,0.
        let v = BitVec::from_u64(0b11010, 5);
        assert_eq!(v.slice(4, 3).to_string(), "11");
        assert_eq!(v.slice(2, 0).to_string(), "010");
    }

    #[test]
    fn bitvec_write_slice() {
        let mut v = BitVec::zeros(8);
        v.write_slice(7, 4, &BitVec::from_u64(0b1010, 4));
        assert_eq!(v.to_u64(), 0b1010_0000);
    }

    #[test]
    fn bitvec_concat_places_first_operand_low() {
        let low = BitVec::from_u64(0b01, 2);
        let high = BitVec::from_u64(0b11, 2);
        assert_eq!(low.concat(&high).to_u64(), 0b1101);
    }

    #[test]
    fn bitvec_resized_extends_and_truncates() {
        let v = BitVec::from_u64(0b101, 3);
        assert_eq!(v.resized(5).to_u64(), 0b101);
        assert_eq!(v.resized(2).to_u64(), 0b01);
    }

    #[test]
    fn bitvec_hex_format() {
        let v = BitVec::from_u64(0xa5, 8);
        assert_eq!(format!("{v:x}"), "a5");
    }

    #[test]
    fn bitvec_display_wide() {
        let v = BitVec::from_u64(1, 70);
        assert_eq!(v.width(), 70);
        assert!(v.to_string().ends_with('1'));
        assert_eq!(v.to_u64(), 1);
    }

    #[test]
    fn bitvec_limbs_are_canonical() {
        assert_eq!(BitVec::zeros(0).as_limbs(), &[] as &[u64]);
        assert_eq!(BitVec::from_u64(5, 3).as_limbs(), &[5]);
        let wide = BitVec::from_u64(u64::MAX, 65);
        assert_eq!(wide.as_limbs(), &[u64::MAX, 0]);
        // Top limb stays masked after mutation at the boundary.
        let mut v = BitVec::zeros(65);
        v.set_bit(64, true);
        assert_eq!(v.as_limbs(), &[0, 1]);
    }

    #[test]
    fn bitvec_logic_ops_zero_extend() {
        let a = BitVec::from_u64(0b1100, 4);
        let b = BitVec::from_u64(0b10, 2);
        assert_eq!(a.and(&b).to_u64(), 0b0000);
        assert_eq!(a.or(&b).to_u64(), 0b1110);
        assert_eq!(a.xor(&b).to_u64(), 0b1110);
        assert_eq!(a.and(&b).width(), 4);
        assert_eq!(a.complement().to_u64(), 0b0011);
    }

    #[test]
    fn bitvec_add_sub_wrap_at_width() {
        let a = BitVec::from_u64(0b111, 3);
        let b = BitVec::from_u64(0b001, 3);
        assert_eq!(a.wrapping_add(&b).to_u64(), 0);
        assert_eq!(b.wrapping_sub(&a).to_u64(), 0b010);
        // Carry propagates across the limb boundary.
        let lo = BitVec::from_u64(u64::MAX, 65);
        let one = BitVec::from_u64(1, 65);
        assert_eq!(lo.wrapping_add(&one).as_limbs(), &[0, 1]);
        assert_eq!(
            BitVec::zeros(65).wrapping_sub(&one).as_limbs(),
            &[u64::MAX, 1]
        );
    }

    #[test]
    fn bitvec_cmp_unsigned_across_widths() {
        use std::cmp::Ordering;
        let small = BitVec::from_u64(7, 8);
        let wide = BitVec::from_u64(7, 128);
        assert_eq!(small.cmp_unsigned(&wide), Ordering::Equal);
        let mut big = BitVec::zeros(128);
        big.set_bit(100, true);
        assert_eq!(small.cmp_unsigned(&big), Ordering::Less);
        assert_eq!(big.cmp_unsigned(&small), Ordering::Greater);
    }

    #[test]
    fn value_default_of_matches_type() {
        let ty = Ty::Array {
            elem: Box::new(Ty::Bits(8)),
            len: 3,
        };
        let v = Value::default_of(&ty);
        assert_eq!(v.ty(), ty);
    }

    #[test]
    fn value_int_bits_roundtrip_signed() {
        let v = Value::int(-3, 16);
        let bits = v.to_bits();
        assert_eq!(bits.width(), 16);
        assert_eq!(Value::from_bits(&Ty::Int(16), &bits), v);
    }

    #[test]
    fn value_array_bits_roundtrip() {
        let ty = Ty::Array {
            elem: Box::new(Ty::Int(8)),
            len: 4,
        };
        let v = Value::Array(vec![
            Value::int(1, 8),
            Value::int(-1, 8),
            Value::int(64, 8),
            Value::int(0, 8),
        ]);
        let bits = v.to_bits();
        assert_eq!(bits.width(), 32);
        assert_eq!(Value::from_bits(&ty, &bits), v);
    }

    #[test]
    fn value_as_bool_and_ints() {
        assert!(Value::Bit(true).as_bool().unwrap());
        assert!(!Value::int(0, 8).as_bool().unwrap());
        assert_eq!(Value::int(-5, 16).as_i64().unwrap(), -5);
        assert!(Value::Array(vec![]).as_u64().is_err());
    }

    #[test]
    fn value_display_forms() {
        assert_eq!(Value::Bit(true).to_string(), "'1'");
        assert_eq!(Value::int(42, 8).to_string(), "42");
        assert_eq!(Value::Bits(BitVec::from_u64(0b10, 2)).to_string(), "\"10\"");
    }
}

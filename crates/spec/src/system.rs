//! The top-level system container.

use crate::behavior::{Behavior, VarDecl};
use crate::channel::Channel;
use crate::error::SpecError;
use crate::expr::{Expr, Place};
use crate::ids::{BehaviorId, ChannelId, ModuleId, ProcId, SignalId, VarId};
use crate::procedure::{Arg, Procedure};
use crate::stmt::{Stmt, WaitCond};
use crate::types::Ty;
use crate::value::Value;

/// A system module: a chip or memory produced by system partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name, e.g. `chip1`.
    pub name: String,
}

/// A global signal (wire) declaration.
///
/// Before protocol generation a system typically has no signals; the
/// refinement step introduces the bus wires (`START`, `DONE`, `ID`,
/// `DATA`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Signal name.
    pub name: String,
    /// Signal type.
    pub ty: Ty,
    /// Initial value; `None` means the type's all-zero default.
    pub init: Option<Value>,
}

impl SignalDecl {
    /// The value the signal carries at time zero.
    pub fn initial_value(&self) -> Value {
        self.init
            .clone()
            .unwrap_or_else(|| Value::default_of(&self.ty))
    }
}

/// A complete system specification: modules, behaviors, variables,
/// signals, procedures and channels.
///
/// `System` is the value flowing through the synthesis pipeline:
///
/// 1. modelled by hand (or by `ifsyn-systems`),
/// 2. partitioned (`ifsyn-partition`) — cross-module accesses become
///    [`Stmt::ChannelSend`] / [`Stmt::ChannelReceive`],
/// 3. refined (`ifsyn-core`) — channel operations become bus procedures,
/// 4. simulated (`ifsyn-sim`) or printed (`ifsyn-vhdl`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct System {
    /// System name.
    pub name: String,
    /// Modules (chips / memories).
    pub modules: Vec<Module>,
    /// Variable declarations.
    pub variables: Vec<VarDecl>,
    /// Signal declarations.
    pub signals: Vec<SignalDecl>,
    /// Behaviors (processes).
    pub behaviors: Vec<Behavior>,
    /// Procedures.
    pub procedures: Vec<Procedure>,
    /// Abstract channels.
    pub channels: Vec<Channel>,
}

impl System {
    /// Creates an empty system.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a module and returns its id.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        self.modules.push(Module { name: name.into() });
        ModuleId::new(self.modules.len() as u32 - 1)
    }

    /// Adds a behavior assigned to `module` and returns its id.
    pub fn add_behavior(&mut self, name: impl Into<String>, module: ModuleId) -> BehaviorId {
        self.behaviors.push(Behavior::new(name, module));
        BehaviorId::new(self.behaviors.len() as u32 - 1)
    }

    /// Adds a variable owned by `owner` and returns its id.
    pub fn add_variable(&mut self, name: impl Into<String>, ty: Ty, owner: BehaviorId) -> VarId {
        self.variables.push(VarDecl {
            name: name.into(),
            ty,
            owner,
            init: None,
        });
        VarId::new(self.variables.len() as u32 - 1)
    }

    /// Adds a variable with an initial value and returns its id.
    pub fn add_variable_init(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        owner: BehaviorId,
        init: Value,
    ) -> VarId {
        let id = self.add_variable(name, ty, owner);
        self.variables[id.index()].init = Some(init);
        id
    }

    /// Adds a signal and returns its id.
    pub fn add_signal(&mut self, name: impl Into<String>, ty: Ty) -> SignalId {
        self.signals.push(SignalDecl {
            name: name.into(),
            ty,
            init: None,
        });
        SignalId::new(self.signals.len() as u32 - 1)
    }

    /// Adds a signal with an initial value and returns its id.
    pub fn add_signal_init(&mut self, name: impl Into<String>, ty: Ty, init: Value) -> SignalId {
        let id = self.add_signal(name, ty);
        self.signals[id.index()].init = Some(init);
        id
    }

    /// Adds a procedure and returns its id.
    pub fn add_procedure(&mut self, procedure: Procedure) -> ProcId {
        self.procedures.push(procedure);
        ProcId::new(self.procedures.len() as u32 - 1)
    }

    /// Adds a channel and returns its id.
    pub fn add_channel(&mut self, channel: Channel) -> ChannelId {
        self.channels.push(channel);
        ChannelId::new(self.channels.len() as u32 - 1)
    }

    /// Returns the behavior with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn behavior(&self, id: BehaviorId) -> &Behavior {
        &self.behaviors[id.index()]
    }

    /// Mutable access to a behavior.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn behavior_mut(&mut self, id: BehaviorId) -> &mut Behavior {
        &mut self.behaviors[id.index()]
    }

    /// Returns the variable declaration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn variable(&self, id: VarId) -> &VarDecl {
        &self.variables[id.index()]
    }

    /// Returns the signal declaration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn signal(&self, id: SignalId) -> &SignalDecl {
        &self.signals[id.index()]
    }

    /// Returns the procedure with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn procedure(&self, id: ProcId) -> &Procedure {
        &self.procedures[id.index()]
    }

    /// Returns the channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Returns the module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Looks up a behavior id by name.
    pub fn behavior_by_name(&self, name: &str) -> Option<BehaviorId> {
        self.behaviors
            .iter()
            .position(|b| b.name == name)
            .map(|i| BehaviorId::new(i as u32))
    }

    /// Looks up a variable id by name.
    pub fn variable_by_name(&self, name: &str) -> Option<VarId> {
        self.variables
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId::new(i as u32))
    }

    /// Looks up a channel id by name.
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChannelId::new(i as u32))
    }

    /// Looks up a procedure id by name.
    pub fn procedure_by_name(&self, name: &str) -> Option<ProcId> {
        self.procedures
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcId::new(i as u32))
    }

    /// Looks up a signal id by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId::new(i as u32))
    }

    /// All channel ids, in declaration order.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channels.len() as u32).map(ChannelId::new)
    }

    /// All behavior ids, in declaration order.
    pub fn behavior_ids(&self) -> impl Iterator<Item = BehaviorId> + '_ {
        (0..self.behaviors.len() as u32).map(BehaviorId::new)
    }

    /// Validates internal consistency.
    ///
    /// Checks that every id embedded in the IR points at an existing table
    /// entry, that procedure calls pass the right number and mode of
    /// arguments, and that names are unique per table.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), SpecError> {
        self.check_unique_names()?;
        for b in &self.behaviors {
            if b.module.index() >= self.modules.len() {
                return Err(SpecError::DanglingId {
                    context: format!("behavior `{}` references missing module", b.name),
                });
            }
            self.check_body(&b.body, None, &format!("behavior `{}`", b.name))?;
        }
        for v in &self.variables {
            if v.owner.index() >= self.behaviors.len() {
                return Err(SpecError::DanglingId {
                    context: format!("variable `{}` references missing owner behavior", v.name),
                });
            }
        }
        for (i, p) in self.procedures.iter().enumerate() {
            self.check_body(
                &p.body,
                Some(ProcId::new(i as u32)),
                &format!("procedure `{}`", p.name),
            )?;
        }
        for c in &self.channels {
            if c.accessor.index() >= self.behaviors.len() {
                return Err(SpecError::DanglingId {
                    context: format!("channel `{}` references missing behavior", c.name),
                });
            }
            if c.variable.index() >= self.variables.len() {
                return Err(SpecError::DanglingId {
                    context: format!("channel `{}` references missing variable", c.name),
                });
            }
        }
        Ok(())
    }

    fn check_unique_names(&self) -> Result<(), SpecError> {
        let mut seen = std::collections::HashSet::new();
        for name in self.behaviors.iter().map(|b| &b.name) {
            if !seen.insert(("behavior", name.as_str())) {
                return Err(SpecError::DuplicateName { name: name.clone() });
            }
        }
        seen.clear();
        for name in self.procedures.iter().map(|p| &p.name) {
            if !seen.insert(("procedure", name.as_str())) {
                return Err(SpecError::DuplicateName { name: name.clone() });
            }
        }
        seen.clear();
        for name in self.channels.iter().map(|c| &c.name) {
            if !seen.insert(("channel", name.as_str())) {
                return Err(SpecError::DuplicateName { name: name.clone() });
            }
        }
        seen.clear();
        // Signals are global wires: duplicate names would make printed
        // output and waveform dumps ambiguous.
        for name in self.signals.iter().map(|s| &s.name) {
            if !seen.insert(("signal", name.as_str())) {
                return Err(SpecError::DuplicateName { name: name.clone() });
            }
        }
        Ok(())
    }

    fn check_body(
        &self,
        body: &[Stmt],
        proc_scope: Option<ProcId>,
        ctx: &str,
    ) -> Result<(), SpecError> {
        for stmt in body {
            self.check_stmt(stmt, proc_scope, ctx)?;
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        stmt: &Stmt,
        proc_scope: Option<ProcId>,
        ctx: &str,
    ) -> Result<(), SpecError> {
        match stmt {
            Stmt::Assign { place, value, .. } => {
                self.check_place(place, proc_scope, ctx)?;
                self.check_expr(value, proc_scope, ctx)?;
            }
            Stmt::SignalAssign { signal, value, .. } => {
                self.check_signal(*signal, ctx)?;
                self.check_expr(value, proc_scope, ctx)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.check_expr(cond, proc_scope, ctx)?;
                self.check_body(then_body, proc_scope, ctx)?;
                self.check_body(else_body, proc_scope, ctx)?;
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                self.check_place(var, proc_scope, ctx)?;
                self.check_expr(from, proc_scope, ctx)?;
                self.check_expr(to, proc_scope, ctx)?;
                self.check_body(body, proc_scope, ctx)?;
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond, proc_scope, ctx)?;
                self.check_body(body, proc_scope, ctx)?;
            }
            Stmt::Wait(cond) => match cond {
                WaitCond::OnSignals(signals) => {
                    for s in signals {
                        self.check_signal(*s, ctx)?;
                    }
                }
                WaitCond::Until(expr) | WaitCond::UntilTimeout { cond: expr, .. } => {
                    self.check_expr(expr, proc_scope, ctx)?
                }
                WaitCond::ForCycles(_) => {}
            },
            Stmt::Call { procedure, args } => {
                if procedure.index() >= self.procedures.len() {
                    return Err(SpecError::DanglingId {
                        context: format!("{ctx}: call to missing procedure {procedure}"),
                    });
                }
                let p = &self.procedures[procedure.index()];
                if args.len() != p.params.len() {
                    return Err(SpecError::Malformed {
                        context: format!(
                            "{ctx}: call to `{}` passes {} args, expects {}",
                            p.name,
                            args.len(),
                            p.params.len()
                        ),
                    });
                }
                for (arg, param) in args.iter().zip(&p.params) {
                    if !arg.matches(param.mode) {
                        return Err(SpecError::TypeMismatch {
                            context: format!(
                                "{ctx}: call to `{}` passes wrong mode for `{}`",
                                p.name, param.name
                            ),
                        });
                    }
                    match arg {
                        Arg::In(e) => self.check_expr(e, proc_scope, ctx)?,
                        Arg::Out(pl) | Arg::InOut(pl) => self.check_place(pl, proc_scope, ctx)?,
                    }
                }
            }
            Stmt::ChannelSend {
                channel,
                addr,
                data,
            } => {
                self.check_channel(*channel, ctx)?;
                if let Some(a) = addr {
                    self.check_expr(a, proc_scope, ctx)?;
                }
                self.check_expr(data, proc_scope, ctx)?;
            }
            Stmt::ChannelReceive {
                channel,
                addr,
                target,
            } => {
                self.check_channel(*channel, ctx)?;
                if let Some(a) = addr {
                    self.check_expr(a, proc_scope, ctx)?;
                }
                self.check_place(target, proc_scope, ctx)?;
            }
            Stmt::Assert { cond, .. } => self.check_expr(cond, proc_scope, ctx)?,
            Stmt::Compute { .. } | Stmt::Return => {}
        }
        Ok(())
    }

    fn check_signal(&self, id: SignalId, ctx: &str) -> Result<(), SpecError> {
        if id.index() >= self.signals.len() {
            return Err(SpecError::DanglingId {
                context: format!("{ctx}: missing signal {id}"),
            });
        }
        Ok(())
    }

    fn check_channel(&self, id: ChannelId, ctx: &str) -> Result<(), SpecError> {
        if id.index() >= self.channels.len() {
            return Err(SpecError::DanglingId {
                context: format!("{ctx}: missing channel {id}"),
            });
        }
        Ok(())
    }

    fn check_place(
        &self,
        place: &Place,
        proc_scope: Option<ProcId>,
        ctx: &str,
    ) -> Result<(), SpecError> {
        match place {
            Place::Var(v) => {
                if v.index() >= self.variables.len() {
                    return Err(SpecError::DanglingId {
                        context: format!("{ctx}: missing variable {v}"),
                    });
                }
            }
            Place::Local(slot) => match proc_scope {
                Some(p) => {
                    let proc = &self.procedures[p.index()];
                    if *slot >= proc.slot_count() {
                        return Err(SpecError::DanglingId {
                            context: format!(
                                "{ctx}: local slot {slot} out of range (procedure `{}` has {})",
                                proc.name,
                                proc.slot_count()
                            ),
                        });
                    }
                }
                None => {
                    return Err(SpecError::Malformed {
                        context: format!("{ctx}: local slot used outside a procedure"),
                    });
                }
            },
            Place::Index { base, index } => {
                self.check_place(base, proc_scope, ctx)?;
                self.check_expr(index, proc_scope, ctx)?;
            }
            Place::Slice { base, hi, lo } => {
                if hi < lo {
                    return Err(SpecError::Malformed {
                        context: format!("{ctx}: slice hi {hi} < lo {lo}"),
                    });
                }
                self.check_place(base, proc_scope, ctx)?;
            }
            Place::DynSlice {
                base,
                offset,
                width,
            } => {
                if *width == 0 {
                    return Err(SpecError::Malformed {
                        context: format!("{ctx}: zero-width dynamic slice"),
                    });
                }
                self.check_place(base, proc_scope, ctx)?;
                self.check_expr(offset, proc_scope, ctx)?;
            }
        }
        Ok(())
    }

    fn check_expr(
        &self,
        expr: &Expr,
        proc_scope: Option<ProcId>,
        ctx: &str,
    ) -> Result<(), SpecError> {
        match expr {
            Expr::Const(_) => Ok(()),
            Expr::Load(place) => self.check_place(place, proc_scope, ctx),
            Expr::Signal(s) => self.check_signal(*s, ctx),
            Expr::Unary { arg, .. } => self.check_expr(arg, proc_scope, ctx),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, proc_scope, ctx)?;
                self.check_expr(rhs, proc_scope, ctx)
            }
            Expr::SliceOf { base, hi, lo } => {
                if hi < lo {
                    return Err(SpecError::Malformed {
                        context: format!("{ctx}: slice hi {hi} < lo {lo}"),
                    });
                }
                self.check_expr(base, proc_scope, ctx)
            }
            Expr::Resize { base, .. } => self.check_expr(base, proc_scope, ctx),
            Expr::DynSliceOf {
                base,
                offset,
                width,
            } => {
                if *width == 0 {
                    return Err(SpecError::Malformed {
                        context: format!("{ctx}: zero-width dynamic slice"),
                    });
                }
                self.check_expr(base, proc_scope, ctx)?;
                self.check_expr(offset, proc_scope, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelDirection;
    use crate::dsl::*;

    fn tiny() -> (System, BehaviorId, VarId) {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        let b = sys.add_behavior("P", m);
        let v = sys.add_variable("X", Ty::Bits(8), b);
        (sys, b, v)
    }

    #[test]
    fn empty_system_checks() {
        assert!(System::new("empty").check().is_ok());
    }

    #[test]
    fn valid_assignment_checks() {
        let (mut sys, b, v) = tiny();
        sys.behavior_mut(b)
            .body
            .push(assign(var(v), bits_const(1, 8)));
        assert!(sys.check().is_ok());
    }

    #[test]
    fn dangling_variable_fails() {
        let (mut sys, b, _) = tiny();
        sys.behavior_mut(b)
            .body
            .push(assign(var(VarId::new(99)), bits_const(1, 8)));
        assert!(matches!(sys.check(), Err(SpecError::DanglingId { .. })));
    }

    #[test]
    fn local_outside_procedure_fails() {
        let (mut sys, b, _) = tiny();
        sys.behavior_mut(b)
            .body
            .push(assign(Place::Local(0), bits_const(1, 8)));
        assert!(matches!(sys.check(), Err(SpecError::Malformed { .. })));
    }

    #[test]
    fn call_arity_mismatch_fails() {
        let (mut sys, b, _) = tiny();
        let p = sys.add_procedure(Procedure::new("noop"));
        sys.behavior_mut(b).body.push(Stmt::Call {
            procedure: p,
            args: vec![Arg::In(int_const(1, 8))],
        });
        assert!(matches!(sys.check(), Err(SpecError::Malformed { .. })));
    }

    #[test]
    fn call_mode_mismatch_fails() {
        let (mut sys, b, v) = tiny();
        let mut proc = Procedure::new("takes_out");
        proc.add_param("o", Ty::Bits(8), crate::ParamMode::Out);
        let p = sys.add_procedure(proc);
        sys.behavior_mut(b).body.push(Stmt::Call {
            procedure: p,
            args: vec![Arg::In(load(var(v)))],
        });
        assert!(matches!(sys.check(), Err(SpecError::TypeMismatch { .. })));
    }

    #[test]
    fn duplicate_behavior_name_fails() {
        let mut sys = System::new("t");
        let m = sys.add_module("chip");
        sys.add_behavior("P", m);
        sys.add_behavior("P", m);
        assert!(matches!(sys.check(), Err(SpecError::DuplicateName { .. })));
    }

    #[test]
    fn channel_with_dangling_variable_fails() {
        let (mut sys, b, _) = tiny();
        sys.add_channel(Channel {
            name: "ch0".into(),
            accessor: b,
            variable: VarId::new(42),
            direction: ChannelDirection::Read,
            data_bits: 8,
            addr_bits: 0,
            accesses: 1,
        });
        assert!(matches!(sys.check(), Err(SpecError::DanglingId { .. })));
    }

    #[test]
    fn name_lookups() {
        let (mut sys, b, v) = tiny();
        let _ = b;
        assert_eq!(sys.variable_by_name("X"), Some(v));
        assert_eq!(sys.behavior_by_name("P"), Some(BehaviorId::new(0)));
        assert_eq!(sys.behavior_by_name("missing"), None);
        let s = sys.add_signal("B_START", Ty::Bit);
        assert_eq!(sys.signal_by_name("B_START"), Some(s));
    }

    #[test]
    fn zero_width_dyn_slice_fails() {
        let (mut sys, b, v) = tiny();
        sys.behavior_mut(b).body.push(assign(
            dyn_slice(var(v), int_const(0, 8), 0),
            bits_const(0, 8),
        ));
        assert!(matches!(sys.check(), Err(SpecError::Malformed { .. })));
    }

    #[test]
    fn dyn_slice_places_validate() {
        let (mut sys, b, v) = tiny();
        sys.behavior_mut(b).body.push(assign(
            dyn_slice(var(v), int_const(4, 8), 4),
            bits_const(0b1010, 4),
        ));
        assert!(sys.check().is_ok());
    }

    #[test]
    fn bad_slice_bounds_fail() {
        let (mut sys, b, v) = tiny();
        sys.behavior_mut(b).body.push(assign(
            Place::Slice {
                base: Box::new(var(v)),
                hi: 0,
                lo: 3,
            },
            bits_const(0, 8),
        ));
        assert!(matches!(sys.check(), Err(SpecError::Malformed { .. })));
    }
}

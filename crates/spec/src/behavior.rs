//! Behaviors (processes) and variable declarations.

use crate::ids::{BehaviorId, ModuleId};
use crate::stmt::Stmt;
use crate::types::Ty;
use crate::value::Value;

/// A variable declaration.
///
/// Variables are owned by a behavior (their storage lives with that
/// process) but, before partitioning, may be *referenced* by any behavior.
/// Partitioning turns cross-module references into channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name (unique within the system for printing clarity).
    pub name: String,
    /// Variable type.
    pub ty: Ty,
    /// The behavior whose storage holds this variable.
    pub owner: BehaviorId,
    /// Initial value; `None` means the type's all-zero default.
    pub init: Option<Value>,
}

impl VarDecl {
    /// The value the variable holds at time zero.
    pub fn initial_value(&self) -> Value {
        self.init
            .clone()
            .unwrap_or_else(|| Value::default_of(&self.ty))
    }
}

/// A behavior: a sequential process executing concurrently with all other
/// behaviors of the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Behavior {
    /// Behavior name (unique within the system).
    pub name: String,
    /// The module (chip) this behavior is assigned to.
    pub module: ModuleId,
    /// Statement body.
    pub body: Vec<Stmt>,
    /// When `true` the body restarts after finishing, like a VHDL process;
    /// when `false` the behavior terminates (its finish time is the
    /// process "execution time" reported in the paper's Fig. 7).
    pub repeats: bool,
}

impl Behavior {
    /// Creates an empty, non-repeating behavior.
    pub fn new(name: impl Into<String>, module: ModuleId) -> Self {
        Self {
            name: name.into(),
            module,
            body: Vec::new(),
            repeats: false,
        }
    }

    /// Builder-style setter for [`Behavior::repeats`].
    pub fn repeating(mut self, repeats: bool) -> Self {
        self.repeats = repeats;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_defaults_to_zero_of_type() {
        let d = VarDecl {
            name: "X".into(),
            ty: Ty::Bits(4),
            owner: BehaviorId::new(0),
            init: None,
        };
        assert_eq!(d.initial_value(), Value::default_of(&Ty::Bits(4)));
    }

    #[test]
    fn initial_value_uses_declared_init() {
        let d = VarDecl {
            name: "C".into(),
            ty: Ty::Int(8),
            owner: BehaviorId::new(0),
            init: Some(Value::int(9, 8)),
        };
        assert_eq!(d.initial_value(), Value::int(9, 8));
    }

    #[test]
    fn repeating_builder() {
        let b = Behavior::new("P", ModuleId::new(0)).repeating(true);
        assert!(b.repeats);
    }
}

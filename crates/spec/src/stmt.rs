//! Statements of the specification language.

use crate::expr::{Expr, Place};
use crate::ids::{ChannelId, ProcId, SignalId};
use crate::procedure::Arg;

/// The suspension condition of a `wait` statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WaitCond {
    /// `wait on s1, s2, ...` — resume after any listed signal has an event.
    OnSignals(Vec<SignalId>),
    /// `wait until <expr>` — resume when the expression becomes true.
    ///
    /// The implicit sensitivity list is every signal read by the
    /// expression, as in VHDL.
    Until(Expr),
    /// `wait for N cycles` — resume after the given number of clock cycles.
    ForCycles(u64),
    /// `wait until <expr> for N` — resume when the expression becomes
    /// true *or* after `cycles` clock cycles, whichever happens first
    /// (VHDL's timeout-clause wait). The watchdog form used by hardened
    /// handshake protocols: code after the wait re-tests the condition to
    /// tell success from expiry.
    UntilTimeout {
        /// The resume condition.
        cond: Expr,
        /// The watchdog bound in clock cycles.
        cycles: u64,
    },
}

impl WaitCond {
    /// Returns the signals that can wake this wait.
    pub fn sensitivity(&self) -> Vec<SignalId> {
        match self {
            WaitCond::OnSignals(signals) => signals.clone(),
            WaitCond::Until(expr) | WaitCond::UntilTimeout { cond: expr, .. } => {
                let mut out = Vec::new();
                expr.collect_signals(&mut out);
                out
            }
            WaitCond::ForCycles(_) => Vec::new(),
        }
    }
}

/// A statement.
///
/// Statements that perform work carry an optional `cost` in clock cycles;
/// `None` means "use the estimator's default statement cost". Protocol
/// generation sets explicit costs on the handshake edges it emits so that
/// simulated timing matches the published delay model (2 clocks per bus
/// word for a full handshake).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Variable assignment, `place := value` (immediate, VHDL `:=`).
    Assign {
        /// Assignment target.
        place: Place,
        /// Assigned value.
        value: Expr,
        /// Explicit cycle cost; `None` = estimator default.
        cost: Option<u32>,
    },
    /// Signal assignment, `signal <= value` (takes effect next delta).
    SignalAssign {
        /// Driven signal.
        signal: SignalId,
        /// Driven value.
        value: Expr,
        /// Explicit cycle cost; `None` = estimator default.
        cost: Option<u32>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Statements executed when the condition is true.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Counted loop, `for var in from..=to loop ... end loop`.
    ///
    /// The loop variable is an ordinary place written before each
    /// iteration; bounds are evaluated once on entry.
    For {
        /// Loop variable.
        var: Place,
        /// First value (inclusive).
        from: Expr,
        /// Last value (inclusive).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditional loop, `while cond loop ... end loop`.
    While {
        /// Loop condition, tested before each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Suspend until the condition holds.
    Wait(WaitCond),
    /// Procedure call.
    Call {
        /// Called procedure.
        procedure: ProcId,
        /// Actual arguments, one per formal parameter.
        args: Vec<Arg>,
    },
    /// Abstract send over a channel (post-partitioning, pre-protocol).
    ///
    /// Transfers `data` (and `addr` when the remote variable is an array)
    /// to the process serving the channel's variable.
    ChannelSend {
        /// The channel.
        channel: ChannelId,
        /// Element address for array variables.
        addr: Option<Expr>,
        /// The transferred value.
        data: Expr,
    },
    /// Abstract receive over a channel (post-partitioning, pre-protocol).
    ChannelReceive {
        /// The channel.
        channel: ChannelId,
        /// Element address for array variables.
        addr: Option<Expr>,
        /// Where the received value is stored.
        target: Place,
    },
    /// An abstract computation block consuming a fixed number of cycles.
    ///
    /// Used to model process workload (e.g. "evaluate fuzzy rule") whose
    /// internals are irrelevant to interface synthesis but whose *time*
    /// determines channel average rates.
    Compute {
        /// Cycles consumed.
        cycles: u64,
        /// Free-form description for printing and traces.
        note: String,
    },
    /// A runtime check: simulation fails if the condition is false.
    ///
    /// Assertions make specifications self-checking (VHDL `assert`);
    /// they cost no clock cycles.
    Assert {
        /// Must evaluate true whenever execution reaches the statement.
        cond: Expr,
        /// Shown in the failure diagnostic.
        note: String,
    },
    /// Return from the current procedure (or finish the behavior body).
    Return,
}

impl Stmt {
    /// Convenience constructor for [`Stmt::Compute`].
    pub fn compute(cycles: u64, note: impl Into<String>) -> Self {
        Stmt::Compute {
            cycles,
            note: note.into(),
        }
    }

    /// Convenience constructor for [`Stmt::Assert`].
    pub fn assert(cond: Expr, note: impl Into<String>) -> Self {
        Stmt::Assert {
            cond,
            note: note.into(),
        }
    }

    /// Returns the nested statement bodies of this statement, if any.
    pub fn bodies(&self) -> Vec<&Vec<Stmt>> {
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body],
            _ => Vec::new(),
        }
    }

    /// Returns mutable references to the nested statement bodies.
    pub fn bodies_mut(&mut self) -> Vec<&mut Vec<Stmt>> {
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::value::Value;

    #[test]
    fn wait_until_sensitivity_is_signals_of_expr() {
        let cond = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Signal(SignalId::new(3))),
            rhs: Box::new(Expr::Signal(SignalId::new(1))),
        };
        let w = WaitCond::Until(cond);
        assert_eq!(w.sensitivity(), vec![SignalId::new(3), SignalId::new(1)]);
    }

    #[test]
    fn wait_for_has_empty_sensitivity() {
        assert!(WaitCond::ForCycles(10).sensitivity().is_empty());
    }

    #[test]
    fn bodies_exposes_nested_blocks() {
        let s = Stmt::If {
            cond: Expr::Const(Value::Bit(true)),
            then_body: vec![Stmt::Return],
            else_body: vec![],
        };
        let bodies = s.bodies();
        assert_eq!(bodies.len(), 2);
        assert_eq!(bodies[0].len(), 1);
    }
}

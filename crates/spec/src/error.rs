//! Error type for specification construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::System`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// An id referenced a table entry that does not exist.
    DanglingId {
        /// Human-readable description of the reference site.
        context: String,
    },
    /// A value or expression was used at an incompatible type.
    TypeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A name was declared twice in the same scope.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A structural rule of the language was violated.
    Malformed {
        /// Human-readable description of the violation.
        context: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DanglingId { context } => {
                write!(f, "dangling id reference: {context}")
            }
            SpecError::TypeMismatch { context } => {
                write!(f, "type mismatch: {context}")
            }
            SpecError::DuplicateName { name } => {
                write!(f, "duplicate declaration of `{name}`")
            }
            SpecError::Malformed { context } => {
                write!(f, "malformed specification: {context}")
            }
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = SpecError::DuplicateName {
            name: "MEM".to_string(),
        };
        let s = e.to_string();
        assert!(s.starts_with("duplicate"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}

//! Terse constructors for building IR by hand.
//!
//! These free functions keep hand-written system models (and the code the
//! protocol generator emits) readable:
//!
//! ```
//! use ifsyn_spec::{Ty, System, dsl::*};
//!
//! let mut sys = System::new("demo");
//! let m = sys.add_module("chip");
//! let b = sys.add_behavior("P", m);
//! let x = sys.add_variable("X", Ty::Int(16), b);
//! sys.behavior_mut(b).body.push(
//!     assign(var(x), add(load(var(x)), int_const(7, 16))),
//! );
//! ```

use crate::expr::{BinOp, Expr, Place, UnaryOp};
use crate::ids::{ChannelId, ProcId, SignalId, VarId};
use crate::procedure::Arg;
use crate::stmt::{Stmt, WaitCond};
use crate::value::{BitVec, Value};

// ---- places ----------------------------------------------------------

/// Place naming a behavior variable.
pub fn var(id: VarId) -> Place {
    Place::Var(id)
}

/// Place naming a procedure parameter / local slot.
pub fn local(slot: usize) -> Place {
    Place::Local(slot)
}

/// Indexes an array place: `base(index)`.
pub fn index(base: Place, idx: Expr) -> Place {
    Place::Index {
        base: Box::new(base),
        index: Box::new(idx),
    }
}

/// Slices a bit-vector place: `base(hi downto lo)`.
pub fn slice(base: Place, hi: u32, lo: u32) -> Place {
    Place::Slice {
        base: Box::new(base),
        hi,
        lo,
    }
}

/// Fixed-width slice of a place at a runtime offset:
/// `base(offset + width - 1 downto offset)`.
pub fn dyn_slice(base: Place, offset: Expr, width: u32) -> Place {
    Place::DynSlice {
        base: Box::new(base),
        offset: Box::new(offset),
        width,
    }
}

// ---- expressions ------------------------------------------------------

/// Reads a place.
pub fn load(place: Place) -> Expr {
    Expr::Load(place)
}

/// Reads a signal.
pub fn signal(id: SignalId) -> Expr {
    Expr::Signal(id)
}

/// Integer literal of the given bit width.
pub fn int_const(value: i64, width: u32) -> Expr {
    Expr::Const(Value::int(value, width))
}

/// Bit-vector literal from the low `width` bits of `value`.
pub fn bits_const(value: u64, width: u32) -> Expr {
    Expr::Const(Value::Bits(BitVec::from_u64(value, width)))
}

/// Single-bit literal.
pub fn bit_const(value: bool) -> Expr {
    Expr::Const(Value::Bit(value))
}

fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// `lhs + rhs`.
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Add, lhs, rhs)
}

/// `lhs - rhs`.
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Sub, lhs, rhs)
}

/// `lhs * rhs`.
pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Mul, lhs, rhs)
}

/// `lhs = rhs`.
pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Eq, lhs, rhs)
}

/// `lhs /= rhs`.
pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Ne, lhs, rhs)
}

/// `lhs < rhs`.
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Lt, lhs, rhs)
}

/// `lhs <= rhs`.
pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Le, lhs, rhs)
}

/// `lhs and rhs`.
pub fn and(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::And, lhs, rhs)
}

/// `lhs or rhs`.
pub fn or(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Or, lhs, rhs)
}

/// `lhs xor rhs`.
pub fn xor(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Xor, lhs, rhs)
}

/// `lhs & rhs` — concatenation, `lhs` in the low bit positions.
pub fn concat(lhs: Expr, rhs: Expr) -> Expr {
    binary(BinOp::Concat, lhs, rhs)
}

/// `not arg`.
pub fn not(arg: Expr) -> Expr {
    Expr::Unary {
        op: UnaryOp::Not,
        arg: Box::new(arg),
    }
}

/// `base(hi downto lo)` on an expression.
pub fn slice_of(base: Expr, hi: u32, lo: u32) -> Expr {
    Expr::SliceOf {
        base: Box::new(base),
        hi,
        lo,
    }
}

/// Zero-extends / truncates an expression to `width` bits.
pub fn resize(base: Expr, width: u32) -> Expr {
    Expr::Resize {
        base: Box::new(base),
        width,
    }
}

/// Fixed-width slice of an expression at a runtime offset.
pub fn dyn_slice_of(base: Expr, offset: Expr, width: u32) -> Expr {
    Expr::DynSliceOf {
        base: Box::new(base),
        offset: Box::new(offset),
        width,
    }
}

// ---- statements -------------------------------------------------------

/// `place := value` with default cost.
pub fn assign(place: Place, value: Expr) -> Stmt {
    Stmt::Assign {
        place,
        value,
        cost: None,
    }
}

/// `place := value` with an explicit cycle cost.
pub fn assign_cost(place: Place, value: Expr, cost: u32) -> Stmt {
    Stmt::Assign {
        place,
        value,
        cost: Some(cost),
    }
}

/// `signal <= value` with default cost.
pub fn drive(sig: SignalId, value: Expr) -> Stmt {
    Stmt::SignalAssign {
        signal: sig,
        value,
        cost: None,
    }
}

/// `signal <= value` with an explicit cycle cost.
pub fn drive_cost(sig: SignalId, value: Expr, cost: u32) -> Stmt {
    Stmt::SignalAssign {
        signal: sig,
        value,
        cost: Some(cost),
    }
}

/// `if cond then ... end if`.
pub fn if_then(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body: Vec::new(),
    }
}

/// `if cond then ... else ... end if`.
pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body,
    }
}

/// `for var in from..=to loop ... end loop`.
pub fn for_loop(loop_var: Place, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: loop_var,
        from,
        to,
        body,
    }
}

/// `while cond loop ... end loop`.
pub fn while_loop(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While { cond, body }
}

/// `wait until expr`.
pub fn wait_until(cond: Expr) -> Stmt {
    Stmt::Wait(WaitCond::Until(cond))
}

/// `wait until expr for cycles` — a watchdog-bounded wait that also
/// resumes when the bound expires (the condition did not come true).
pub fn wait_until_for(cond: Expr, cycles: u64) -> Stmt {
    Stmt::Wait(WaitCond::UntilTimeout { cond, cycles })
}

/// `wait on s1, s2, ...`.
pub fn wait_on(signals: Vec<SignalId>) -> Stmt {
    Stmt::Wait(WaitCond::OnSignals(signals))
}

/// `wait for cycles`.
pub fn wait_cycles(cycles: u64) -> Stmt {
    Stmt::Wait(WaitCond::ForCycles(cycles))
}

/// Procedure call.
pub fn call(procedure: ProcId, args: Vec<Arg>) -> Stmt {
    Stmt::Call { procedure, args }
}

/// Abstract channel send of a scalar value.
pub fn send(channel: ChannelId, data: Expr) -> Stmt {
    Stmt::ChannelSend {
        channel,
        addr: None,
        data,
    }
}

/// Abstract channel send of an array element (`addr`, `data`).
pub fn send_at(channel: ChannelId, addr: Expr, data: Expr) -> Stmt {
    Stmt::ChannelSend {
        channel,
        addr: Some(addr),
        data,
    }
}

/// Abstract channel receive of a scalar value.
pub fn receive(channel: ChannelId, target: Place) -> Stmt {
    Stmt::ChannelReceive {
        channel,
        addr: None,
        target,
    }
}

/// Abstract channel receive of an array element at `addr`.
pub fn receive_at(channel: ChannelId, addr: Expr, target: Place) -> Stmt {
    Stmt::ChannelReceive {
        channel,
        addr: Some(addr),
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = add(int_const(1, 8), int_const(2, 8));
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
        let s = assign(var(VarId::new(0)), e);
        assert!(matches!(s, Stmt::Assign { cost: None, .. }));
        let s = drive_cost(SignalId::new(0), bit_const(true), 1);
        assert!(matches!(s, Stmt::SignalAssign { cost: Some(1), .. }));
    }

    #[test]
    fn place_builders_nest() {
        let p = slice(index(var(VarId::new(0)), int_const(3, 8)), 7, 4);
        assert_eq!(p.root_var(), Some(VarId::new(0)));
    }
}

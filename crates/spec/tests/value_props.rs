//! Property tests for the value layer (BitVec and Value).
//!
//! `BitVec` is differential-tested against a naive `Vec<bool>` reference
//! model: every operation is executed on both representations and the
//! results must agree bit for bit. Widths cross every limb boundary of
//! the packed representation (0, 1, 63, 64, 65, 128) plus random widths.

use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{BitVec, Ty, Value};

/// The reference model: one `bool` per bit, LSB first.
#[derive(Debug, Clone, PartialEq)]
struct RefBits(Vec<bool>);

impl RefBits {
    fn random(rng: &mut SplitMix64, width: u32) -> Self {
        Self((0..width).map(|_| rng.bool()).collect())
    }

    fn to_bitvec(&self) -> BitVec {
        BitVec::from_bits_lsb_first(self.0.iter().copied())
    }

    fn to_u64(&self) -> u64 {
        self.0
            .iter()
            .take(64)
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    fn slice(&self, hi: u32, lo: u32) -> Self {
        Self(self.0[lo as usize..=hi as usize].to_vec())
    }

    fn write_slice(&mut self, hi: u32, lo: u32, v: &RefBits) {
        assert_eq!(v.0.len() as u32, hi - lo + 1);
        self.0[lo as usize..=hi as usize].copy_from_slice(&v.0);
    }

    fn concat(&self, high: &RefBits) -> Self {
        let mut bits = self.0.clone();
        bits.extend_from_slice(&high.0);
        Self(bits)
    }

    fn resized(&self, width: u32) -> Self {
        let mut bits = self.0.clone();
        bits.resize(width as usize, false);
        Self(bits)
    }
}

/// Asserts that `bv` and the model agree through every observation.
fn assert_agrees(bv: &BitVec, model: &RefBits) {
    assert_eq!(bv.width() as usize, model.0.len());
    for (i, &b) in model.0.iter().enumerate() {
        assert_eq!(bv.bit(i as u32), b, "bit {i} of {bv}");
    }
    assert_eq!(bv.to_u64(), model.to_u64());
    assert_eq!(*bv, model.to_bitvec(), "Eq against rebuilt vector");
    let display = bv.to_string();
    if model.0.is_empty() {
        assert_eq!(display, "\"\"");
    } else {
        assert_eq!(display.len() as u32, bv.width());
        for (i, c) in display.chars().rev().enumerate() {
            assert_eq!(c == '1', model.0[i], "display bit {i}");
        }
    }
    let iterated: Vec<bool> = bv.iter().collect();
    assert_eq!(iterated, model.0);
}

/// The limb-boundary widths the packed representation must survive.
const WIDTHS: [u32; 6] = [0, 1, 63, 64, 65, 128];

fn cases(seed: u64) -> impl Iterator<Item = (SplitMix64, u32)> {
    let mut seeds = SplitMix64::new(seed);
    let mut all: Vec<u32> = WIDTHS.to_vec();
    for _ in 0..10 {
        all.push(seeds.range_u32(2, 200));
    }
    all.into_iter()
        .map(move |w| (SplitMix64::new(seeds.next_u64()), w))
}

#[test]
fn construction_and_observation_match_model() {
    for (mut rng, w) in cases(0x11) {
        for _ in 0..20 {
            let model = RefBits::random(&mut rng, w);
            assert_agrees(&model.to_bitvec(), &model);
        }
        // from_u64 keeps only the low w bits.
        for _ in 0..20 {
            let v = rng.next_u64();
            let bv = BitVec::from_u64(v, w);
            let model = RefBits((0..w).map(|i| i < 64 && (v >> i) & 1 == 1).collect());
            assert_agrees(&bv, &model);
        }
        assert_agrees(&BitVec::zeros(w), &RefBits(vec![false; w as usize]));
    }
}

#[test]
fn set_bit_matches_model() {
    for (mut rng, w) in cases(0x22) {
        if w == 0 {
            continue;
        }
        let model = RefBits::random(&mut rng, w);
        let mut bv = model.to_bitvec();
        let mut model = model;
        for _ in 0..50 {
            let i = rng.range_u32(0, w - 1);
            let b = rng.bool();
            bv.set_bit(i, b);
            model.0[i as usize] = b;
        }
        assert_agrees(&bv, &model);
    }
}

#[test]
fn slice_matches_model() {
    for (mut rng, w) in cases(0x33) {
        if w == 0 {
            continue;
        }
        let model = RefBits::random(&mut rng, w);
        let bv = model.to_bitvec();
        for _ in 0..30 {
            let lo = rng.range_u32(0, w - 1);
            let hi = rng.range_u32(lo, w - 1);
            assert_agrees(&bv.slice(hi, lo), &model.slice(hi, lo));
        }
        // Full-width slice is the identity.
        assert_agrees(&bv.slice(w - 1, 0), &model);
    }
}

#[test]
fn write_slice_matches_model() {
    for (mut rng, w) in cases(0x44) {
        if w == 0 {
            continue;
        }
        for _ in 0..30 {
            let mut model = RefBits::random(&mut rng, w);
            let mut bv = model.to_bitvec();
            let lo = rng.range_u32(0, w - 1);
            let hi = rng.range_u32(lo, w - 1);
            let patch = RefBits::random(&mut rng, hi - lo + 1);
            bv.write_slice(hi, lo, &patch.to_bitvec());
            model.write_slice(hi, lo, &patch);
            assert_agrees(&bv, &model);
        }
    }
}

#[test]
fn slice_then_concat_reassembles() {
    for (mut rng, w) in cases(0x55) {
        if w < 2 {
            continue;
        }
        for _ in 0..20 {
            let model = RefBits::random(&mut rng, w);
            let bv = model.to_bitvec();
            let cut = rng.range_u32(1, w - 1);
            let low = bv.slice(cut - 1, 0);
            let high = bv.slice(w - 1, cut);
            assert_eq!(low.concat(&high), bv);
        }
    }
}

#[test]
fn concat_matches_model_across_boundaries() {
    let mut rng = SplitMix64::new(0x66);
    for &wa in &WIDTHS {
        for &wb in &WIDTHS {
            let a = RefBits::random(&mut rng, wa);
            let b = RefBits::random(&mut rng, wb);
            assert_agrees(&a.to_bitvec().concat(&b.to_bitvec()), &a.concat(&b));
        }
    }
}

#[test]
fn resized_matches_model() {
    let mut rng = SplitMix64::new(0x77);
    for &w in &WIDTHS {
        for &w2 in &WIDTHS {
            let model = RefBits::random(&mut rng, w);
            let bv = model.to_bitvec();
            let r = bv.resized(w2);
            assert_agrees(&r, &model.resized(w2));
            // Round-trip: grow then shrink back preserves the value.
            assert_eq!(bv.resized(w + 7).resized(w), bv);
        }
    }
}

#[test]
fn equality_and_hash_ignore_storage_history() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut rng = SplitMix64::new(0x88);
    for &w in &WIDTHS {
        let model = RefBits::random(&mut rng, w);
        let a = model.to_bitvec();
        // Build the same value by a different construction path.
        let mut b = BitVec::zeros(w);
        for (i, &bit) in model.0.iter().enumerate() {
            if bit {
                b.set_bit(i as u32, true);
            }
        }
        assert_eq!(a, b);
        let hash = |v: &BitVec| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        // Differing width must not compare equal even when all bits are 0.
        assert_ne!(BitVec::zeros(w), BitVec::zeros(w + 1));
    }
}

#[test]
fn from_to_u64_roundtrip() {
    let mut rng = SplitMix64::new(0x99);
    for _ in 0..200 {
        let v = rng.next_u64();
        let w = rng.range_u32(1, 64);
        let bv = BitVec::from_u64(v, w);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        assert_eq!(bv.to_u64(), v & mask);
        assert_eq!(bv.width(), w);
    }
}

#[test]
fn int_value_bits_roundtrip() {
    let mut rng = SplitMix64::new(0xaa);
    for _ in 0..200 {
        let w = rng.range_u32(16, 32);
        let v = rng.range_i64(-32768, 32767);
        let val = Value::int(v, w);
        assert_eq!(Value::from_bits(&Ty::Int(w), &val.to_bits()), val);
    }
}

#[test]
fn array_value_bits_roundtrip() {
    let mut rng = SplitMix64::new(0xbb);
    for _ in 0..100 {
        let w = rng.range_u32(1, 70); // crosses the 64-bit limb boundary
        let len = rng.range_u32(1, 7);
        let ty = Ty::array(Ty::Bits(w), len);
        let val = Value::Array(
            (0..len)
                .map(|_| Value::Bits(BitVec::from_u64(rng.next_u64(), w.min(64)).resized(w)))
                .collect(),
        );
        let bits = val.to_bits();
        assert_eq!(bits.width(), w * len);
        assert_eq!(Value::from_bits(&ty, &bits), val);
    }
}

#[test]
fn default_of_has_declared_type() {
    let mut rng = SplitMix64::new(0xcc);
    for _ in 0..100 {
        let ty = Ty::array(Ty::Bits(rng.range_u32(1, 31)), rng.range_u32(1, 7));
        assert_eq!(Value::default_of(&ty).ty(), ty);
    }
}

#[test]
fn addr_bits_covers_every_index() {
    let mut rng = SplitMix64::new(0xdd);
    for _ in 0..200 {
        let len = rng.range_u32(2, 1999);
        let ty = Ty::array(Ty::Bit, len);
        let a = ty.addr_bits();
        // Every index 0..len-1 must fit in a bits; a-1 bits must not.
        assert!(u64::from(len - 1) < (1u64 << a));
        assert!(u64::from(len - 1) >= (1u64 << (a - 1)) || a == 1);
    }
}

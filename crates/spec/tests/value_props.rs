//! Property tests for the value layer (BitVec and Value).

use proptest::prelude::*;

use ifsyn_spec::{BitVec, Ty, Value};

fn arb_bitvec(max_width: u32) -> impl Strategy<Value = BitVec> {
    (1u32..=max_width, any::<u64>())
        .prop_map(|(w, v)| BitVec::from_u64(v, w.min(64)))
}

proptest! {
    #[test]
    fn from_to_u64_roundtrip(v in any::<u64>(), w in 1u32..=64) {
        let bv = BitVec::from_u64(v, w);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(bv.to_u64(), v & mask);
        prop_assert_eq!(bv.width(), w);
    }

    #[test]
    fn slice_then_concat_reassembles(bv in arb_bitvec(48), cut in 0u32..47) {
        let w = bv.width();
        prop_assume!(w >= 2);
        let cut = 1 + cut % (w - 1); // 1..w-1
        let low = bv.slice(cut - 1, 0);
        let high = bv.slice(w - 1, cut);
        prop_assert_eq!(low.concat(&high), bv);
    }

    #[test]
    fn write_slice_then_read_roundtrips(
        base in arb_bitvec(32),
        patch in any::<u64>(),
        lo in 0u32..31,
    ) {
        let w = base.width();
        prop_assume!(w >= 1);
        let lo = lo % w;
        let hi = w - 1;
        let patch = BitVec::from_u64(patch, hi - lo + 1);
        let mut v = base.clone();
        v.write_slice(hi, lo, &patch);
        prop_assert_eq!(v.slice(hi, lo), patch);
        if lo > 0 {
            prop_assert_eq!(v.slice(lo - 1, 0), base.slice(lo - 1, 0));
        }
    }

    #[test]
    fn resized_preserves_low_bits(bv in arb_bitvec(40), w2 in 1u32..40) {
        let r = bv.resized(w2);
        prop_assert_eq!(r.width(), w2);
        let common = bv.width().min(w2);
        if common > 0 {
            prop_assert_eq!(r.slice(common - 1, 0), bv.slice(common - 1, 0));
        }
    }

    #[test]
    fn display_is_msb_first_binary(bv in arb_bitvec(20)) {
        let s = bv.to_string();
        prop_assert_eq!(s.len() as u32, bv.width());
        for (i, c) in s.chars().rev().enumerate() {
            prop_assert_eq!(c == '1', bv.bit(i as u32));
        }
    }

    #[test]
    fn int_value_bits_roundtrip(v in -32768i64..32768, w in 16u32..=32) {
        let val = Value::int(v, w);
        let back = Value::from_bits(&Ty::Int(w), &val.to_bits());
        prop_assert_eq!(back, val);
    }

    #[test]
    fn array_value_bits_roundtrip(
        items in prop::collection::vec(any::<u64>(), 1..8),
        w in 1u32..16,
    ) {
        let ty = Ty::array(Ty::Bits(w), items.len() as u32);
        let val = Value::Array(
            items.iter().map(|&x| Value::Bits(BitVec::from_u64(x, w))).collect(),
        );
        let bits = val.to_bits();
        prop_assert_eq!(bits.width(), w * items.len() as u32);
        prop_assert_eq!(Value::from_bits(&ty, &bits), val);
    }

    #[test]
    fn default_of_has_declared_type(w in 1u32..32, len in 1u32..8) {
        let ty = Ty::array(Ty::Bits(w), len);
        prop_assert_eq!(Value::default_of(&ty).ty(), ty);
    }

    #[test]
    fn addr_bits_covers_every_index(len in 2u32..2000) {
        let ty = Ty::array(Ty::Bit, len);
        let a = ty.addr_bits();
        // Every index 0..len-1 must fit in a bits; a-1 bits must not.
        prop_assert!(u64::from(len - 1) < (1u64 << a));
        prop_assert!(u64::from(len - 1) >= (1u64 << (a - 1)) || a == 1);
    }
}

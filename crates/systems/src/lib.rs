//! # ifsyn-systems — the paper's example systems
//!
//! Models of every system the DAC'94 evaluation mentions:
//!
//! * [`mod@fig1`] — the motivating Fig. 1 split (process `A` vs `MEM`/`STATUS`);
//! * [`fig3`] — the worked protocol-generation example of Figs. 3–5
//!   (behaviors `P`/`Q` accessing `X` and `MEM` over channels CH0–CH3);
//! * [`mod@flc`] — the Matsushita fuzzy logic controller of Fig. 6–8
//!   (the paper's main case study);
//! * [`mod@answering_machine`] — the answering machine mentioned in §5;
//! * [`ethernet`] — the Ethernet network coprocessor mentioned in §5;
//! * [`mod@synth`] — a deterministic synthetic-system generator for
//!   scale testing (not from the paper: the examples above are too small
//!   to exercise the parallel simulation kernel or large sweeps).
//!
//! The FLC and Fig. 3 models are built already-partitioned (hand-derived
//! channels with the exact message sizes the paper reports); the
//! answering machine and Ethernet models start unpartitioned and run
//! through `ifsyn-partition`, exercising the full pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answering_machine;
pub mod ethernet;
pub mod fig1;
pub mod fig3;
pub mod flc;
pub mod synth;

pub use answering_machine::{answering_machine, AnsweringMachine};
pub use ethernet::{ethernet_coprocessor, EthernetCoprocessor};
pub use fig1::{fig1, fig1_unpartitioned, Fig1};
pub use fig3::{fig3_system, fig3_unpartitioned, Fig3};
pub use flc::{flc, flc_full, Flc, FlcFull};
pub use synth::{synth_system, SynthConfig, SynthSystem};

//! The worked example of the paper's Figs. 3–5.
//!
//! Behaviors `P` and `Q` access variables `X` (16-bit scalar) and `MEM`
//! (64 × 16-bit array) that partitioning placed on another component:
//!
//! ```text
//! behavior P:  X <= 32 ; MEM(AD) := X + 7 ;       (CH0 write X,
//!                                                  CH1 read X,
//!                                                  CH2 write MEM)
//! behavior Q:  MEM(60) := COUNT ;                 (CH3 write MEM)
//! ```
//!
//! The four channels are grouped onto one bus whose width the paper
//! fixes at 8 bits, giving the generated `SendCH0`/`ReceiveCH0`
//! procedures two 8-bit transfers per 16-bit message (Fig. 4).

use ifsyn_spec::dsl::*;
use ifsyn_spec::{Channel, ChannelDirection, ChannelId, System, Ty, Value, VarId};

/// Handles into the Fig. 3 system.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The partitioned system (channels in place of direct accesses).
    pub system: System,
    /// CH0: `P` writes `X`.
    pub ch0: ChannelId,
    /// CH1: `P` reads `X`.
    pub ch1: ChannelId,
    /// CH2: `P` writes `MEM`.
    pub ch2: ChannelId,
    /// CH3: `Q` writes `MEM`.
    pub ch3: ChannelId,
    /// The remote scalar `X`.
    pub x: VarId,
    /// The remote array `MEM`.
    pub mem: VarId,
    /// `P`'s local copy of `X` (`Xtemp` in Fig. 5).
    pub xtemp: VarId,
}

impl Fig3 {
    /// All four channels, in ID order (CH0..CH3).
    pub fn channels(&self) -> Vec<ChannelId> {
        vec![self.ch0, self.ch1, self.ch2, self.ch3]
    }
}

/// Builds the partitioned Fig. 3 system with its four channels.
pub fn fig3_system() -> System {
    fig3().system
}

/// Builds the Fig. 3 system and returns the handle struct.
pub fn fig3() -> Fig3 {
    let mut sys = System::new("fig3");
    let left = sys.add_module("component1");
    let right = sys.add_module("component2");
    let p = sys.add_behavior("P", left);
    let q = sys.add_behavior("Q", left);
    let store = sys.add_behavior("component2_store", right);

    let x = sys.add_variable("X", Ty::Bits(16), store);
    let mem = sys.add_variable("MEM", Ty::array(Ty::Bits(16), 64), store);
    let ad = sys.add_variable_init("AD", Ty::Int(16), p, Value::int(17, 16));
    let xtemp = sys.add_variable("Xtemp", Ty::Bits(16), p);
    let count = sys.add_variable_init("COUNT", Ty::Int(16), q, Value::int(1234, 16));

    let ch0 = sys.add_channel(Channel {
        name: "CH0".into(),
        accessor: p,
        variable: x,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 0,
        accesses: 1,
    });
    let ch1 = sys.add_channel(Channel {
        name: "CH1".into(),
        accessor: p,
        variable: x,
        direction: ChannelDirection::Read,
        data_bits: 16,
        addr_bits: 0,
        accesses: 1,
    });
    let ch2 = sys.add_channel(Channel {
        name: "CH2".into(),
        accessor: p,
        variable: mem,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 6,
        accesses: 1,
    });
    let ch3 = sys.add_channel(Channel {
        name: "CH3".into(),
        accessor: q,
        variable: mem,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 6,
        accesses: 1,
    });

    // P: SendCH0(32); ReceiveCH1(Xtemp); SendCH2(AD, Xtemp + 7).
    sys.behavior_mut(p).body = vec![
        send(ch0, int_const(32, 16)),
        receive(ch1, var(xtemp)),
        send_at(ch2, load(var(ad)), add(load(var(xtemp)), int_const(7, 16))),
    ];
    // Q: SendCH3(60, COUNT).
    sys.behavior_mut(q).body = vec![send_at(ch3, int_const(60, 16), load(var(count)))];

    Fig3 {
        system: sys,
        ch0,
        ch1,
        ch2,
        ch3,
        x,
        mem,
        xtemp,
    }
}

/// The same system *before* partitioning: `P` and `Q` access `X` and
/// `MEM` directly (the left side of Fig. 1 / Fig. 3). Feed this through
/// `ifsyn_partition::Partitioner` to derive the channels automatically.
pub fn fig3_unpartitioned() -> System {
    let mut sys = System::new("fig3_unpartitioned");
    let all = sys.add_module("system");
    let p = sys.add_behavior("P", all);
    let q = sys.add_behavior("Q", all);
    let x = sys.add_variable("X", Ty::Bits(16), p);
    let mem = sys.add_variable("MEM", Ty::array(Ty::Bits(16), 64), p);
    let ad = sys.add_variable_init("AD", Ty::Int(16), p, Value::int(17, 16));
    let count = sys.add_variable_init("COUNT", Ty::Int(16), q, Value::int(1234, 16));

    // P:  X <= 32 ;  MEM(AD) := X + 7 ;
    sys.behavior_mut(p).body = vec![
        assign(var(x), int_const(32, 16)),
        assign(
            index(var(mem), load(var(ad))),
            add(load(var(x)), int_const(7, 16)),
        ),
    ];
    // Q:  MEM(60) := COUNT ;
    sys.behavior_mut(q).body = vec![assign(index(var(mem), int_const(60, 16)), load(var(count)))];
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_validates() {
        assert!(fig3_system().check().is_ok());
        assert!(fig3_unpartitioned().check().is_ok());
    }

    #[test]
    fn channel_message_sizes_match_paper() {
        let f = fig3();
        let sys = &f.system;
        assert_eq!(sys.channel(f.ch0).message_bits(), 16);
        assert_eq!(sys.channel(f.ch1).message_bits(), 16);
        assert_eq!(sys.channel(f.ch2).message_bits(), 22); // 16 + 6 addr
        assert_eq!(sys.channel(f.ch3).message_bits(), 22);
    }

    #[test]
    fn four_channels_need_two_id_bits() {
        let f = fig3();
        assert_eq!(f.channels().len(), 4);
    }
}

//! The Matsushita fuzzy logic controller (paper Fig. 6), the evaluation's
//! main case study.
//!
//! Two inputs (temperature, humidity), four rules. System partitioning
//! placed the memories on a second chip:
//!
//! * chip 1: `INITIALIZE`, `EVAL_R0..R3`, `CONV_R0..R3`,
//!   `CONVERT_FACTS`, `CONVERT_CTRL`, `CENTROID`;
//! * chip 2: `InitMemberFunct : array(1919 downto 0) of integer`,
//!   `trru0..trru3 : array(127 downto 0) of integer`,
//!   `rule1, rule3 : array(2 downto 0) of integer`.
//!
//! The evaluation's bus `B` carries exactly two channels:
//!
//! * `ch1` — `EVAL_R3` **writing** `trru0` (128 messages of 16 data +
//!   7 address bits);
//! * `ch2` — `CONV_R2` **reading** `trru2` (likewise 23-bit messages).
//!
//! Total dedicated wires 46 — the Fig. 8 baseline. `INITIALIZE`'s bulk
//! store into `InitMemberFunct` is also cross-chip but rides its own bus
//! (`ch0` here), as in the paper where only ch1/ch2 are merged onto `B`.

use ifsyn_spec::dsl::*;
use ifsyn_spec::{BehaviorId, Channel, ChannelDirection, ChannelId, Stmt, System, Ty, VarId};

/// Per-iteration computation cycles of `EVAL_R3` (rule evaluation).
pub const EVAL_COMPUTE_CYCLES: u64 = 6;
/// Per-iteration computation cycles of `CONV_R2` (convolution step).
pub const CONV_COMPUTE_CYCLES: u64 = 4;
/// Messages each of ch1/ch2 carries (the 128-entry truth arrays).
pub const FLC_ACCESSES: u64 = 128;

/// Handles into the FLC system.
#[derive(Debug, Clone)]
pub struct Flc {
    /// The partitioned system.
    pub system: System,
    /// `ch1`: `EVAL_R3` writes `trru0`.
    pub ch1: ChannelId,
    /// `ch2`: `CONV_R2` reads `trru2`.
    pub ch2: ChannelId,
    /// `ch0`: `INITIALIZE` writes `InitMemberFunct` (separate bus).
    pub ch0: ChannelId,
    /// The `EVAL_R3` process.
    pub eval_r3: BehaviorId,
    /// The `CONV_R2` process.
    pub conv_r2: BehaviorId,
    /// The `trru0` memory (written over ch1).
    pub trru0: VarId,
    /// The `trru2` memory (read over ch2).
    pub trru2: VarId,
    /// `CONV_R2`'s local output accumulator (holds the readback sum).
    pub conv_acc: VarId,
}

impl Flc {
    /// The channel group merged onto bus `B` in the paper.
    pub fn bus_channels(&self) -> Vec<ChannelId> {
        vec![self.ch1, self.ch2]
    }

    /// Total dedicated wires of the bus-`B` channels (the Fig. 8
    /// baseline): 2 × (16 + 7) = 46.
    pub fn dedicated_wires(&self) -> u32 {
        self.system.channel(self.ch1).dedicated_wires()
            + self.system.channel(self.ch2).dedicated_wires()
    }
}

/// Builds the FLC.
pub fn flc() -> Flc {
    let mut sys = System::new("fuzzy_logic_controller");
    let chip1 = sys.add_module("chip1");
    let chip2 = sys.add_module("chip2");

    // Chip 1 processes.
    let initialize = sys.add_behavior("INITIALIZE", chip1);
    let eval_r0 = sys.add_behavior("EVAL_R0", chip1);
    let eval_r1 = sys.add_behavior("EVAL_R1", chip1);
    let eval_r2 = sys.add_behavior("EVAL_R2", chip1);
    let eval_r3 = sys.add_behavior("EVAL_R3", chip1);
    let conv_r0 = sys.add_behavior("CONV_R0", chip1);
    let conv_r1 = sys.add_behavior("CONV_R1", chip1);
    let conv_r2 = sys.add_behavior("CONV_R2", chip1);
    let conv_r3 = sys.add_behavior("CONV_R3", chip1);
    let convert_facts = sys.add_behavior("CONVERT_FACTS", chip1);
    let convert_ctrl = sys.add_behavior("CONVERT_CTRL", chip1);
    let centroid = sys.add_behavior("CENTROID", chip1);

    // Chip 2 memories (hosted by a store behavior).
    let store = sys.add_behavior("chip2_store", chip2);
    let init_member_funct =
        sys.add_variable("InitMemberFunct", Ty::array(Ty::Int(16), 1920), store);
    let trru0 = sys.add_variable("trru0", Ty::array(Ty::Int(16), 128), store);
    let _trru1 = sys.add_variable("trru1", Ty::array(Ty::Int(16), 128), store);
    let trru2 = sys.add_variable_init("trru2", Ty::array(Ty::Int(16), 128), store, ramp_array(128));
    let _trru3 = sys.add_variable("trru3", Ty::array(Ty::Int(16), 128), store);
    let _rule1 = sys.add_variable("rule1", Ty::array(Ty::Int(16), 3), store);
    let _rule3 = sys.add_variable("rule3", Ty::array(Ty::Int(16), 3), store);

    // The evaluation's channels.
    let ch0 = sys.add_channel(Channel {
        name: "ch0".into(),
        accessor: initialize,
        variable: init_member_funct,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 11,
        accesses: 1920,
    });
    let ch1 = sys.add_channel(Channel {
        name: "ch1".into(),
        accessor: eval_r3,
        variable: trru0,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 7,
        accesses: FLC_ACCESSES,
    });
    let ch2 = sys.add_channel(Channel {
        name: "ch2".into(),
        accessor: conv_r2,
        variable: trru2,
        direction: ChannelDirection::Read,
        data_bits: 16,
        addr_bits: 7,
        accesses: FLC_ACCESSES,
    });

    // INITIALIZE: bulk-store the membership functions (own bus).
    let ii = sys.add_variable("init_i", Ty::Int(16), initialize);
    sys.behavior_mut(initialize).body = vec![for_loop(
        var(ii),
        int_const(0, 16),
        int_const(1919, 16),
        vec![send_at(ch0, load(var(ii)), load(var(ii)))],
    )];

    // EVAL_R3: evaluate rule 3 over the input universe, writing the
    // truth values to trru0 (the paper's ch1).
    let ei = sys.add_variable("eval_i", Ty::Int(16), eval_r3);
    let etmp = sys.add_variable("eval_t", Ty::Int(16), eval_r3);
    sys.behavior_mut(eval_r3).body = vec![for_loop(
        var(ei),
        int_const(0, 16),
        int_const(FLC_ACCESSES as i64 - 1, 16),
        vec![
            Stmt::compute(EVAL_COMPUTE_CYCLES, "evaluate rule 3 membership"),
            // Truth value: a simple deterministic function of i so the
            // memory contents are checkable after simulation.
            assign_cost(
                var(etmp),
                add(mul(load(var(ei)), int_const(3, 16)), int_const(1, 16)),
                0,
            ),
            send_at(ch1, load(var(ei)), load(var(etmp))),
        ],
    )];

    // CONV_R2: read truth values of rule 2 back and convolve (the
    // paper's ch2). Accumulates a checksum for verification.
    let ci = sys.add_variable("conv_i", Ty::Int(16), conv_r2);
    let ctmp = sys.add_variable("conv_t", Ty::Int(16), conv_r2);
    let conv_acc = sys.add_variable("conv_acc", Ty::Int(32), conv_r2);
    sys.behavior_mut(conv_r2).body = vec![for_loop(
        var(ci),
        int_const(0, 16),
        int_const(FLC_ACCESSES as i64 - 1, 16),
        vec![
            receive_at(ch2, load(var(ci)), var(ctmp)),
            Stmt::compute(CONV_COMPUTE_CYCLES, "convolve rule 2"),
            assign_cost(var(conv_acc), add(load(var(conv_acc)), load(var(ctmp))), 0),
        ],
    )];

    // The remaining processes compute locally (their memory traffic is
    // not part of the evaluation's bus B).
    for (b, cycles, note) in [
        (eval_r0, 700u64, "evaluate rule 0"),
        (eval_r1, 700, "evaluate rule 1"),
        (eval_r2, 700, "evaluate rule 2"),
        (conv_r0, 500, "convolve rule 0"),
        (conv_r1, 500, "convolve rule 1"),
        (conv_r3, 500, "convolve rule 3"),
        (convert_facts, 200, "convert input facts"),
        (convert_ctrl, 200, "convert control output"),
        (centroid, 300, "defuzzify (centroid)"),
    ] {
        sys.behavior_mut(b).body = vec![Stmt::compute(cycles, note)];
    }

    Flc {
        system: sys,
        ch1,
        ch2,
        ch0,
        eval_r3,
        conv_r2,
        trru0,
        trru2,
        conv_acc,
    }
}

/// Handles into the full FLC variant (all four rule pipelines wired).
#[derive(Debug, Clone)]
pub struct FlcFull {
    /// The partitioned system.
    pub system: System,
    /// `EVAL_Rk` writes `trru_k`: four write channels.
    pub eval_channels: Vec<ChannelId>,
    /// `CONV_Rk` reads `trru_k`: four read channels.
    pub conv_channels: Vec<ChannelId>,
    /// The four EVAL behaviors.
    pub evals: Vec<BehaviorId>,
    /// The four CONV behaviors.
    pub convs: Vec<BehaviorId>,
    /// The four truth-value memories.
    pub trrus: Vec<VarId>,
    /// Per-CONV checksum accumulators.
    pub accs: Vec<VarId>,
}

impl FlcFull {
    /// All eight channels: the write channels, then the read channels.
    pub fn all_channels(&self) -> Vec<ChannelId> {
        self.eval_channels
            .iter()
            .chain(&self.conv_channels)
            .copied()
            .collect()
    }
}

/// Builds the full FLC: every `EVAL_Rk` streams 128 truth values into
/// `trru_k` and every `CONV_Rk` reads them back — eight cross-chip
/// channels, a workload rich enough to *require* bus splitting (a
/// single bus cannot satisfy Eq. 1 for all eight).
pub fn flc_full() -> FlcFull {
    let mut sys = System::new("fuzzy_logic_controller_full");
    let chip1 = sys.add_module("chip1");
    let chip2 = sys.add_module("chip2");
    let store = sys.add_behavior("chip2_store", chip2);

    let mut eval_channels = Vec::new();
    let mut conv_channels = Vec::new();
    let mut evals = Vec::new();
    let mut convs = Vec::new();
    let mut trrus = Vec::new();
    let mut accs = Vec::new();
    for k in 0..4i64 {
        let trru = sys.add_variable(format!("trru{k}"), Ty::array(Ty::Int(16), 128), store);
        let eval = sys.add_behavior(format!("EVAL_R{k}"), chip1);
        let conv = sys.add_behavior(format!("CONV_R{k}"), chip1);
        let ch_w = sys.add_channel(Channel {
            name: format!("eval_ch{k}"),
            accessor: eval,
            variable: trru,
            direction: ChannelDirection::Write,
            data_bits: 16,
            addr_bits: 7,
            accesses: FLC_ACCESSES,
        });
        let ch_r = sys.add_channel(Channel {
            name: format!("conv_ch{k}"),
            accessor: conv,
            variable: trru,
            direction: ChannelDirection::Read,
            data_bits: 16,
            addr_bits: 7,
            accesses: FLC_ACCESSES,
        });
        let ei = sys.add_variable(format!("eval_i{k}"), Ty::Int(16), eval);
        sys.behavior_mut(eval).body = vec![for_loop(
            var(ei),
            int_const(0, 16),
            int_const(FLC_ACCESSES as i64 - 1, 16),
            vec![
                Stmt::compute(EVAL_COMPUTE_CYCLES, "evaluate rule"),
                send_at(
                    ch_w,
                    load(var(ei)),
                    add(mul(load(var(ei)), int_const(k + 1, 16)), int_const(k, 16)),
                ),
            ],
        )];
        let ci = sys.add_variable(format!("conv_i{k}"), Ty::Int(16), conv);
        let ct = sys.add_variable(format!("conv_t{k}"), Ty::Int(16), conv);
        let acc = sys.add_variable(format!("conv_acc{k}"), Ty::Int(32), conv);
        // Each CONV starts after its EVAL has streamed: model the data
        // dependency with an initial delay covering the EVAL pass at the
        // narrowest realistic bus (so reads observe final values).
        sys.behavior_mut(conv).body = vec![
            Stmt::compute(
                FLC_ACCESSES * (EVAL_COMPUTE_CYCLES + 4 * 46),
                "wait for rule evaluation phase",
            ),
            for_loop(
                var(ci),
                int_const(0, 16),
                int_const(FLC_ACCESSES as i64 - 1, 16),
                vec![
                    receive_at(ch_r, load(var(ci)), var(ct)),
                    Stmt::compute(CONV_COMPUTE_CYCLES, "convolve"),
                    assign_cost(var(acc), add(load(var(acc)), load(var(ct))), 0),
                ],
            ),
        ];
        eval_channels.push(ch_w);
        conv_channels.push(ch_r);
        evals.push(eval);
        convs.push(conv);
        trrus.push(trru);
        accs.push(acc);
    }

    FlcFull {
        system: sys,
        eval_channels,
        conv_channels,
        evals,
        convs,
        trrus,
        accs,
    }
}

/// The checksum `CONV_Rk` must accumulate when reads happen after the
/// whole evaluation phase: `Σ_i ((k+1)·i + k)`.
pub fn expected_full_checksum(k: i64) -> i64 {
    (0..FLC_ACCESSES as i64).map(|i| (k + 1) * i + k).sum()
}

/// Handles into the reduced FLC variant (see [`flc_reduced`]).
#[derive(Debug, Clone)]
pub struct FlcReduced {
    /// The two-process system.
    pub system: System,
    /// `ch1`: `EVAL_R3` writes `trru0`.
    pub ch1: ChannelId,
    /// `ch2`: `CONV_R2` reads `trru2`.
    pub ch2: ChannelId,
    /// The `trru0` memory (written over ch1).
    pub trru0: VarId,
    /// `CONV_R2`'s checksum accumulator.
    pub conv_acc: VarId,
    /// Messages each channel carries.
    pub accesses: u64,
}

impl FlcReduced {
    /// The channels merged onto the shared bus.
    pub fn channels(&self) -> Vec<ChannelId> {
        vec![self.ch1, self.ch2]
    }

    /// Final `trru0` contents after a clean run: `Σ (3i + 1)`.
    pub fn expected_trru0_sum(&self) -> i64 {
        (0..self.accesses as i64).map(|i| 3 * i + 1).sum()
    }

    /// Final `conv_acc` value after a clean run: `Σ (2i + 5)`.
    pub fn expected_checksum(&self) -> i64 {
        (0..self.accesses as i64).map(|i| 2 * i + 5).sum()
    }
}

/// Builds a reduced FLC for exhaustive model checking: the same
/// `EVAL_R3` → `trru0` write channel and `CONV_R2` ← `trru2` read
/// channel as [`flc`] (so the generated bus protocol is identical in
/// shape), but with the truth arrays sized down to `accesses` entries
/// and every process not on bus `B` omitted. The full 128-access FLC is
/// far beyond exhaustive reach; at 2 accesses the refined system's
/// state space is small enough to enumerate completely while still
/// exercising arbitration between two concurrent clients, multi-word
/// transfers, and both channel directions.
pub fn flc_reduced(accesses: u64) -> FlcReduced {
    let n = accesses as i64;
    let mut sys = System::new("fuzzy_logic_controller_reduced");
    let chip1 = sys.add_module("chip1");
    let chip2 = sys.add_module("chip2");

    let eval_r3 = sys.add_behavior("EVAL_R3", chip1);
    let conv_r2 = sys.add_behavior("CONV_R2", chip1);
    let store = sys.add_behavior("chip2_store", chip2);
    let trru0 = sys.add_variable("trru0", Ty::array(Ty::Int(16), accesses as u32), store);
    let trru2 = sys.add_variable_init(
        "trru2",
        Ty::array(Ty::Int(16), accesses as u32),
        store,
        ramp_array(n),
    );

    let ch1 = sys.add_channel(Channel {
        name: "ch1".into(),
        accessor: eval_r3,
        variable: trru0,
        direction: ChannelDirection::Write,
        data_bits: 16,
        addr_bits: 7,
        accesses,
    });
    let ch2 = sys.add_channel(Channel {
        name: "ch2".into(),
        accessor: conv_r2,
        variable: trru2,
        direction: ChannelDirection::Read,
        data_bits: 16,
        addr_bits: 7,
        accesses,
    });

    let ei = sys.add_variable("eval_i", Ty::Int(16), eval_r3);
    let etmp = sys.add_variable("eval_t", Ty::Int(16), eval_r3);
    sys.behavior_mut(eval_r3).body = vec![for_loop(
        var(ei),
        int_const(0, 16),
        int_const(n - 1, 16),
        vec![
            assign_cost(
                var(etmp),
                add(mul(load(var(ei)), int_const(3, 16)), int_const(1, 16)),
                0,
            ),
            send_at(ch1, load(var(ei)), load(var(etmp))),
        ],
    )];

    let ci = sys.add_variable("conv_i", Ty::Int(16), conv_r2);
    let ctmp = sys.add_variable("conv_t", Ty::Int(16), conv_r2);
    let conv_acc = sys.add_variable("conv_acc", Ty::Int(32), conv_r2);
    sys.behavior_mut(conv_r2).body = vec![for_loop(
        var(ci),
        int_const(0, 16),
        int_const(n - 1, 16),
        vec![
            receive_at(ch2, load(var(ci)), var(ctmp)),
            assign_cost(var(conv_acc), add(load(var(conv_acc)), load(var(ctmp))), 0),
        ],
    )];

    FlcReduced {
        system: sys,
        ch1,
        ch2,
        trru0,
        conv_acc,
        accesses,
    }
}

/// trru2's initial contents: a ramp `2*i + 5` (so readback sums are
/// checkable).
fn ramp_array(len: i64) -> ifsyn_spec::Value {
    ifsyn_spec::Value::Array(
        (0..len)
            .map(|i| ifsyn_spec::Value::int(2 * i + 5, 16))
            .collect(),
    )
}

/// The checksum CONV_R2 must accumulate: `Σ (2i + 5)` over 128 entries.
pub fn expected_conv_checksum() -> i64 {
    (0..128).map(|i| 2 * i + 5).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flc_validates() {
        assert!(flc().system.check().is_ok());
    }

    #[test]
    fn channel_sizes_match_paper() {
        let f = flc();
        let sys = &f.system;
        assert_eq!(sys.channel(f.ch1).message_bits(), 23);
        assert_eq!(sys.channel(f.ch2).message_bits(), 23);
        assert_eq!(f.dedicated_wires(), 46);
        assert_eq!(sys.channel(f.ch0).message_bits(), 27); // 16 + 11
    }

    #[test]
    fn trru_arrays_are_128_entries() {
        let f = flc();
        assert_eq!(f.system.variable(f.trru0).ty.len(), 128);
        assert_eq!(f.system.variable(f.trru2).ty.len(), 128);
    }

    #[test]
    fn init_member_funct_is_1920_entries() {
        let f = flc();
        let v = f.system.variable_by_name("InitMemberFunct").unwrap();
        assert_eq!(f.system.variable(v).ty.len(), 1920);
    }

    #[test]
    fn twelve_chip1_processes_exist() {
        let f = flc();
        let chip1 = ifsyn_spec::ModuleId::new(0);
        let count = f
            .system
            .behaviors
            .iter()
            .filter(|b| b.module == chip1)
            .count();
        assert_eq!(count, 12);
    }

    #[test]
    fn checksum_constant_matches_ramp() {
        assert_eq!(expected_conv_checksum(), (0..128).map(|i| 2 * i + 5).sum());
    }
}

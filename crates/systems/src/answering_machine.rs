//! The telephone answering machine (paper §5).
//!
//! A controller monitors the line, plays the greeting and records
//! incoming messages. Partitioning places the two sample memories on a
//! memory chip; interface synthesis merges the resulting channels onto
//! one bus. The model starts *unpartitioned* and runs through
//! `ifsyn-partition`, exercising the pipeline the paper's Fig. 1 shows.

use ifsyn_partition::Partitioner;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{ChannelId, Stmt, System, Ty, Value};

/// Greeting memory length (8-bit samples).
pub const GREETING_LEN: i64 = 96;
/// Message memory length (8-bit samples).
pub const MESSAGE_LEN: i64 = 160;

/// Handles into the partitioned answering machine.
#[derive(Debug, Clone)]
pub struct AnsweringMachine {
    /// The partitioned system.
    pub system: System,
    /// All derived channels.
    pub channels: Vec<ChannelId>,
    /// Channel groups by module pair (bus candidates).
    pub groups: Vec<Vec<ChannelId>>,
}

/// Builds the unpartitioned answering machine specification.
pub fn answering_machine_unpartitioned() -> System {
    let mut sys = System::new("answering_machine");
    let all = sys.add_module("system");

    let controller = sys.add_behavior("CONTROLLER", all);
    let play_greeting = sys.add_behavior("PLAY_GREETING", all);
    let record_msg = sys.add_behavior("RECORD_MSG", all);

    // Memories (to be moved to the memory chip by partitioning).
    let greeting = sys.add_variable_init(
        "GREETING",
        Ty::array(Ty::Bits(8), GREETING_LEN as u32),
        play_greeting,
        Value::Array(
            (0..GREETING_LEN)
                .map(|i| Value::Bits(ifsyn_spec::BitVec::from_u64((i as u64 * 7) & 0xff, 8)))
                .collect(),
        ),
    );
    let messages = sys.add_variable(
        "MESSAGES",
        Ty::array(Ty::Bits(8), MESSAGE_LEN as u32),
        record_msg,
    );
    let status = sys.add_variable("MACHINE_STATUS", Ty::Bits(8), controller);

    // CONTROLLER: detect ring, set status, wait out the call.
    sys.behavior_mut(controller).body = vec![
        Stmt::compute(20, "monitor line for ring"),
        assign(var(status), bits_const(0x01, 8)), // ANSWERING
        Stmt::compute(40, "off-hook sequence"),
        assign(var(status), bits_const(0x02, 8)), // RECORDING
    ];

    // PLAY_GREETING: stream the greeting samples out (reads GREETING).
    let gi = sys.add_variable("g_i", Ty::Int(16), play_greeting);
    let gsample = sys.add_variable("g_sample", Ty::Bits(8), play_greeting);
    sys.behavior_mut(play_greeting).body = vec![for_loop(
        var(gi),
        int_const(0, 16),
        int_const(GREETING_LEN - 1, 16),
        vec![
            assign(var(gsample), load(index(var(greeting), load(var(gi))))),
            Stmt::compute(2, "drive DAC sample"),
        ],
    )];

    // RECORD_MSG: digitise the line and store samples (writes MESSAGES).
    let ri = sys.add_variable("r_i", Ty::Int(16), record_msg);
    sys.behavior_mut(record_msg).body = vec![for_loop(
        var(ri),
        int_const(0, 16),
        int_const(MESSAGE_LEN - 1, 16),
        vec![
            Stmt::compute(3, "sample ADC"),
            assign(index(var(messages), load(var(ri))), load(var(ri))),
        ],
    )];

    sys
}

/// Builds and partitions the answering machine: processes on
/// `ctrl_chip`, both sample memories on `mem_chip`.
pub fn answering_machine() -> AnsweringMachine {
    let sys = answering_machine_unpartitioned();
    let result = Partitioner::new()
        .place_behavior("CONTROLLER", "ctrl_chip")
        .place_behavior("PLAY_GREETING", "ctrl_chip")
        .place_behavior("RECORD_MSG", "ctrl_chip")
        .place_variable("GREETING", "mem_chip")
        .place_variable("MESSAGES", "mem_chip")
        .partition(&sys)
        .expect("answering machine partition is well-formed");
    let groups = result.channel_groups();
    AnsweringMachine {
        system: result.system,
        channels: result.channels,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::ChannelDirection;

    #[test]
    fn partition_derives_two_memory_channels() {
        let am = answering_machine();
        // PLAY_GREETING reads GREETING; RECORD_MSG writes MESSAGES.
        assert_eq!(am.channels.len(), 2);
        let dirs: Vec<_> = am
            .channels
            .iter()
            .map(|&c| am.system.channel(c).direction)
            .collect();
        assert!(dirs.contains(&ChannelDirection::Read));
        assert!(dirs.contains(&ChannelDirection::Write));
    }

    #[test]
    fn channels_group_onto_one_bus() {
        let am = answering_machine();
        assert_eq!(am.groups.len(), 1);
        assert_eq!(am.groups[0].len(), 2);
    }

    #[test]
    fn access_counts_match_loop_bounds() {
        let am = answering_machine();
        let counts: Vec<u64> = am
            .channels
            .iter()
            .map(|&c| am.system.channel(c).accesses)
            .collect();
        assert!(counts.contains(&(GREETING_LEN as u64)));
        assert!(counts.contains(&(MESSAGE_LEN as u64)));
    }

    #[test]
    fn partitioned_system_validates() {
        assert!(answering_machine().system.check().is_ok());
    }
}

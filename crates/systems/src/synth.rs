//! Deterministic synthetic-system generator.
//!
//! The paper's examples top out at a handful of behaviors, which is the
//! wrong scale for exercising the parallel delta-cycle kernel or the
//! clustering heuristics: every process fits one shard and every sweep
//! finishes before the thread pool warms up. This module generates
//! arbitrarily large, *deterministic* systems — seeded by an in-tree
//! [`SplitMix64`] stream, so equal configurations always produce
//! structurally identical specifications.
//!
//! The generated shape is a field of producer/consumer **couples**. Each
//! couple is a pair of behaviors that share no variables (so the shard
//! planner may split them freely) and talk through two private signals:
//!
//! ```text
//! producer i:  loop rounds {            consumer i:  loop rounds {
//!     compute (zero-cost, ~depth ops)       wait until req_i = r+1
//!     data_i <= acc                         fold data_i into sum
//!     req_i  <= r+1                         compute (zero-cost)
//!     wait until ack_i = r+1                ack_i <= r+1
//! }                                     }
//! ```
//!
//! Every producer additionally drives one shared `clash` signal each
//! round (when [`SynthConfig::conflicts`] is on), forcing same-delta
//! write conflicts whose resolution order must match the scalar kernel
//! exactly. The per-couple compute depth is jittered by the seed, so
//! shards finish rounds at different instruction counts — which is what
//! makes the barrier-stall counters of the parallel kernel non-trivial.

use ifsyn_spec::dsl::*;
use ifsyn_spec::rng::SplitMix64;
use ifsyn_spec::{BehaviorId, SignalId, Stmt, System, Ty, Value};

/// Parameters of the synthetic system. All fields are structural: two
/// equal configurations generate byte-identical systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Modules to spread behaviors over (round-robin); at least 1.
    pub modules: usize,
    /// Producer/consumer couples; each contributes two behaviors and two
    /// private signals (the paper's "channels" at the virtual level).
    pub couples: usize,
    /// Handshake rounds each couple completes before finishing.
    pub rounds: u64,
    /// Nominal zero-cost compute operations per round and side; the
    /// actual per-couple depth is jittered ±25% by the seed.
    pub compute: u64,
    /// Drive a shared `clash` signal from every producer every round,
    /// forcing cross-shard same-delta write conflicts.
    pub conflicts: bool,
    /// Cycle cost of each compute-loop iteration. The default 0 keeps
    /// the generated system byte-identical to earlier revisions (the
    /// whole loop runs inside one delta). A nonzero cost turns every
    /// iteration into a scheduling point, which is what makes the
    /// generated field a state-space stress for the model checker: each
    /// compute step becomes a distinct time-abstracted checker state.
    pub compute_cost: u32,
    /// Seed of the deterministic structure jitter.
    pub seed: u64,
}

impl SynthConfig {
    /// A small default: 2 modules, 4 couples, 16 rounds, 64 compute ops.
    pub fn new() -> Self {
        Self {
            modules: 2,
            couples: 4,
            rounds: 16,
            compute: 64,
            conflicts: true,
            compute_cost: 0,
            seed: 0x5e_ed,
        }
    }

    /// Builder-style setter for [`SynthConfig::modules`].
    pub fn with_modules(mut self, modules: usize) -> Self {
        self.modules = modules.max(1);
        self
    }

    /// Builder-style setter for [`SynthConfig::couples`].
    pub fn with_couples(mut self, couples: usize) -> Self {
        self.couples = couples.max(1);
        self
    }

    /// Builder-style setter for [`SynthConfig::rounds`].
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Builder-style setter for [`SynthConfig::compute`].
    pub fn with_compute(mut self, compute: u64) -> Self {
        self.compute = compute.max(1);
        self
    }

    /// Builder-style setter for [`SynthConfig::compute_cost`].
    pub fn with_compute_cost(mut self, cost: u32) -> Self {
        self.compute_cost = cost;
        self
    }

    /// Builder-style setter for [`SynthConfig::seed`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style switch disabling the shared `clash` signal.
    pub fn without_conflicts(mut self) -> Self {
        self.conflicts = false;
        self
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A generated system plus the handles tests and benchmarks need.
#[derive(Debug, Clone)]
pub struct SynthSystem {
    /// The generated specification.
    pub system: System,
    /// Producer behavior of each couple.
    pub producers: Vec<BehaviorId>,
    /// Consumer behavior of each couple.
    pub consumers: Vec<BehaviorId>,
    /// Per-couple payload signal (`data_i`).
    pub data: Vec<SignalId>,
    /// Per-couple handshake-back signal (`ack_i`).
    pub ack: Vec<SignalId>,
    /// The shared conflict signal, when [`SynthConfig::conflicts`] is on.
    pub clash: Option<SignalId>,
}

/// Generates the synthetic producer/consumer field described in the
/// module docs. Deterministic: equal configs yield identical systems.
pub fn synth_system(cfg: &SynthConfig) -> SynthSystem {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut sys = System::new("synth");
    let modules: Vec<_> = (0..cfg.modules.max(1))
        .map(|m| sys.add_module(format!("m{m}")))
        .collect();
    let clash = cfg
        .conflicts
        .then(|| sys.add_signal_init("clash", Ty::Int(32), Value::int(0, 32)));

    let mut producers = Vec::with_capacity(cfg.couples);
    let mut consumers = Vec::with_capacity(cfg.couples);
    let mut data_sigs = Vec::with_capacity(cfg.couples);
    let mut ack_sigs = Vec::with_capacity(cfg.couples);

    let rounds = cfg.rounds.max(1) as i64;
    for i in 0..cfg.couples.max(1) {
        // Structure jitter: compute depth ±25%, small odd multipliers.
        // Drawn in a fixed order so the stream stays aligned per couple.
        let lo = (cfg.compute.max(1) * 3) / 4;
        let hi = (cfg.compute.max(1) * 5) / 4;
        let depth = rng.range_u64(lo.max(1), hi.max(1)) as i64;
        let prod_mult = 2 * rng.range_i64(1, 4) + 1;
        let cons_mult = 2 * rng.range_i64(1, 4) + 1;
        let acc_init = rng.range_i64(1, 1 << 20);

        let data = sys.add_signal_init(format!("data{i}"), Ty::Int(32), Value::int(0, 32));
        let req = sys.add_signal_init(format!("req{i}"), Ty::Int(32), Value::int(0, 32));
        let ack = sys.add_signal_init(format!("ack{i}"), Ty::Int(32), Value::int(0, 32));

        // Producer: compute, publish, handshake. All couple state is
        // private, so the shard planner owes it nothing.
        let p = sys.add_behavior(format!("prod{i}"), modules[(2 * i) % modules.len()]);
        let acc = sys.add_variable_init(
            format!("p{i}_acc"),
            Ty::Int(32),
            p,
            Value::int(acc_init, 32),
        );
        let pk = sys.add_variable(format!("p{i}_k"), Ty::Int(32), p);
        let pr = sys.add_variable(format!("p{i}_r"), Ty::Int(32), p);
        let mut round = vec![
            Stmt::compute(1, "produce"),
            for_loop(
                var(pk),
                int_const(0, 32),
                int_const(depth - 1, 32),
                vec![assign_cost(
                    var(acc),
                    add(mul(load(var(acc)), int_const(prod_mult, 32)), load(var(pk))),
                    cfg.compute_cost,
                )],
            ),
            assign_cost(var(acc), add(load(var(acc)), load(var(pr))), 0),
            drive_cost(data, load(var(acc)), 0),
        ];
        if let Some(clash) = clash {
            round.push(drive_cost(clash, load(var(acc)), 0));
        }
        round.push(drive_cost(req, add(load(var(pr)), int_const(1, 32)), 0));
        round.push(wait_until(eq(
            signal(ack),
            add(load(var(pr)), int_const(1, 32)),
        )));
        sys.behavior_mut(p).body = vec![for_loop(
            var(pr),
            int_const(0, 32),
            int_const(rounds - 1, 32),
            round,
        )];

        // Consumer: wait, fold the payload, compute, acknowledge.
        let c = sys.add_behavior(format!("cons{i}"), modules[(2 * i + 1) % modules.len()]);
        let sum = sys.add_variable(format!("c{i}_sum"), Ty::Int(32), c);
        let ck = sys.add_variable(format!("c{i}_k"), Ty::Int(32), c);
        let cr = sys.add_variable(format!("c{i}_r"), Ty::Int(32), c);
        sys.behavior_mut(c).body = vec![for_loop(
            var(cr),
            int_const(0, 32),
            int_const(rounds - 1, 32),
            vec![
                wait_until(eq(signal(req), add(load(var(cr)), int_const(1, 32)))),
                assign_cost(var(sum), add(load(var(sum)), signal(data)), 0),
                for_loop(
                    var(ck),
                    int_const(0, 32),
                    int_const(depth - 1, 32),
                    vec![assign_cost(
                        var(sum),
                        add(mul(load(var(sum)), int_const(cons_mult, 32)), load(var(ck))),
                        cfg.compute_cost,
                    )],
                ),
                drive_cost(ack, add(load(var(cr)), int_const(1, 32)), 0),
            ],
        )];

        producers.push(p);
        consumers.push(c);
        data_sigs.push(data);
        ack_sigs.push(ack);
    }

    SynthSystem {
        system: sys,
        producers,
        consumers,
        data: data_sigs,
        ack: ack_sigs,
        clash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::new().with_couples(6).with_seed(99);
        let a = synth_system(&cfg);
        let b = synth_system(&cfg);
        assert_eq!(format!("{:?}", a.system), format!("{:?}", b.system));
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_system(&SynthConfig::new().with_seed(1));
        let b = synth_system(&SynthConfig::new().with_seed(2));
        assert_ne!(format!("{:?}", a.system), format!("{:?}", b.system));
    }

    #[test]
    fn generated_system_validates() {
        let s = synth_system(&SynthConfig::new().with_modules(3).with_couples(5));
        assert!(s.system.check().is_ok());
        assert_eq!(s.producers.len(), 5);
        assert_eq!(s.consumers.len(), 5);
        assert_eq!(s.system.behaviors.len(), 10);
    }

    #[test]
    fn compute_cost_defaults_to_zero_and_stretches_the_schedule() {
        let base = SynthConfig::new().with_couples(2).with_rounds(2);
        // Default: byte-identical to the pre-compute_cost generator.
        let a = synth_system(&base);
        let b = synth_system(&base.clone().with_compute_cost(0));
        assert_eq!(format!("{:?}", a.system), format!("{:?}", b.system));
        // Nonzero cost only changes statement costs, never the structure:
        // the system still validates and completes, just over more cycles.
        let costed = synth_system(&base.with_compute_cost(1));
        assert!(costed.system.check().is_ok());
        let cheap = ifsyn_sim::Simulator::new(&a.system)
            .expect("compiles")
            .run_to_quiescence()
            .expect("quiesces");
        let slow = ifsyn_sim::Simulator::new(&costed.system)
            .expect("compiles")
            .run_to_quiescence()
            .expect("quiesces");
        assert!(slow.time() > cheap.time());
    }

    #[test]
    fn couples_complete_all_rounds() {
        let s = synth_system(&SynthConfig::new().with_couples(2).with_rounds(4));
        let report = ifsyn_sim::Simulator::new(&s.system)
            .expect("synth system compiles")
            .run_to_quiescence()
            .expect("synth system quiesces");
        for (&p, &c) in s.producers.iter().zip(&s.consumers) {
            assert!(report.finish_time(p).is_some(), "producer finished");
            assert!(report.finish_time(c).is_some(), "consumer finished");
        }
        // Every handshake completed: the ack counters reached `rounds`.
        for i in 0..s.ack.len() {
            let v = report
                .final_signal_by_name(&format!("ack{i}"))
                .expect("ack signal exists");
            assert_eq!(v.as_i64().expect("int signal"), 4);
        }
    }
}

//! The Ethernet network coprocessor (paper §5).
//!
//! Receive and transmit units move frames between the wire and shared
//! frame buffers; a DMA engine drains received frames to the host and
//! feeds outgoing frames. Partitioning places the frame buffers on a
//! buffer-memory chip; the rx/tx/dma channels are candidates for
//! merging.

use ifsyn_partition::Partitioner;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{ChannelId, Stmt, System, Ty};

/// Receive buffer length (16-bit words).
pub const RCV_BUF_LEN: i64 = 128;
/// Transmit buffer length (16-bit words).
pub const XMIT_BUF_LEN: i64 = 128;
/// Words per frame moved by each unit in the modelled burst.
pub const FRAME_WORDS: i64 = 64;

/// Handles into the partitioned Ethernet coprocessor.
#[derive(Debug, Clone)]
pub struct EthernetCoprocessor {
    /// The partitioned system.
    pub system: System,
    /// All derived channels.
    pub channels: Vec<ChannelId>,
    /// Channel groups by module pair (bus candidates).
    pub groups: Vec<Vec<ChannelId>>,
}

/// Builds the unpartitioned Ethernet coprocessor specification.
pub fn ethernet_unpartitioned() -> System {
    let mut sys = System::new("ethernet_coprocessor");
    let all = sys.add_module("system");

    let rcv_unit = sys.add_behavior("RCV_UNIT", all);
    let xmit_unit = sys.add_behavior("XMIT_UNIT", all);
    let dma_rcv = sys.add_behavior("DMA_RCV", all);
    let dma_xmit = sys.add_behavior("DMA_XMIT", all);
    let exec_unit = sys.add_behavior("EXEC_UNIT", all);

    let rcv_buffer = sys.add_variable(
        "RCV_BUFFER",
        Ty::array(Ty::Bits(16), RCV_BUF_LEN as u32),
        rcv_unit,
    );
    let xmit_buffer = sys.add_variable_init(
        "XMIT_BUFFER",
        Ty::array(Ty::Bits(16), XMIT_BUF_LEN as u32),
        xmit_unit,
        ifsyn_spec::Value::Array(
            (0..XMIT_BUF_LEN)
                .map(|i| {
                    ifsyn_spec::Value::Bits(ifsyn_spec::BitVec::from_u64(
                        (i as u64).wrapping_mul(0x2d) & 0xffff,
                        16,
                    ))
                })
                .collect(),
        ),
    );
    let csr = sys.add_variable("CSR", Ty::Bits(16), exec_unit);

    // RCV_UNIT: deserialise a frame from the wire into RCV_BUFFER.
    let rj = sys.add_variable("rcv_j", Ty::Int(16), rcv_unit);
    sys.behavior_mut(rcv_unit).body = vec![for_loop(
        var(rj),
        int_const(0, 16),
        int_const(FRAME_WORDS - 1, 16),
        vec![
            Stmt::compute(12, "deserialise word from MII"),
            assign(index(var(rcv_buffer), load(var(rj))), load(var(rj))),
        ],
    )];

    // XMIT_UNIT: serialise a frame from XMIT_BUFFER onto the wire.
    let xj = sys.add_variable("xmit_j", Ty::Int(16), xmit_unit);
    let xw = sys.add_variable("xmit_w", Ty::Bits(16), xmit_unit);
    sys.behavior_mut(xmit_unit).body = vec![for_loop(
        var(xj),
        int_const(0, 16),
        int_const(FRAME_WORDS - 1, 16),
        vec![
            assign(var(xw), load(index(var(xmit_buffer), load(var(xj))))),
            Stmt::compute(12, "serialise word to MII"),
        ],
    )];

    // DMA_RCV: drain the received frame to the host.
    let dj = sys.add_variable("dma_r_j", Ty::Int(16), dma_rcv);
    let dw = sys.add_variable("dma_r_w", Ty::Bits(16), dma_rcv);
    sys.behavior_mut(dma_rcv).body = vec![
        Stmt::compute(30, "await frame-complete"),
        for_loop(
            var(dj),
            int_const(0, 16),
            int_const(FRAME_WORDS - 1, 16),
            vec![
                assign(var(dw), load(index(var(rcv_buffer), load(var(dj))))),
                Stmt::compute(6, "host write"),
            ],
        ),
    ];

    // DMA_XMIT: stage the next outgoing frame.
    let ej = sys.add_variable("dma_x_j", Ty::Int(16), dma_xmit);
    sys.behavior_mut(dma_xmit).body = vec![
        Stmt::compute(25, "await host descriptor"),
        for_loop(
            var(ej),
            int_const(0, 16),
            int_const(FRAME_WORDS - 1, 16),
            vec![
                Stmt::compute(6, "host read"),
                assign(index(var(xmit_buffer), load(var(ej))), load(var(ej))),
            ],
        ),
    ];

    // EXEC_UNIT: command/status bookkeeping, local.
    sys.behavior_mut(exec_unit).body = vec![
        Stmt::compute(10, "decode command"),
        assign(var(csr), bits_const(0x8000, 16)),
    ];

    sys
}

/// Builds and partitions the Ethernet coprocessor: datapath units on
/// `mac_chip`, frame buffers on `buf_chip`.
pub fn ethernet_coprocessor() -> EthernetCoprocessor {
    let sys = ethernet_unpartitioned();
    let result = Partitioner::new()
        .place_behavior("RCV_UNIT", "mac_chip")
        .place_behavior("XMIT_UNIT", "mac_chip")
        .place_behavior("DMA_RCV", "mac_chip")
        .place_behavior("DMA_XMIT", "mac_chip")
        .place_behavior("EXEC_UNIT", "mac_chip")
        .place_variable("RCV_BUFFER", "buf_chip")
        .place_variable("XMIT_BUFFER", "buf_chip")
        .partition(&sys)
        .expect("ethernet partition is well-formed");
    let groups = result.channel_groups();
    EthernetCoprocessor {
        system: result.system,
        channels: result.channels,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::ChannelDirection;

    #[test]
    fn partition_derives_four_buffer_channels() {
        let eth = ethernet_coprocessor();
        // RCV writes RCV_BUFFER, XMIT reads XMIT_BUFFER,
        // DMA_RCV reads RCV_BUFFER, DMA_XMIT writes XMIT_BUFFER.
        assert_eq!(eth.channels.len(), 4);
        let reads = eth
            .channels
            .iter()
            .filter(|&&c| eth.system.channel(c).direction == ChannelDirection::Read)
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn all_channels_share_one_module_pair() {
        let eth = ethernet_coprocessor();
        assert_eq!(eth.groups.len(), 1);
        assert_eq!(eth.groups[0].len(), 4);
    }

    #[test]
    fn frame_channels_move_64_words() {
        let eth = ethernet_coprocessor();
        for &c in &eth.channels {
            assert_eq!(eth.system.channel(c).accesses, FRAME_WORDS as u64);
            assert_eq!(eth.system.channel(c).message_bits(), 16 + 7);
        }
    }

    #[test]
    fn partitioned_system_validates() {
        assert!(ethernet_coprocessor().system.check().is_ok());
    }
}

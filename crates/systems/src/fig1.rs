//! The paper's Fig. 1 motivating example: a processor-like process `A`
//! whose memory `MEM` and status register `STATUS` are moved to a
//! second module by system partitioning.
//!
//! ```text
//! process A:            IR  <= MEM(PC) ;
//!                       STATUS <= x"0A" ;
//!                       MEM(AR) <= ACCUM ;
//! ```
//!
//! After partitioning, `A` reaches `MEM` over channels ch1 (read) and
//! ch2 (write) and `STATUS` over ch3 — exactly the three channels the
//! figure groups into bus `B`.

use ifsyn_partition::Partitioner;
use ifsyn_spec::dsl::*;
use ifsyn_spec::{ChannelId, Stmt, System, Ty, Value};

/// Number of fetch/execute iterations process `A` performs.
pub const FIG1_ITERATIONS: i64 = 16;

/// Handles into the partitioned Fig. 1 system.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The partitioned system.
    pub system: System,
    /// The derived channels (A<MEM read, A>MEM write, A>STATUS write).
    pub channels: Vec<ChannelId>,
    /// Channel groups by module pair.
    pub groups: Vec<Vec<ChannelId>>,
}

/// Builds the unpartitioned Fig. 1 specification: everything in one
/// module, `A` accessing `MEM` and `STATUS` directly.
pub fn fig1_unpartitioned() -> System {
    let mut sys = System::new("fig1");
    let all = sys.add_module("system");
    let a = sys.add_behavior("A", all);

    let mem = sys.add_variable_init(
        "MEM",
        Ty::array(Ty::Bits(16), 64),
        a,
        Value::Array(
            (0..64)
                .map(|i| Value::Bits(ifsyn_spec::BitVec::from_u64(0x1000 + i, 16)))
                .collect(),
        ),
    );
    let status = sys.add_variable("STATUS", Ty::Bits(8), a);
    let ir = sys.add_variable("IR", Ty::Bits(16), a);
    let pc = sys.add_variable("PC", Ty::Int(16), a);
    let ar = sys.add_variable_init("AR", Ty::Int(16), a, Value::int(32, 16));
    let accum = sys.add_variable("ACCUM", Ty::Int(16), a);
    let step = sys.add_variable("step", Ty::Int(16), a);

    // The fetch/execute loop of the figure's code fragment.
    sys.behavior_mut(a).body = vec![for_loop(
        var(step),
        int_const(0, 16),
        int_const(FIG1_ITERATIONS - 1, 16),
        vec![
            // IR <= MEM(PC) ;
            assign(var(ir), load(index(var(mem), load(var(pc))))),
            // decode/execute.
            Stmt::compute(3, "decode and execute"),
            assign(var(accum), add(load(var(accum)), load(var(ir)))),
            // STATUS <= x"0A" ;
            assign(var(status), bits_const(0x0a, 8)),
            // MEM(AR) <= ACCUM ;
            assign(
                index(var(mem), add(load(var(ar)), load(var(step)))),
                load(var(accum)),
            ),
            assign(var(pc), add(load(var(pc)), int_const(1, 16))),
        ],
    )];
    sys
}

/// Partitions Fig. 1: `A` stays on `module1`, the memory and status
/// register move to `module2` (the figure's dashed split).
pub fn fig1() -> Fig1 {
    let sys = fig1_unpartitioned();
    let result = Partitioner::new()
        .place_behavior("A", "module1")
        .place_variable("MEM", "module2")
        .place_variable("STATUS", "module2")
        .partition(&sys)
        .expect("fig1 partition is well-formed");
    let groups = result.channel_groups();
    Fig1 {
        system: result.system,
        channels: result.channels,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsyn_spec::ChannelDirection;

    #[test]
    fn partition_derives_the_figures_three_channels() {
        let f = fig1();
        // ch1: A < MEM (read), ch2: A > MEM (write), ch3: A > STATUS.
        assert_eq!(f.channels.len(), 3);
        let dirs: Vec<ChannelDirection> = f
            .channels
            .iter()
            .map(|&c| f.system.channel(c).direction)
            .collect();
        assert_eq!(
            dirs.iter()
                .filter(|d| **d == ChannelDirection::Read)
                .count(),
            1
        );
        assert_eq!(
            dirs.iter()
                .filter(|d| **d == ChannelDirection::Write)
                .count(),
            2
        );
    }

    #[test]
    fn all_three_channels_form_one_bus_group() {
        let f = fig1();
        assert_eq!(f.groups.len(), 1);
        assert_eq!(f.groups[0].len(), 3);
    }

    #[test]
    fn access_counts_follow_the_loop() {
        let f = fig1();
        for &c in &f.channels {
            let ch = f.system.channel(c);
            assert_eq!(
                ch.accesses, FIG1_ITERATIONS as u64,
                "channel {} accesses",
                ch.name
            );
        }
    }

    #[test]
    fn partitioned_system_validates() {
        assert!(fig1().system.check().is_ok());
        assert!(fig1_unpartitioned().check().is_ok());
    }
}
